"""EXP-FIG2 / EXP-FIG3 — the writer/reader example of Fig. 1/2/3.

Benchmarks the three executions of the didactic example and checks, on
every measured run, that the Smart FIFO execution reproduces the reference
dates while the naively decoupled one does not.
"""

import pytest

from repro.analysis.experiments import fig2_fig3_example
from repro.kernel import Simulator
from repro.workloads import ExampleMode, WriterReaderExample

EXPECTED_REFERENCE = [(1, 0.0, 0.0), (2, 20.0, 20.0), (3, 40.0, 40.0)]
EXPECTED_NAIVE = [(1, 0.0, 0.0), (2, 20.0, 15.0), (3, 40.0, 30.0)]


def run_example(mode: ExampleMode):
    sim = Simulator(f"bench_{mode.value}")
    example = WriterReaderExample(sim, mode=mode)
    example.run()
    return example.dates_ns()


@pytest.mark.parametrize("mode", list(ExampleMode), ids=lambda m: m.value)
def test_fig2_fig3_example(benchmark, mode):
    dates = benchmark(run_example, mode)
    if mode is ExampleMode.DECOUPLED_NO_SYNC:
        assert dates == EXPECTED_NAIVE
    else:
        assert dates == EXPECTED_REFERENCE


def test_fig2_fig3_report(benchmark):
    """Prints the Fig. 2/3 comparison table (same rows as the paper figures)."""
    result = benchmark(fig2_fig3_example)
    assert result.smart_matches_reference
    assert result.naive_differs_from_reference
    print()
    print(result.table())
