"""EXP-QUANTUM — ablation: global-quantum decoupling vs. the Smart FIFO.

Section II-A of the paper recalls the classic trade-off of quantum-based
temporal decoupling: a large quantum is good for speed but bad for
accuracy, and choosing the quantum is left to the user.  The Smart FIFO
needs no quantum and keeps the timing exact.

This benchmark quantifies that trade-off on the Fig. 5 pipeline: each
quantum value is a benchmark point (wall time), and the timing error with
respect to the non-decoupled reference is attached as extra info; the Smart
FIFO point must show zero error.
"""

import pytest

from repro.analysis import experiments
from repro.kernel import Simulator
from repro.kernel.simtime import TimeUnit
from repro.td import GlobalQuantum
from repro.workloads import PipelineModel, StreamingPipeline

from bench_config import streaming_config

QUANTA_NS = (0, 100, 1000, 10000, 100000)


def reference_completion_ns():
    sim = Simulator("quantum_reference")
    pipeline = StreamingPipeline(sim, PipelineModel.TDLESS, streaming_config(8))
    pipeline.run()
    return pipeline.completion_time.to(TimeUnit.NS)


REFERENCE_NS = None


def _reference():
    global REFERENCE_NS
    if REFERENCE_NS is None:
        REFERENCE_NS = reference_completion_ns()
    return REFERENCE_NS


def run_quantum_pipeline(quantum_ns: int):
    sim = Simulator(f"quantum_{quantum_ns}")
    GlobalQuantum.instance(sim).set(quantum_ns, TimeUnit.NS)
    pipeline = StreamingPipeline(sim, PipelineModel.QUANTUM, streaming_config(8))
    pipeline.run()
    pipeline.verify()
    return sim, pipeline


def run_smart_pipeline():
    sim = Simulator("quantum_smart")
    pipeline = StreamingPipeline(sim, PipelineModel.TDFULL, streaming_config(8))
    pipeline.run()
    pipeline.verify()
    return sim, pipeline


@pytest.mark.parametrize("quantum_ns", QUANTA_NS)
def test_quantum_point(benchmark, quantum_ns):
    benchmark.group = "quantum ablation"
    sim, pipeline = benchmark(run_quantum_pipeline, quantum_ns)
    error = abs(pipeline.completion_time.to(TimeUnit.NS) - _reference())
    benchmark.extra_info["quantum_ns"] = quantum_ns
    benchmark.extra_info["timing_error_ns"] = error
    benchmark.extra_info["context_switches"] = sim.stats.context_switches
    if quantum_ns == 0:
        # Quantum zero disables decoupling: the timing must be exact.
        assert error == 0.0


def test_smart_fifo_point(benchmark):
    benchmark.group = "quantum ablation"
    sim, pipeline = benchmark(run_smart_pipeline)
    error = abs(pipeline.completion_time.to(TimeUnit.NS) - _reference())
    benchmark.extra_info["quantum_ns"] = "none needed"
    benchmark.extra_info["timing_error_ns"] = error
    benchmark.extra_info["context_switches"] = sim.stats.context_switches
    assert error == 0.0, "the Smart FIFO must keep the exact reference timing"


def test_quantum_ablation_report(benchmark):
    """Prints the accuracy/speed trade-off table."""

    def run():
        return experiments.quantum_ablation(
            quanta_ns=QUANTA_NS, config=streaming_config(8)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(experiments.quantum_table(rows))
