"""Persistent benchmark harness (the ``BENCH_*.json`` trajectory).

The pytest-benchmark modules under ``benchmarks/`` are great for
interactive exploration but their output is not committed; this module is
the *persistent* counterpart.  It re-runs the same scenarios — the micro
FIFO operations, the Fig. 5 depth sweep and the Section IV-C SoC case
study — under plain :func:`time.perf_counter`, and reduces each scenario
to a small set of named scalar metrics that can be compared from one PR
to the next.

Layout of the emitted document (see :func:`run_all`)::

    {
      "schema": 1,
      "label": "PR1",
      "scale": "quick",              # bench_config.SCALE
      "repeats": 5,                  # best-of-N wall times
      "metrics": { "<name>": <float>, ... },   # flat, comparable
      "detail":  { ... }                       # per-scenario breakdown
    }

Metric names are dotted (``micro.smart_blocking_ops_per_s``,
``case_study.smart_wall_s``); :data:`METRICS` declares for each one
whether higher or lower is better, which is what
``tools/run_benchmarks.py`` uses to turn a baseline comparison into
speedup factors and regression verdicts.

Wall-clock numbers are machine dependent, so every scenario also records
the kernel activity counters (context switches above all) that explain
the wall-clock shape in a machine-independent way.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from typing import Callable, Dict, List, Tuple

from repro.analysis import experiments
from repro.campaign import (
    MODE_SMART,
    CampaignRunner,
    CostModel,
    ScenarioSpec,
    default_campaign,
    execute_spec,
    run_replay_sweep,
    sweep_point_specs,
)
from repro.campaign.orchestrator import (
    Orchestrator,
    cost_shards,
    estimated_makespans,
    local_hosts,
    makespan_spread,
)
from repro.kernel import Simulator
from repro.kernel.simtime import TimeUnit
from repro.soc import FifoPolicy, SocPlatform
from repro.fifo import RegularFifo, SmartFifo
from repro.workloads import PipelineModel, StreamingPipeline

from bench_config import SCALE, soc_config, streaming_config
from bench_micro_fifo_ops import (
    ITEMS,
    TRACE_EMITS,
    regular_fifo_nb_ops,
    smart_fifo_burst_stream,
    smart_fifo_decoupled_stream,
    smart_fifo_nb_ops,
    telemetry_bypass_stream,
    trace_emit_burst_ops,
    trace_emit_off_ops,
    trace_emit_ops,
)

#: Direction of each exported metric: True when higher is better.
METRICS: Dict[str, bool] = {
    "micro.regular_nb_ops_per_s": True,
    "micro.smart_nb_ops_per_s": True,
    "micro.smart_blocking_ops_per_s": True,
    "micro.smart_burst_ops_per_s": True,
    "micro.trace_emit_ops_per_s": True,
    "micro.trace_emit_burst_ops_per_s": True,
    "micro.trace_emit_off_ops_per_s": True,
    "micro.telemetry_off_overhead": False,
    "fig5.tdfull_total_wall_s": False,
    "fig5.tdless_total_wall_s": False,
    "case_study.sync_wall_s": False,
    "case_study.smart_wall_s": False,
    "campaign.specs_per_s": True,
    "campaign.paired_specs_per_s": True,
    "campaign.orchestrated_specs_per_s": True,
    "replay.points_per_s": True,
    "replay.speedup_vs_simulate": True,
    "replay.conditional_points_per_s": True,
    "campaign.auto_replay_sweep_specs_per_s": True,
}

#: Metrics reported in the comparison but exempt from the regression gate
#: (``tools/run_benchmarks.py --check``).  The orchestrated campaign is
#: dominated by subprocess launch and poll-tick timing, which jitter far
#: beyond the 20% threshold on a loaded CI box; its regressions print as
#: ADVISORY instead of failing the run.
ADVISORY_METRICS = {
    "campaign.orchestrated_specs_per_s",
    # A ratio of two ~10ms walls hovering at 1.0: run-to-run jitter of a
    # few percent is normal and meaningless as a trajectory.  The hard
    # bound lives in bench_micro itself (TELEMETRY_OVERHEAD_LIMIT),
    # which fails the scenario — not just the comparison — when disabled
    # telemetry costs real time.
    "micro.telemetry_off_overhead",
}

#: Hard in-scenario bound on the disabled-telemetry overhead factor:
#: sim.run() with NULL_TELEMETRY (one `enabled` attribute check) over the
#: direct scheduler drive with no checks at all.
TELEMETRY_OVERHEAD_LIMIT = 1.05

#: Worker processes used by the campaign scenario (the point of the metric
#: is pool throughput, so > 1; kept small to stay meaningful on any CI box).
CAMPAIGN_WORKERS = 2

#: Shape of the orchestrated-campaign scenario: 2 local-subprocess hosts,
#: each running its cost-balanced shard across 2 workers (so the metric
#: covers subprocess launch, 4-way parallel simulation, JSONL collection
#: and the merge).
ORCHESTRATOR_HOSTS = 2
ORCHESTRATOR_WORKERS_PER_HOST = 2

#: Depths of the Fig. 5 sweep used by the harness (a subset of the pytest
#: sweep, chosen to keep the committed numbers fast to regenerate).
FIG5_DEPTHS = (1, 4, 16, 64)

#: Depth grid of the record-and-replay scenario: one recorded simulation
#: at REPLAY_ANCHOR_DEPTH, every other depth evaluated by replay.  The
#: grid spans the full Fig. 5 x-axis (the paper sweeps FIFO sizes up to
#: the fully-buffered plateau, ~10^3).
REPLAY_DEPTHS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
REPLAY_ANCHOR_DEPTH = 8

#: Dense depth grid of the auto-routed campaign sweep: the point of
#: --auto-replay is pricing *dense* grids, where the one-off recording and
#: the sampled cross-validation amortise over many replayed points.
AUTO_SWEEP_DEPTHS = tuple(sorted(set(
    list(range(1, 17))
    + [20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128,
       160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024]
)))
#: Default-campaign spec swept by the auto-replay scenario.  ``mixed``
#: exercises blocking, non-blocking *and* query/peek probes, so its
#: recording carries DEP_BRANCH records — the conditional-replay path —
#: while still replaying across the whole grid.
AUTO_SWEEP_ANCHOR = "mixed_d3"


def _best_wall(func: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Run ``func`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


# ---------------------------------------------------------------------------
# Scenario: micro FIFO operations
# ---------------------------------------------------------------------------
def bench_micro(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Ops/sec of the word-transfer micro-benchmarks.

    ``smart_blocking_ops_per_s`` is the acceptance metric of the hot-path
    work: one "op" is one blocking word transfer (a write plus the
    matching read) performed by the fully decoupled two-thread stream.
    """
    nb_wall, _ = _best_wall(regular_fifo_nb_ops, repeats)
    smart_nb_wall, _ = _best_wall(smart_fifo_nb_ops, repeats)
    blocking_wall, _ = _best_wall(smart_fifo_decoupled_stream, repeats)
    # Burst twin of the blocking stream: same payload, span accesses.
    burst_wall, _ = _best_wall(smart_fifo_burst_stream, repeats)
    # Trace emit path: one "op" is one Simulator.log call, once through
    # the campaign-default DigestSink and once with tracing off (the
    # NullSink one-attribute-check fast path of the streaming refactor);
    # the burst variant batches the same lines through emit_many spans.
    emit_wall, _ = _best_wall(trace_emit_ops, repeats)
    emit_burst_wall, _ = _best_wall(trace_emit_burst_ops, repeats)
    emit_off_wall, _ = _best_wall(trace_emit_off_ops, repeats)
    # Disabled-telemetry overhead: the production sim.run() path (pays
    # the NULL_TELEMETRY `enabled` checks) against a direct scheduler
    # drive with no checks.  Same payload as the blocking stream; the
    # factor is gated hard here so "telemetry off costs nothing" is an
    # enforced property, not a hope.
    bypass_repeats = max(repeats, 5)
    production_wall, _ = _best_wall(smart_fifo_decoupled_stream, bypass_repeats)
    bypass_wall, _ = _best_wall(telemetry_bypass_stream, bypass_repeats)
    telemetry_overhead = production_wall / bypass_wall
    if telemetry_overhead > TELEMETRY_OVERHEAD_LIMIT:
        raise AssertionError(
            f"disabled telemetry costs {telemetry_overhead:.3f}x over the "
            f"uninstrumented scheduler drive (limit "
            f"{TELEMETRY_OVERHEAD_LIMIT})"
        )
    metrics = {
        "micro.regular_nb_ops_per_s": ITEMS / nb_wall,
        "micro.smart_nb_ops_per_s": ITEMS / smart_nb_wall,
        "micro.smart_blocking_ops_per_s": ITEMS / blocking_wall,
        "micro.smart_burst_ops_per_s": ITEMS / burst_wall,
        "micro.trace_emit_ops_per_s": TRACE_EMITS / emit_wall,
        "micro.trace_emit_burst_ops_per_s": TRACE_EMITS / emit_burst_wall,
        "micro.trace_emit_off_ops_per_s": TRACE_EMITS / emit_off_wall,
        "micro.telemetry_off_overhead": telemetry_overhead,
    }
    detail = {
        "items": ITEMS,
        "regular_nb_wall_s": nb_wall,
        "smart_nb_wall_s": smart_nb_wall,
        "smart_blocking_wall_s": blocking_wall,
        "smart_burst_wall_s": burst_wall,
        "trace_emits": TRACE_EMITS,
        "trace_emit_wall_s": emit_wall,
        "trace_emit_burst_wall_s": emit_burst_wall,
        "trace_emit_off_wall_s": emit_off_wall,
        "telemetry_production_wall_s": production_wall,
        "telemetry_bypass_wall_s": bypass_wall,
        "telemetry_overhead_limit": TELEMETRY_OVERHEAD_LIMIT,
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Scenario: Fig. 5 depth sweep
# ---------------------------------------------------------------------------
def _run_pipeline(model: PipelineModel, depth: int):
    sim = Simulator(f"bench_fig5_{model.value}_{depth}")
    pipeline = StreamingPipeline(sim, model, streaming_config(depth))
    pipeline.run()
    pipeline.verify()
    return sim, pipeline


def bench_fig5(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Wall time and context switches per (model, depth) point of Fig. 5."""
    points: List[Dict[str, object]] = []
    totals = {PipelineModel.TDLESS: 0.0, PipelineModel.TDFULL: 0.0}
    for depth in FIG5_DEPTHS:
        completions = {}
        for model in (PipelineModel.TDLESS, PipelineModel.TDFULL):
            wall, (sim, pipeline) = _best_wall(
                lambda m=model, d=depth: _run_pipeline(m, d), repeats
            )
            completion_ns = pipeline.completion_time.to(TimeUnit.NS)
            completions[model] = completion_ns
            totals[model] += wall
            points.append(
                {
                    "model": model.value,
                    "depth": depth,
                    "wall_s": wall,
                    "context_switches": sim.stats.context_switches,
                    "delta_cycles": sim.stats.delta_cycles,
                    "completion_ns": completion_ns,
                }
            )
        if completions[PipelineModel.TDFULL] != completions[PipelineModel.TDLESS]:
            raise AssertionError(
                f"fig5 depth {depth}: decoupled completion date "
                f"{completions[PipelineModel.TDFULL]} ns differs from the "
                f"reference {completions[PipelineModel.TDLESS]} ns"
            )
    metrics = {
        "fig5.tdless_total_wall_s": totals[PipelineModel.TDLESS],
        "fig5.tdfull_total_wall_s": totals[PipelineModel.TDFULL],
    }
    return metrics, {"depths": list(FIG5_DEPTHS), "points": points}


# ---------------------------------------------------------------------------
# Scenario: SoC case study
# ---------------------------------------------------------------------------
def _run_platform(policy: FifoPolicy):
    sim = Simulator(f"bench_case_{policy.value}")
    platform = SocPlatform(sim, policy=policy, config=soc_config())
    platform.run()
    platform.verify()
    return sim, platform


def bench_case_study(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Section IV-C: sync-per-access versus Smart FIFO on the same SoC job."""
    sync_wall, (sync_sim, sync_platform) = _best_wall(
        lambda: _run_platform(FifoPolicy.SYNC_PER_ACCESS), repeats
    )
    smart_wall, (smart_sim, smart_platform) = _best_wall(
        lambda: _run_platform(FifoPolicy.SMART), repeats
    )
    sync_dates = {
        name: (t.to(TimeUnit.NS) if t is not None else -1.0)
        for name, t in sync_platform.consumer_finish_times().items()
    }
    smart_dates = {
        name: (t.to(TimeUnit.NS) if t is not None else -1.0)
        for name, t in smart_platform.consumer_finish_times().items()
    }
    if sync_dates != smart_dates:
        raise AssertionError("case study: Smart FIFO changed the SoC timing")
    metrics = {
        "case_study.sync_wall_s": sync_wall,
        "case_study.smart_wall_s": smart_wall,
    }
    detail = {
        "sync_context_switches": sync_sim.stats.context_switches,
        "smart_context_switches": smart_sim.stats.context_switches,
        "sync_blocking_waits": sync_platform.fifo_blocking_waits(),
        "smart_blocking_waits": smart_platform.fifo_blocking_waits(),
        "gain_percent": 100.0 * (sync_wall - smart_wall) / sync_wall,
        "timing_identical": True,
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Scenario: parallel experiment campaign
# ---------------------------------------------------------------------------
def bench_campaign(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Throughput of the campaign engine (repro.campaign).

    One "spec" is one complete simulation; the default campaign runs every
    spec once plus the paired reference/Smart equivalence battery (a
    pairable spec's own-mode run doubles as half of its pair, so each pair
    adds exactly one extra simulation), sharded over ``CAMPAIGN_WORKERS``
    processes.  ``campaign.specs_per_s`` is simulations per second of wall
    time, so both the scenario cost and the pool/aggregation overhead are
    covered; ``campaign.paired_specs_per_s`` is completed equivalence pairs
    per second — the metric the split-pair scheduling (each half of a pair
    is an independent worker job since PR 3) is accountable to.
    """
    specs = default_campaign()
    runner = CampaignRunner(workers=CAMPAIGN_WORKERS)

    def run():
        result = runner.run(specs)
        if not result.all_pairs_equivalent:
            raise AssertionError("campaign: a paired trace diff is not empty")
        return result

    wall, result = _best_wall(run, repeats)
    simulations = len(result.runs) + len(result.pairs)
    metrics = {
        "campaign.specs_per_s": simulations / wall,
        "campaign.paired_specs_per_s": len(result.pairs) / wall,
    }
    detail = {
        "workers": CAMPAIGN_WORKERS,
        "specs": len(result.runs),
        "pairs": len(result.pairs),
        "simulations": simulations,
        "wall_s": wall,
        "fingerprint": result.fingerprint(),
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Scenario: orchestrated multi-host campaign
# ---------------------------------------------------------------------------
def bench_orchestrator(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Throughput of the distributed orchestrator (repro.campaign.orchestrator).

    The default campaign runs across ``ORCHESTRATOR_HOSTS`` local
    subprocess hosts x ``ORCHESTRATOR_WORKERS_PER_HOST`` workers, sharded
    by a ``COSTS.json`` recorded from a warm-up campaign — so the metric
    covers host launch, the cost-balanced partition, 4-way parallel
    simulation, shard collection and the merge.  ``detail`` additionally
    reports the measured per-shard makespans of the cost partition
    against a round-robin control run: the cost-balanced spread (max/min
    shard wall) is the number the partitioner is accountable to.

    Orchestrated runs are the most expensive scenario (every repeat is a
    whole campaign plus process launches), so repeats are capped at 3;
    the round-robin control runs once.
    """
    specs = default_campaign()
    names = [spec.name for spec in specs]
    with tempfile.TemporaryDirectory(prefix="bench_orchestrator_") as tmp:
        costs_path = os.path.join(tmp, "COSTS.json")
        warmup = CampaignRunner(workers=ORCHESTRATOR_WORKERS_PER_HOST).run(specs)
        if not warmup.all_pairs_equivalent:
            raise AssertionError("orchestrator warm-up: non-equivalent pair")
        model = CostModel()
        model.observe_result(warmup)
        model.save(costs_path)

        def orchestrate(label: str, by_cost: bool):
            outcome = Orchestrator(
                local_hosts(ORCHESTRATOR_HOSTS),
                os.path.join(tmp, label),
                workers_per_host=ORCHESTRATOR_WORKERS_PER_HOST,
                shard_by_cost=by_cost,
                costs_path=costs_path if by_cost else None,
                poll_interval=0.02,
            ).run(names)
            if outcome.fingerprint() != warmup.fingerprint():
                raise AssertionError(
                    "orchestrator: merged fingerprint differs from the "
                    "unsharded campaign"
                )
            return outcome

        wall, outcome = _best_wall(
            lambda: orchestrate("cost", True), min(repeats, 3)
        )
        control = orchestrate("round_robin", False)

    # Shard makespans from the *recorded* per-spec wall times: the sum of
    # measured spec walls per shard is the load each partitioner actually
    # balances (the orchestrator-observed host walls, also reported, fold
    # in interpreter start-up and poll-tick resolution, which swamp the
    # signal at scale=quick).
    shards_by_cost = cost_shards(specs, ORCHESTRATOR_HOSTS, model, paired=True)
    shards_round_robin = [
        CampaignRunner.shard_specs(specs, index, ORCHESTRATOR_HOSTS)
        for index in range(ORCHESTRATOR_HOSTS)
    ]
    cost_spans = estimated_makespans(shards_by_cost, model, paired=True)
    rr_spans = estimated_makespans(shards_round_robin, model, paired=True)

    simulations = len(outcome.result.runs) + len(outcome.result.pairs)
    metrics = {
        "campaign.orchestrated_specs_per_s": simulations / wall,
    }
    detail = {
        "hosts": ORCHESTRATOR_HOSTS,
        "workers_per_host": ORCHESTRATOR_WORKERS_PER_HOST,
        "simulations": simulations,
        "wall_s": wall,
        "fingerprint": outcome.fingerprint(),
        "cost_balanced": {
            "shard_sizes": [len(shard) for shard in shards_by_cost],
            "makespans_recorded_s": cost_spans,
            "spread_recorded": makespan_spread(cost_spans),
            "host_walls_s": outcome.makespans(),
            "host_wall_spread": outcome.makespan_spread(),
        },
        "round_robin": {
            "shard_sizes": [len(shard) for shard in shards_round_robin],
            "makespans_recorded_s": rr_spans,
            "spread_recorded": makespan_spread(rr_spans),
            "host_walls_s": control.makespans(),
            "host_wall_spread": control.makespan_spread(),
        },
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Scenario: record-and-replay depth sweep
# ---------------------------------------------------------------------------
def _replay_anchor_spec() -> ScenarioSpec:
    # Same streaming job as the default campaign's streaming_d8 spec, so
    # replay.points_per_s is directly comparable to campaign.specs_per_s
    # (one replayed point stands in for one simulated spec of that size).
    return ScenarioSpec(
        name="bench_replay_anchor",
        workload="streaming",
        mode=MODE_SMART,
        depth=REPLAY_ANCHOR_DEPTH,
        params={"n_blocks": 6, "words_per_block": 25},
    )


def bench_replay(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Throughput of the record-and-replay evaluator (repro.replay).

    One "point" is one (depth) configuration of the Fig. 5 streaming
    sweep evaluated from the single recorded anchor simulation instead of
    a fresh scheduler run.  ``replay.points_per_s`` is replayed points per
    second of pure replay wall (recording excluded — it is amortised over
    the whole sweep); ``replay.speedup_vs_simulate`` divides the wall of
    one fresh simulation of the anchor spec by the mean wall of one
    replayed point, i.e. the per-point gain the record-and-replay
    evaluation is accountable for.  Every repeat cross-validates one
    sampled point against a fresh recording, so a replay that drifts from
    the scheduler fails the benchmark rather than reporting a fast wrong
    answer.
    """
    anchor = _replay_anchor_spec()

    def sweep():
        result = run_replay_sweep(anchor, depths=REPLAY_DEPTHS, validate=1)
        if not result.all_validated:
            raise AssertionError("replay: a validated point diverged")
        return result

    sweep_wall, result = _best_wall(sweep, repeats)
    simulate_wall, _ = _best_wall(lambda: execute_spec(anchor, "digest"), repeats)
    replayed = sum(1 for row in result.rows if row.evaluator == "replay")
    per_point = result.replay_seconds / replayed

    # Conditional twin: a workload whose recording carries DEP_BRANCH
    # records (random traffic probes occupancy through nb accesses and a
    # monitor), replayed inside its validity envelope.  Points the
    # envelope refuses fall back to fresh simulation and are excluded
    # from points_per_s, so the metric prices *replayed* points only.
    conditional = ScenarioSpec(
        name="bench_conditional_anchor",
        workload="random_traffic",
        mode=MODE_SMART,
        depth=REPLAY_ANCHOR_DEPTH,
        seed=3,
    )

    def conditional_sweep():
        result = run_replay_sweep(conditional, depths=REPLAY_DEPTHS, validate=1)
        if not result.all_validated:
            raise AssertionError("replay: a validated conditional point diverged")
        return result

    cond_wall, cond = _best_wall(conditional_sweep, repeats)
    cond_replayed = sum(1 for row in cond.rows if row.evaluator == "replay")
    metrics = {
        "replay.points_per_s": result.points_per_s,
        "replay.speedup_vs_simulate": simulate_wall / per_point,
        "replay.conditional_points_per_s": cond.points_per_s,
    }
    detail = {
        "depths": list(REPLAY_DEPTHS),
        "anchor_depth": REPLAY_ANCHOR_DEPTH,
        "replayed_points": replayed,
        "validated_points": len(result.validations),
        "all_validated": result.all_validated,
        "sweep_wall_s": sweep_wall,
        "record_wall_s": result.record_seconds,
        "replay_wall_s": result.replay_seconds,
        "validate_wall_s": result.validate_seconds,
        "simulate_wall_s": simulate_wall,
        "conditional": {
            "workload": conditional.workload,
            "seed": conditional.seed,
            "sweep_wall_s": cond_wall,
            "replayed_points": cond_replayed,
            "invalid_points": [name for name, _ in cond.invalid_points],
            "validated_points": len(cond.validations),
            "replay_wall_s": cond.replay_seconds,
            "simulate_fallback_wall_s": cond.simulate_seconds,
        },
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Scenario: auto-routed campaign depth sweep
# ---------------------------------------------------------------------------
def bench_auto_replay(repeats: int) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Throughput of ``CampaignRunner(auto_replay=True)`` on a dense sweep.

    The scenario expands one default-campaign spec (``AUTO_SWEEP_ANCHOR``)
    over the ``AUTO_SWEEP_DEPTHS`` grid and runs it twice: once through
    the auto-routing pass (one recorded anchor simulation, every
    in-envelope point replayed, one sampled point cross-validated against
    a fresh simulation) and once all-simulate.
    ``campaign.auto_replay_sweep_specs_per_s`` is grid points per second
    of the auto-routed run; ``detail["speedup_vs_all_simulate"]`` is the
    end-to-end wall ratio the routing is accountable to — it folds in the
    recording and validation overhead, unlike the per-point
    ``replay.speedup_vs_simulate``.  The simulated rows of the two runs
    must agree byte for byte (the --auto-replay correctness contract).
    """
    anchor = next(
        spec for spec in default_campaign() if spec.name == AUTO_SWEEP_ANCHOR
    )
    specs = [anchor] + sweep_point_specs(anchor, depths=AUTO_SWEEP_DEPTHS)

    def run_auto():
        return CampaignRunner(
            workers=1, paired=False, auto_replay=True
        ).run(specs)

    def run_plain():
        return CampaignRunner(workers=1, paired=False).run(specs)

    auto_wall, auto = _best_wall(run_auto, repeats)
    plain_wall, plain = _best_wall(run_plain, repeats)
    plain_rows = {row.name: row.deterministic_row() for row in plain.runs}
    for row in auto.runs:
        if row.evaluator == "simulate":
            if row.deterministic_row() != plain_rows[row.name]:
                raise AssertionError(
                    f"auto-replay: simulated row {row.name} differs from "
                    "the all-simulate run"
                )
    replayed = sum(1 for row in auto.runs if row.evaluator == "replay")
    metrics = {
        "campaign.auto_replay_sweep_specs_per_s": len(specs) / auto_wall,
    }
    detail = {
        "anchor": anchor.name,
        "grid_points": len(specs),
        "replayed_points": replayed,
        "simulated_points": len(specs) - replayed,
        "auto_wall_s": auto_wall,
        "all_simulate_wall_s": plain_wall,
        "speedup_vs_all_simulate": plain_wall / auto_wall,
        "simulated_rows_identical": True,
    }
    return metrics, detail


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
SCENARIOS = {
    "bench_micro_fifo_ops": bench_micro,
    "bench_fig5_depth_sweep": bench_fig5,
    "bench_case_study_soc": bench_case_study,
    "bench_campaign": bench_campaign,
    "bench_orchestrator": bench_orchestrator,
    "bench_replay_sweep": bench_replay,
    "bench_auto_replay_sweep": bench_auto_replay,
}


def run_all(label: str, repeats: int = 5, verbose: bool = True) -> Dict[str, object]:
    """Run every scenario; return the BENCH document (see module docstring)."""
    metrics: Dict[str, float] = {}
    detail: Dict[str, object] = {}
    for name, scenario in SCENARIOS.items():
        if verbose:
            print(f"[bench] {name} ...", flush=True)
        scenario_metrics, scenario_detail = scenario(repeats)
        metrics.update(scenario_metrics)
        detail[name] = scenario_detail
    return {
        "schema": 1,
        "label": label,
        "scale": SCALE,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "metrics": metrics,
        "detail": detail,
    }


def compare(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[Dict[str, object]]:
    """Compare two BENCH documents metric by metric.

    Returns one row per metric present in both documents, with ``speedup``
    normalised so that > 1.0 always means "current is better": for
    higher-is-better metrics it is current/baseline, for lower-is-better
    metrics baseline/current.
    """
    rows: List[Dict[str, object]] = []
    base_metrics = baseline.get("metrics", {})
    for name, value in current.get("metrics", {}).items():
        if name not in base_metrics:
            continue
        base_value = base_metrics[name]
        higher_better = METRICS.get(name, True)
        if base_value <= 0 or value <= 0:
            speedup = float("nan")
        elif higher_better:
            speedup = value / base_value
        else:
            speedup = base_value / value
        rows.append(
            {
                "metric": name,
                "baseline": base_value,
                "current": value,
                "higher_is_better": higher_better,
                "speedup": speedup,
            }
        )
    return rows
