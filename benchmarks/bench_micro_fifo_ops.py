"""Micro-benchmarks of the FIFO primitives.

These quantify the per-access cost differences discussed in the paper:

* the Smart FIFO does more work per access than a regular FIFO (the price
  of the timestamp bookkeeping, visible in the "TDfull vs untimed" gap of
  Fig. 5);
* the non-blocking ``is_empty`` performs two tests instead of one;
* ``get_size`` is O(depth) and intended for low-rate monitor accesses
  (Section III-C).
"""

import pytest

from repro.fifo import RegularFifo, SmartFifo
from repro.kernel import Simulator
from repro.td import DecoupledModule


def drive(sim, generator_func):
    """Run a one-thread simulation executing ``generator_func``."""
    sim.create_thread(generator_func, name="driver")
    sim.run()


class _Stream(DecoupledModule):
    """Writes then reads ``count`` items through a FIFO, fully decoupled."""

    def __init__(self, parent, name, fifo, count):
        super().__init__(parent, name)
        self.fifo = fifo
        self.count = count
        self.create_thread(self.writer)
        self.create_thread(self.reader)

    def writer(self):
        for value in range(self.count):
            yield from self.fifo.write(value)
            self.inc(1)

    def reader(self):
        for _ in range(self.count):
            yield from self.fifo.read()
            self.inc(1)


ITEMS = 2000

#: Words moved per span by the burst micro-benchmarks (< depth, so whole
#: spans land/drain without entering the blocking machinery).
BURST_SPAN = 50

#: 1 ns in femtoseconds — the per-word gap of both streams.
_GAP_FS = 1_000_000


class _BurstStream(DecoupledModule):
    """The :class:`_Stream` twin moving ``count`` items in spans.

    Same FIFO, same 1 ns per-word annotation, same total payload — only the
    access granularity changes (``write_burst``/``read_burst`` spans of
    ``BURST_SPAN`` words), so the ops/sec ratio against the word stream is
    the batch-quantum speedup and nothing else.
    """

    def __init__(self, parent, name, fifo, count, span=BURST_SPAN):
        super().__init__(parent, name)
        self.fifo = fifo
        self.count = count
        self.span = span
        self.create_thread(self.writer)
        self.create_thread(self.reader)

    def writer(self):
        sent = 0
        while sent < self.count:
            span = min(self.span, self.count - sent)
            yield from self.fifo.write_burst(
                list(range(sent, sent + span)), _GAP_FS
            )
            sent += span

    def reader(self):
        got = 0
        while got < self.count:
            span = min(self.span, self.count - got)
            yield from self.fifo.read_burst(span, _GAP_FS)
            got += span


def regular_fifo_nb_ops():
    sim = Simulator("micro_regular")
    fifo = RegularFifo(sim, "fifo", depth=64)
    for _ in range(ITEMS):
        fifo.nb_write(1)
        fifo.nb_read()
    return fifo.total_read


def smart_fifo_nb_ops():
    sim = Simulator("micro_smart_nb")
    fifo = SmartFifo(sim, "fifo", depth=64)
    for _ in range(ITEMS):
        fifo.nb_write(1)
        fifo.nb_read()
    return fifo.total_read


def smart_fifo_decoupled_stream():
    sim = Simulator("micro_smart_stream")
    fifo = SmartFifo(sim, "fifo", depth=64)
    _Stream(sim, "stream", fifo, ITEMS)
    sim.run()
    return fifo.total_read


def smart_fifo_burst_stream():
    sim = Simulator("micro_smart_burst")
    fifo = SmartFifo(sim, "fifo", depth=64)
    _BurstStream(sim, "stream", fifo, ITEMS)
    sim.run()
    return fifo.total_read


def telemetry_bypass_stream():
    """:func:`smart_fifo_decoupled_stream` minus the telemetry guards.

    Drives the scheduler directly instead of going through
    ``Simulator.run`` — the pre-telemetry code path with zero ``enabled``
    attribute checks.  The wall ratio of the production twin over this
    one is the whole cost of disabled telemetry
    (``micro.telemetry_off_overhead``, gated close to 1.0).
    """
    sim = Simulator("micro_telemetry_bypass")
    fifo = SmartFifo(sim, "fifo", depth=64)
    _Stream(sim, "stream", fifo, ITEMS)
    sim.elaborate()
    sim.scheduler.run(None)
    return fifo.total_read


#: Trace lines emitted per trace-path micro-benchmark run.
TRACE_EMITS = 2000


def trace_emit_ops(sink=None):
    """Emit ``TRACE_EMITS`` lines through the campaign-default digest sink.

    Measures the full hot emit path (``Simulator.log`` -> sink) the way a
    checkpoint-heavy workload drives it; the returned count pins the
    number of records that actually reached the sink.
    """
    from repro.kernel.tracing import DigestSink

    sim = Simulator("micro_trace_emit", trace_sink=sink or DigestSink())
    for index in range(TRACE_EMITS):
        sim.log(f"checkpoint {index}")
    count = len(sim.trace)
    sim.trace.close()
    return count


def trace_emit_burst_ops():
    """Emit ``TRACE_EMITS`` lines through ``emit_many`` spans.

    The span twin of :func:`trace_emit_ops`: same line count, same digest
    sink, but one batched sink call per ``BURST_SPAN`` records — the trace
    half of the burst-transfer fast path.
    """
    from repro.kernel.tracing import DigestSink

    sim = Simulator("micro_trace_emit_burst", trace_sink=DigestSink())
    trace = sim.trace
    now_fs = sim.now_fs
    for start in range(0, TRACE_EMITS, BURST_SPAN):
        entries = [
            (now_fs, f"checkpoint {index}")
            for index in range(start, min(start + BURST_SPAN, TRACE_EMITS))
        ]
        trace.emit_many("driver", now_fs, entries)
    count = len(trace)
    trace.close()
    return count


def trace_emit_off_ops():
    """Same loop with tracing off: the one-attribute-check fast path."""
    from repro.kernel.tracing import NullSink

    sim = Simulator("micro_trace_off", trace_sink=NullSink())
    for index in range(TRACE_EMITS):
        sim.log(f"checkpoint {index}")
    return TRACE_EMITS - len(sim.trace)


def test_regular_fifo_nonblocking(benchmark):
    benchmark.group = "word transfer"
    assert benchmark(regular_fifo_nb_ops) == ITEMS


def test_smart_fifo_nonblocking(benchmark):
    benchmark.group = "word transfer"
    assert benchmark(smart_fifo_nb_ops) == ITEMS


def test_smart_fifo_decoupled_blocking_stream(benchmark):
    benchmark.group = "word transfer"
    assert benchmark(smart_fifo_decoupled_stream) == ITEMS


def test_smart_fifo_burst_stream(benchmark):
    benchmark.group = "word transfer"
    assert benchmark(smart_fifo_burst_stream) == ITEMS


def test_trace_emit(benchmark):
    benchmark.group = "trace emit"
    assert benchmark(trace_emit_ops) == TRACE_EMITS


def test_trace_emit_burst(benchmark):
    benchmark.group = "trace emit"
    assert benchmark(trace_emit_burst_ops) == TRACE_EMITS


def test_trace_emit_off(benchmark):
    benchmark.group = "trace emit"
    assert benchmark(trace_emit_off_ops) == TRACE_EMITS


@pytest.mark.parametrize("depth", (4, 64, 1024))
def test_get_size_cost_scales_with_depth(benchmark, depth):
    benchmark.group = "monitor get_size"
    sim = Simulator(f"micro_getsize_{depth}")
    fifo = SmartFifo(sim, "fifo", depth=depth)
    for value in range(depth // 2):
        fifo.nb_write(value)

    def query():
        return fifo.size_at(sim.now)

    assert benchmark(query) == depth // 2


def test_is_empty_cost(benchmark):
    benchmark.group = "monitor get_size"
    sim = Simulator("micro_isempty")
    fifo = SmartFifo(sim, "fifo", depth=64)
    fifo.nb_write(1)
    assert benchmark(fifo.is_empty) is False
