"""EXP-FIG5 — execution duration versus FIFO depth (Fig. 5).

One benchmark per (model, FIFO depth) point: the pytest-benchmark table is
the figure's data.  The paper's claims to check against the produced
numbers:

* the TDless model runs at roughly the same speed for all FIFO depths;
* the untimed and TDfull models get faster as the FIFO depth grows
  (context switches only happen when the FIFO is internally full or empty);
* TDfull is slower than TDless for 1-cell FIFOs, faster from 2-cell FIFOs,
  with a gain factor that grows with the depth;
* TDfull stays within a small factor of the untimed model (the cost of
  timing accuracy).

A final summary entry re-runs the sweep through the experiment driver and
prints the paper-style table plus the derived speed-up ratios.
"""

import pytest

from repro.analysis import experiments
from repro.kernel import Simulator
from repro.kernel.simtime import TimeUnit
from repro.workloads import PipelineModel, StreamingPipeline

from bench_config import streaming_config

DEPTHS = (1, 2, 4, 8, 16, 64)
MODELS = (PipelineModel.UNTIMED, PipelineModel.TDLESS, PipelineModel.TDFULL)


def run_pipeline(model: PipelineModel, depth: int):
    sim = Simulator(f"fig5_{model.value}_{depth}")
    pipeline = StreamingPipeline(sim, model, streaming_config(depth))
    pipeline.run()
    pipeline.verify()
    return sim, pipeline


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.value)
def test_fig5_point(benchmark, model, depth):
    benchmark.group = f"fig5 depth={depth}"
    sim, pipeline = benchmark(run_pipeline, model, depth)
    benchmark.extra_info["context_switches"] = sim.stats.context_switches
    benchmark.extra_info["completion_ns"] = pipeline.completion_time.to(TimeUnit.NS)
    if model is PipelineModel.TDFULL:
        # Accuracy check: the decoupled model must finish at the exact date
        # of the non-decoupled timed reference.
        _, reference = run_pipeline(PipelineModel.TDLESS, depth)
        assert pipeline.completion_time == reference.completion_time


def test_fig5_summary_table(benchmark):
    """Prints the full Fig. 5 table and derived ratios in one run."""

    def sweep():
        return experiments.fig5_depth_sweep(
            depths=DEPTHS, base_config=streaming_config(16), models=MODELS
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(experiments.fig5_table(rows))
    print()
    print(experiments.fig5_speedup_table(rows))
