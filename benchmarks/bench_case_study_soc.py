"""EXP-CASE — the heterogeneous many-core SoC case study (Section IV-C).

The paper compares two versions of the same industrial SoC model — one
whose accelerator FIFOs synchronize the caller at each access, one using
Smart FIFOs — and reports a simulation-time reduction from 38.0 s to 21.9 s
(a 42.3 % gain) with identical timing accuracy.

The synthetic platform reproduces the structure (decoupled accelerator
chains, SC_METHOD NoC, packetizing network interfaces, quantum-keeper
control core); the claim to check is the *relative* gain and the strict
timing equality, not the absolute seconds.
"""

import pytest

from repro.analysis import experiments, format_gain
from repro.kernel import Simulator
from repro.soc import FifoPolicy, SocPlatform

from bench_config import soc_config


def run_platform(policy: FifoPolicy):
    sim = Simulator(f"case_{policy.value}")
    platform = SocPlatform(sim, policy=policy, config=soc_config())
    platform.run()
    platform.verify()
    return sim, platform


@pytest.mark.parametrize(
    "policy", (FifoPolicy.SYNC_PER_ACCESS, FifoPolicy.SMART), ids=lambda p: p.value
)
def test_case_study_policy(benchmark, policy):
    benchmark.group = "case study SoC"
    sim, platform = benchmark(run_platform, policy)
    benchmark.extra_info["context_switches"] = sim.stats.context_switches
    benchmark.extra_info["fifo_blocking_waits"] = platform.fifo_blocking_waits()
    benchmark.extra_info["noc_packets"] = platform.mesh.total_packets_routed


def test_case_study_report(benchmark):
    """Runs both policies through the experiment driver and prints the
    paper-style comparison (duration, context switches, gain %)."""

    def run():
        return experiments.case_study(soc_config())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.timing_identical, "Smart FIFO changed the SoC timing"
    assert result.smart.context_switches < result.sync.context_switches
    print()
    print(result.table())
    print(
        "paper reference:",
        format_gain(38.0, 21.9),
        "| this run:",
        format_gain(result.sync.wall_seconds, result.smart.wall_seconds),
    )
