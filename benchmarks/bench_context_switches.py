"""EXP-CSW — context-switch accounting (machine-independent Fig. 5 companion).

Wall-clock durations depend on the host machine; the number of context
switches does not.  This benchmark measures the Fig. 5 pipeline while
attaching the exact context-switch counts per model and FIFO depth, and
checks the structural claims of Section IV-B:

* TDless performs one context switch per FIFO access (independent of depth);
* untimed and TDfull only switch when the FIFO is internally full or empty,
  so their counts shrink roughly like 1/depth;
* TDfull and untimed have (almost) the same number of context switches.
"""

import pytest

from repro.analysis import experiments
from repro.kernel import Simulator
from repro.workloads import PipelineModel, StreamingPipeline

from bench_config import streaming_config

DEPTHS = (1, 2, 4, 8, 32)


def switches_for(model: PipelineModel, depth: int) -> int:
    sim = Simulator(f"csw_{model.value}_{depth}")
    StreamingPipeline(sim, model, streaming_config(depth)).run()
    return sim.stats.context_switches


@pytest.mark.parametrize("depth", DEPTHS)
def test_context_switch_counts(benchmark, depth):
    benchmark.group = f"context switches depth={depth}"

    def run():
        return {model: switches_for(model, depth) for model in PipelineModel
                if model is not PipelineModel.QUANTUM}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({m.value: c for m, c in counts.items()})

    tdless = counts[PipelineModel.TDLESS]
    tdfull = counts[PipelineModel.TDFULL]
    untimed = counts[PipelineModel.UNTIMED]
    if depth >= 4:
        # With reasonably deep FIFOs the Smart FIFO removes the vast majority
        # of the context switches of the sync-per-access reference...
        assert tdfull < tdless / 2
        # ... and gets close to the untimed lower bound.
        assert tdfull <= untimed * 2.5
    if depth == 1:
        # With a single cell every access blocks: no advantage is expected.
        assert tdfull >= tdless * 0.5


def test_context_switch_table(benchmark):
    """Prints the per-depth context-switch table."""

    def run():
        return experiments.context_switch_sweep(
            depths=DEPTHS, base_config=streaming_config(16)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(experiments.context_switch_table(rows))
