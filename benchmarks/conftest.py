"""Pytest configuration for the benchmark harness.

The actual workload sizes live in :mod:`bench_config`; this conftest only
exposes the selected scale as a fixture and makes sure the benchmark
directory is importable.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from bench_config import SCALE  # noqa: E402  (path set up just above)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The selected benchmark scale ("quick" or "paper")."""
    return SCALE
