"""Benchmark workload sizes (shared by all benchmark modules).

Sizes are scaled so the full suite runs in a couple of minutes while
preserving the shape of the paper's figures.  Export
``REPRO_BENCH_SCALE=paper`` to run the paper-scale workloads (1000 blocks
of 1000 words for Fig. 5, a larger SoC job for the case study).

Two harnesses share these sizes:

* the pytest-benchmark modules (``bench_*.py`` in this directory), for
  interactive exploration — run them with
  ``PYTHONPATH=src python -m pytest benchmarks/bench_micro_fifo_ops.py``;
* the persistent harness (:mod:`bench_harness`, driven by
  ``tools/run_benchmarks.py``), which reduces the same scenarios to the
  committed ``BENCH_*.json`` trajectory and gates regressions — see the
  "Performance" section of ``ROADMAP.md``.
"""

from __future__ import annotations

import os

from repro.soc import SocConfig
from repro.workloads import StreamingConfig

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def streaming_config(fifo_depth: int) -> StreamingConfig:
    """The Fig. 5 workload at the selected scale."""
    if SCALE == "paper":
        return StreamingConfig.paper_scale(fifo_depth=fifo_depth)
    return StreamingConfig(n_blocks=20, words_per_block=50, fifo_depth=fifo_depth)


def soc_config() -> SocConfig:
    """The case-study workload at the selected scale."""
    if SCALE == "paper":
        return SocConfig.benchmark(n_chains=8, items_per_chain=4096)
    return SocConfig.benchmark(n_chains=4, items_per_chain=512)
