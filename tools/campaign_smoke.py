#!/usr/bin/env python
"""Campaign shard/merge smoke gate (used by ``make campaign-smoke`` and CI).

Runs a small campaign six ways and asserts the scale-out invariant:

1. unsharded, inline (the reference fingerprint);
2. shard 0/2 and shard 1/2, each across 2 worker processes, streaming
   their rows to JSONL files;
3. the merge of the two JSONL files;
4. unsharded again with ``burst=True`` (span FIFO transfers);
5. a record-and-replay sweep: one recorded anchor simulation, two
   replayed depth points, one of them cross-validated against a fresh
   simulation (must match bit for bit);
6. an auto-routed conditional sweep: a branch-recording workload
   (random traffic) swept over depths through ``--auto-replay`` —
   the anchor simulates, every in-envelope point replays, and the
   campaign fingerprint must equal a pinned constant;
7. the unsharded campaign again with telemetry enabled — the
   fingerprint must still equal the pinned PR 3 constant (telemetry is
   a sideband, never an input), and the merged ``telemetry.jsonl`` is
   left in the out dir for CI to upload.

The merged fingerprint must equal the unsharded one byte for byte — that
is the property that makes multi-machine campaigns trustworthy.  The burst
fingerprint must equal the word-mode one byte for byte as well: burst
transfers are a pure speed knob, never a semantic one.  The JSONL files
are left on disk (default ``campaign-smoke/``) so CI can upload them as
workflow artifacts.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.campaign import (  # noqa: E402
    CampaignRunner,
    ScenarioSpec,
    default_campaign,
    merge_jsonl,
    run_replay_sweep,
    sweep_point_specs,
)
from repro.telemetry import load_events  # noqa: E402

#: A fast subset of the default campaign covering old and new workloads.
SMOKE_SPECS = (
    "writer_reader_d4",
    "streaming_d2",
    "bursty_s3_d4",
    "noc_stress_2x2",
    "packet_stream_p2",
    "mixed_d3",
)

#: Fingerprint of the SMOKE_SPECS campaign as recorded by the PR 3
#: (pre-streaming-trace) pipeline.  The DigestSink-based campaign must
#: keep reproducing it byte for byte — this is the digest-compatibility
#: guarantee of the trace refactor (see ROADMAP "Trace pipeline").
PR3_SMOKE_FINGERPRINT = (
    "3f1ed06c3a5c3b0f1b1c3ef8af147bcbc7740e6fd401e3ea717a82ed579f71a5"
)

#: Fingerprint of the phase-6 auto-routed conditional sweep (random
#: traffic, smart, depth-8 anchor swept over depths 2/4/16).  Replay rows
#: carry the simulated dates, kernel counters and per-FIFO totals of the
#: points they stand in for, so the fingerprint is stable whether a point
#: was simulated or replayed — this constant pins that property.
PR9_AUTO_REPLAY_FINGERPRINT = (
    "47846c9c8ed552bc7389aa14cfbd8cc40aca02db7fca388e013d611c7bfe0f80"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        default=os.path.join(REPO_ROOT, "campaign-smoke"),
        help="directory receiving the per-shard JSONL files",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes per shard"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="smoke the whole default campaign instead of the fast subset",
    )
    args = parser.parse_args(argv)

    # Word-mode specs: the reference fingerprint predates the burst default,
    # and phase 4 below re-runs them with burst=True to prove bit-exactness.
    specs = default_campaign(burst=False)
    if not args.full:
        specs = [spec for spec in specs if spec.name in SMOKE_SPECS]
    os.makedirs(args.out_dir, exist_ok=True)

    print(f"[smoke] unsharded reference run ({len(specs)} specs)...")
    reference = CampaignRunner(workers=1).run(specs)
    print(f"[smoke] reference fingerprint: {reference.fingerprint()}")
    if not args.full:
        if reference.fingerprint() != PR3_SMOKE_FINGERPRINT:
            print(
                "FAIL: DigestSink fingerprint drifted from the PR 3 "
                f"recorded one ({PR3_SMOKE_FINGERPRINT})",
                file=sys.stderr,
            )
            return 1
        print("[smoke] fingerprint matches the PR 3 recorded value")

    paths = []
    for index in range(2):
        path = os.path.join(args.out_dir, f"shard{index}.jsonl")
        paths.append(path)
        print(f"[smoke] shard {index}/2 across {args.workers} workers -> {path}")
        result = CampaignRunner(
            workers=args.workers, shard=(index, 2)
        ).run(specs, jsonl=path)
        if not result.all_pairs_equivalent:
            print(result.summary())
            print("FAIL: a paired trace diff is not empty", file=sys.stderr)
            return 1

    merged = merge_jsonl(paths)
    print(f"[smoke] merged fingerprint:    {merged.fingerprint()}")
    if merged.fingerprint() != reference.fingerprint():
        print(
            "FAIL: merged shard fingerprint differs from the unsharded run",
            file=sys.stderr,
        )
        return 1
    if not merged.all_pairs_equivalent:
        print("FAIL: merged result contains a non-equivalent pair", file=sys.stderr)
        return 1
    print(
        f"[smoke] OK: {len(merged.runs)} runs + {len(merged.pairs)} pairs "
        f"merge byte-identically across 2 shards"
    )

    print("[smoke] burst=True unsharded run (span FIFO transfers)...")
    burst_specs = [
        replace(spec, burst=True, params=dict(spec.params)) for spec in specs
    ]
    burst = CampaignRunner(workers=1).run(burst_specs)
    print(f"[smoke] burst fingerprint:     {burst.fingerprint()}")
    if burst.fingerprint() != reference.fingerprint():
        print(
            "FAIL: burst-mode fingerprint differs from the word-mode run "
            "(burst transfers must be bit-exact)",
            file=sys.stderr,
        )
        return 1
    if not burst.all_pairs_equivalent:
        print(
            "FAIL: burst-mode campaign contains a non-equivalent pair",
            file=sys.stderr,
        )
        return 1
    print("[smoke] OK: burst=True reproduces the word-mode fingerprint")

    print("[smoke] record-and-replay sweep (1 anchor, 2 replays, 1 validated)...")
    anchor = ScenarioSpec(
        name="smoke_replay_anchor",
        workload="streaming",
        mode="smart",
        depth=4,
        params={"n_blocks": 3, "words_per_block": 10},
    )
    sweep = run_replay_sweep(anchor, depths=(1, 16), validate=1)
    replayed = sum(1 for row in sweep.rows if row.evaluator == "replay")
    if replayed != 2 or not sweep.all_validated:
        print(
            "FAIL: replay sweep did not produce 2 validated replay rows",
            file=sys.stderr,
        )
        return 1
    print(
        f"[smoke] OK: {replayed} replayed points, "
        f"{len(sweep.validations)} cross-validated against a fresh simulation"
    )

    print("[smoke] auto-routed conditional sweep (--auto-replay)...")
    cond_anchor = ScenarioSpec(
        name="smoke_auto_anchor",
        workload="random_traffic",
        mode="smart",
        depth=8,
        seed=3,
    )
    cond_specs = [cond_anchor] + sweep_point_specs(
        cond_anchor, depths=(2, 4, 16)
    )
    auto = CampaignRunner(
        workers=1, paired=False, auto_replay=True
    ).run(cond_specs)
    tags = {row.name: row.evaluator for row in auto.runs}
    auto_replayed = sum(1 for tag in tags.values() if tag == "replay")
    if tags[cond_anchor.name] != "simulate" or auto_replayed != 3:
        print(
            "FAIL: auto-replay routing did not produce 1 simulated anchor "
            f"+ 3 replayed points (got {tags})",
            file=sys.stderr,
        )
        return 1
    print(f"[smoke] auto-replay fingerprint: {auto.fingerprint()}")
    if auto.fingerprint() != PR9_AUTO_REPLAY_FINGERPRINT:
        print(
            "FAIL: auto-routed sweep fingerprint drifted from the PR 9 "
            f"recorded one ({PR9_AUTO_REPLAY_FINGERPRINT})",
            file=sys.stderr,
        )
        return 1
    plain = CampaignRunner(workers=1, paired=False).run(
        [cond_anchor]
    )
    anchor_row = next(r for r in auto.runs if r.name == cond_anchor.name)
    if anchor_row.deterministic_row() != plain.runs[0].deterministic_row():
        print(
            "FAIL: auto-replay anchor row differs from a plain simulation",
            file=sys.stderr,
        )
        return 1
    print(
        f"[smoke] OK: anchor simulated once, {auto_replayed} points replayed, "
        "fingerprint matches the PR 9 recorded value"
    )

    print("[smoke] telemetry-on run (sideband only, fingerprint pinned)...")
    tele_dir = os.path.join(args.out_dir, "telemetry")
    observed = CampaignRunner(
        workers=args.workers, telemetry_dir=tele_dir
    ).run(specs)
    print(f"[smoke] telemetry fingerprint: {observed.fingerprint()}")
    if observed.fingerprint() != reference.fingerprint():
        print(
            "FAIL: telemetry-on fingerprint differs from the telemetry-off "
            "run (the sideband leaked into deterministic rows)",
            file=sys.stderr,
        )
        return 1
    merged_telemetry = os.path.join(tele_dir, "telemetry.jsonl")
    events = load_events(merged_telemetry)
    pids = {event["pid"] for event in events}
    if len(pids) < 2:
        print(
            f"FAIL: merged telemetry carries {len(pids)} pid(s); expected "
            "the parent plus its pool workers",
            file=sys.stderr,
        )
        return 1
    print(
        f"[smoke] OK: fingerprint unchanged with telemetry on; "
        f"{len(events)} events from {len(pids)} processes in "
        f"{merged_telemetry}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
