#!/usr/bin/env python
"""Run the persistent benchmark harness and manage the BENCH_*.json trail.

Typical uses::

    # Produce BENCH_PR1.json at the repo root, comparing with the newest
    # previously committed BENCH_*.json (regressions > 20% fail the run):
    python tools/run_benchmarks.py --label PR1

    # Quick smoke run, no file written:
    python tools/run_benchmarks.py --repeats 1 --no-output

    # Gate a change against the committed trail (used by `make bench-check`):
    python tools/run_benchmarks.py --check --no-output

The emitted document contains a flat ``metrics`` map (see
``benchmarks/bench_harness.py`` for the names and their direction), a
per-scenario ``detail`` section, and — when a baseline was found — a
``comparison`` section with one speedup row per metric.
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import bench_harness  # noqa: E402  (paths set up just above)


def find_latest_baseline(exclude: str = "") -> str:
    """Newest BENCH_*.json at the repo root (by PR number, then mtime)."""

    def sort_key(path):
        match = re.search(r"BENCH_PR(\d+)", os.path.basename(path))
        number = int(match.group(1)) if match else -1
        return (number, os.path.getmtime(path))

    candidates = [
        path
        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
        if os.path.abspath(path) != os.path.abspath(exclude or "")
    ]
    return max(candidates, key=sort_key) if candidates else ""


def format_comparison(rows) -> str:
    lines = [
        f"{'metric':<34} {'baseline':>12} {'current':>12} {'speedup':>8}",
        "-" * 70,
    ]
    for row in rows:
        lines.append(
            f"{row['metric']:<34} {row['baseline']:>12.4g} "
            f"{row['current']:>12.4g} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="dev", help="run label, e.g. PR1")
    parser.add_argument(
        "--output",
        default=None,
        help="output JSON path (default BENCH_<label>.json at the repo root)",
    )
    parser.add_argument(
        "--no-output", action="store_true", help="do not write an output file"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline BENCH_*.json (default: newest one at the repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of-N wall-clock repeats"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression per metric (default 0.20)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any metric regresses beyond the threshold",
    )
    args = parser.parse_args(argv)

    if args.baseline and not os.path.exists(args.baseline):
        parser.error(f"baseline file not found: {args.baseline}")

    output = args.output or os.path.join(REPO_ROOT, f"BENCH_{args.label}.json")
    document = bench_harness.run_all(args.label, repeats=args.repeats)

    baseline_path = args.baseline or find_latest_baseline(exclude=output)
    regressions = []
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        if baseline.get("scale") != document["scale"]:
            print(
                f"baseline {os.path.basename(baseline_path)} was measured at "
                f"scale {baseline.get('scale')!r}, this run at "
                f"{document['scale']!r}; numbers are not comparable"
            )
            if args.check:
                return 2
            baseline_path = ""
    if baseline_path and os.path.exists(baseline_path):
        rows = bench_harness.compare(document, baseline)
        document["comparison"] = {
            "baseline_file": os.path.basename(baseline_path),
            "baseline_label": baseline.get("label", "?"),
            "threshold": args.threshold,
            "rows": rows,
        }
        print(f"\ncomparison vs {os.path.basename(baseline_path)} "
              f"(label {baseline.get('label', '?')}):")
        print(format_comparison(rows))
        compared = {row["metric"] for row in rows}
        new_metrics = sorted(
            name for name in document["metrics"] if name not in compared
        )
        for name in new_metrics:
            print(
                f"WARNING: metric {name} is not in the baseline "
                f"({baseline.get('label', '?')}); skipping its comparison — "
                "it will be gated starting from the next baseline"
            )
        advisory = getattr(bench_harness, "ADVISORY_METRICS", frozenset())
        regressed = [
            row
            for row in rows
            if not math.isnan(row["speedup"])
            and row["speedup"] < 1.0 - args.threshold
        ]
        for row in regressed:
            if row["metric"] in advisory:
                print(
                    f"ADVISORY: {row['metric']} is {1 / row['speedup']:.2f}x "
                    f"worse than {baseline.get('label', 'baseline')} "
                    "(advisory-only metric, not gated)"
                )
            else:
                print(
                    f"REGRESSION: {row['metric']} is {1 / row['speedup']:.2f}x "
                    f"worse than {baseline.get('label', 'baseline')}"
                )
        regressions = [
            row for row in regressed if row["metric"] not in advisory
        ]
    else:
        print("no baseline BENCH_*.json found; skipping comparison")

    if not args.no_output:
        with open(output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"\nwrote {output}")

    if args.check and regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
