#!/usr/bin/env python
"""Orchestrator smoke gate (used by ``make orchestrate-smoke`` and CI).

Drives the full distributed-campaign flow on one machine and asserts the
orchestration invariant end to end:

1. a warm-up campaign records per-spec wall times to a ``COSTS.json``
   sideband (``--record-costs`` path);
2. an :class:`~repro.campaign.orchestrator.Orchestrator` runs the same
   specs across **2 LocalSubprocessTransport hosts**, each executing
   ``python -m repro.analysis.cli campaign --shard-by-cost i/2 --jsonl ...``
   with the recorded costs steering the LPT partition;
3. the collected shard JSONLs are merged and the merged fingerprint must
   equal the **pinned unsharded fingerprint** (the same constant the
   campaign smoke gates on) byte for byte;
4. the merged JSONL artifact is written (CI uploads it) and must itself
   re-merge to the same fingerprint.

This is the property that makes multi-host campaigns trustworthy: shard
membership — however the partitioner assigns it — never leaks into the
deterministic rows.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from campaign_smoke import PR3_SMOKE_FINGERPRINT, SMOKE_SPECS  # noqa: E402
from repro.campaign import CampaignRunner, CostModel, default_campaign  # noqa: E402
from repro.campaign import merge_jsonl  # noqa: E402
from repro.campaign.orchestrator import Orchestrator, local_hosts  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        default=os.path.join(REPO_ROOT, "orchestrate-smoke"),
        help="directory receiving host workdirs, logs, shard and merged JSONLs",
    )
    parser.add_argument(
        "--hosts", type=int, default=2, help="local-subprocess host count"
    )
    parser.add_argument(
        "--workers-per-host", type=int, default=2,
        help="worker processes per shard campaign",
    )
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    names = [name for name in SMOKE_SPECS]
    by_name = {spec.name: spec for spec in default_campaign()}
    specs = [by_name[name] for name in names]

    costs_path = os.path.join(args.out_dir, "COSTS.json")
    print(f"[smoke] warm-up: recording per-spec wall times -> {costs_path}")
    warmup = CampaignRunner(workers=args.workers_per_host).run(specs)
    model = CostModel()
    model.observe_result(warmup)
    model.save(costs_path)
    print(f"[smoke] recorded costs for {len(model.names())} specs")
    if warmup.fingerprint() != PR3_SMOKE_FINGERPRINT:
        print(
            "FAIL: unsharded fingerprint drifted from the pinned one "
            f"({PR3_SMOKE_FINGERPRINT})",
            file=sys.stderr,
        )
        return 1

    merged_path = os.path.join(args.out_dir, "merged.jsonl")
    print(
        f"[smoke] orchestrating {len(names)} specs across {args.hosts} "
        f"local hosts x {args.workers_per_host} workers (cost-sharded)..."
    )
    orchestrator = Orchestrator(
        local_hosts(args.hosts),
        args.out_dir,
        workers_per_host=args.workers_per_host,
        costs_path=costs_path,
    )
    outcome = orchestrator.run(names, merged_jsonl=merged_path)
    print(outcome.hosts_table())
    print(
        f"[smoke] makespan spread (max/min shard wall): "
        f"{outcome.makespan_spread():.2f}"
    )

    print(f"[smoke] merged fingerprint: {outcome.fingerprint()}")
    if outcome.fingerprint() != PR3_SMOKE_FINGERPRINT:
        print(
            "FAIL: orchestrated merge differs from the pinned unsharded "
            f"fingerprint ({PR3_SMOKE_FINGERPRINT})",
            file=sys.stderr,
        )
        return 1
    if not outcome.result.all_pairs_equivalent:
        print(outcome.result.summary())
        print("FAIL: a paired trace diff is not empty", file=sys.stderr)
        return 1
    if not outcome.result.complete:
        print("FAIL: the orchestrated campaign has timeout rows", file=sys.stderr)
        return 1
    if merge_jsonl([merged_path]).fingerprint() != PR3_SMOKE_FINGERPRINT:
        print("FAIL: the merged JSONL artifact does not re-merge", file=sys.stderr)
        return 1
    print(
        f"[smoke] OK: {len(outcome.result.runs)} runs + "
        f"{len(outcome.result.pairs)} pairs, cost-sharded over "
        f"{args.hosts} hosts, merge byte-identical to the pinned "
        f"unsharded fingerprint"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
