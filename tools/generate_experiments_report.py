#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md.

Runs every experiment of the reproduction (Fig. 2/3 traces, Fig. 5 depth
sweep, the Section IV-C case study, and the two ablations), compares the
measured shapes against the paper's claims, and writes the markdown report.

Usage::

    python tools/generate_experiments_report.py [--output EXPERIMENTS.md]
                                                [--scale quick|medium|paper]

The default "medium" scale keeps the full report under a few minutes of
runtime; "paper" uses the paper-size workloads (1000 blocks of 1000 words).
"""

from __future__ import annotations

import argparse
import datetime
import platform
import sys

from repro import __version__
from repro.analysis import experiments
from repro.soc import SocConfig
from repro.workloads import PipelineModel, StreamingConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="EXPERIMENTS.md")
    parser.add_argument("--scale", choices=("quick", "medium", "paper"), default="medium")
    return parser.parse_args()


def scaled_configs(scale: str):
    if scale == "paper":
        streaming = StreamingConfig.paper_scale()
        soc = SocConfig.benchmark(n_chains=8, items_per_chain=4096)
        depths = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    elif scale == "medium":
        streaming = StreamingConfig(n_blocks=50, words_per_block=100)
        soc = SocConfig.benchmark(n_chains=4, items_per_chain=1024)
        depths = (1, 2, 4, 8, 16, 32, 64, 128)
    else:
        streaming = StreamingConfig(n_blocks=20, words_per_block=50)
        soc = SocConfig.benchmark(n_chains=2, items_per_chain=256)
        depths = (1, 2, 4, 8, 16, 64)
    return streaming, soc, depths


def check(condition: bool, description: str, checks: list) -> None:
    checks.append((condition, description))


def fig2_section(checks) -> str:
    result = experiments.fig2_fig3_example()
    check(result.smart_matches_reference, "Smart FIFO reproduces the Fig. 2 dates", checks)
    check(result.naive_differs_from_reference, "naive decoupling reproduces the Fig. 3 error", checks)
    lines = [
        "## EXP-FIG2 / EXP-FIG3 — execution traces of the writer/reader example",
        "",
        "Paper: Fig. 2 (reference dates, writes at 0/20/40 ns, reads at 0/20/40 ns)",
        "and Fig. 3 (decoupling without synchronization: reads at 0/15/30 ns).",
        "",
        "```",
        result.table(),
        "```",
        "",
        f"* Smart FIFO dates identical to the reference: **{result.smart_matches_reference}**",
        f"* Naive decoupling differs from the reference (as in Fig. 3): **{result.naive_differs_from_reference}**",
        "",
    ]
    return "\n".join(lines)


def fig5_section(streaming, depths, checks) -> str:
    rows = experiments.fig5_depth_sweep(depths=depths, base_config=streaming)
    series = experiments.fig5_series(rows)
    tdless = series[PipelineModel.TDLESS.value]
    tdfull = series[PipelineModel.TDFULL.value]
    untimed = series[PipelineModel.UNTIMED.value]

    max_depth = max(depths)
    check(tdfull[1] > tdless[1] * 0.8, "depth 1: TDfull is not faster than TDless", checks)
    check(
        tdfull[max_depth] < tdless[max_depth],
        "large depth: TDfull is faster than TDless",
        checks,
    )
    check(
        tdless[max_depth] / tdfull[max_depth] > 1.5,
        "large depth: TDfull gain factor is well above 1",
        checks,
    )
    flatness = max(tdless.values()) / max(min(tdless.values()), 1e-9)
    check(flatness < 2.0, "TDless duration is roughly flat versus depth", checks)
    check(
        all(tdfull[d] <= untimed[d] * 4 for d in depths),
        "TDfull stays within a small factor of the untimed model",
        checks,
    )
    completion_sets = {}
    for row in rows:
        if row["model"] == PipelineModel.UNTIMED.value:
            continue
        completion_sets.setdefault(row["depth"], set()).add(row["completion_ns"])
    check(
        all(len(dates) == 1 for dates in completion_sets.values()),
        "TDless and TDfull agree on the completion date at every depth",
        checks,
    )

    lines = [
        "## EXP-FIG5 — execution duration versus FIFO depth (Fig. 5)",
        "",
        f"Workload: {streaming.n_blocks} blocks x {streaming.words_per_block} words "
        f"(paper: 1000 x 1000), FIFO depths {list(depths)}.",
        "",
        "Paper shape: TDless flat vs depth; untimed and TDfull speed up with depth;",
        "TDfull slower than TDless at depth 1, faster from depth 2, about 2x at depth 4",
        "and up to ~6x for large FIFOs; TDfull about 2x slower than untimed.",
        "",
        "```",
        experiments.fig5_table(rows),
        "",
        experiments.fig5_speedup_table(rows),
        "```",
        "",
    ]
    return "\n".join(lines)


def case_study_section(soc, checks) -> str:
    result = experiments.case_study(soc)
    check(result.timing_identical, "case study: both policies give identical timing", checks)
    check(result.gain_percent > 15.0, "case study: Smart FIFO gives a substantial gain", checks)
    check(
        result.smart.context_switches < result.sync.context_switches / 2,
        "case study: Smart FIFO removes most context switches",
        checks,
    )
    lines = [
        "## EXP-CASE — heterogeneous many-core SoC case study (Section IV-C)",
        "",
        f"Synthetic platform: {soc.n_chains} accelerator chains x "
        f"({soc.workers_per_chain} workers + producer + consumer), "
        f"{soc.items_per_chain} words per chain, {soc.mesh_width}x{soc.mesh_height} NoC, "
        "one control core (quantum keeper) issuing configuration, monitoring and completion traffic.",
        "",
        "Paper result: 38.0 s -> 21.9 s, a gain of 42.3 %, with identical timing accuracy.",
        "",
        "```",
        result.table(),
        "```",
        "",
        f"Measured gain: **{result.gain_percent:.1f} %** "
        f"({result.sync.wall_seconds:.3f} s -> {result.smart.wall_seconds:.3f} s), "
        f"timing identical: **{result.timing_identical}**.",
        "",
    ]
    return "\n".join(lines)


def quantum_section(streaming, checks) -> str:
    config = StreamingConfig(
        n_blocks=max(10, streaming.n_blocks // 2),
        words_per_block=max(20, streaming.words_per_block // 2),
        fifo_depth=8,
    )
    rows = experiments.quantum_ablation(quanta_ns=(0, 100, 1000, 10000, 100000), config=config)
    smart_row = [row for row in rows if row["label"] == "smart_fifo"][0]
    big_quantum_rows = [row for row in rows if row.get("quantum_ns") == 100000]
    check(smart_row["timing_error_ns"] == 0.0, "ablation: Smart FIFO has zero timing error", checks)
    check(
        big_quantum_rows and big_quantum_rows[0]["timing_error_ns"] > 0.0,
        "ablation: a large global quantum introduces timing errors",
        checks,
    )
    lines = [
        "## EXP-QUANTUM — ablation: global-quantum decoupling vs the Smart FIFO",
        "",
        "Section II-A: with a global quantum, speed and accuracy trade off against",
        "each other and the user must pick the quantum.  The Smart FIFO needs no",
        "quantum and keeps the exact reference timing.",
        "",
        "```",
        experiments.quantum_table(rows),
        "```",
        "",
    ]
    return "\n".join(lines)


def context_switch_section(streaming, depths, checks) -> str:
    small_depths = tuple(d for d in depths if d <= 32)
    rows = experiments.context_switch_sweep(depths=small_depths, base_config=streaming)
    by_model = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["depth"]] = row["context_switches"]
    tdfull = by_model[PipelineModel.TDFULL.value]
    tdless = by_model[PipelineModel.TDLESS.value]
    check(
        tdfull[max(small_depths)] < tdfull[1] / 4,
        "context switches of TDfull shrink with the FIFO depth",
        checks,
    )
    check(
        max(tdless.values()) < 1.3 * min(tdless.values()),
        "context switches of TDless are depth independent",
        checks,
    )
    lines = [
        "## EXP-CSW — context-switch accounting (machine-independent companion of Fig. 5)",
        "",
        "The wall-clock numbers above depend on the host machine; the context-switch",
        "counts below do not, and they explain the Fig. 5 shape: TDless pays one",
        "context switch per FIFO access while untimed and TDfull only switch when the",
        "FIFO is internally full or empty.",
        "",
        "```",
        experiments.context_switch_table(rows),
        "```",
        "",
    ]
    return "\n".join(lines)


def main() -> None:
    args = parse_args()
    streaming, soc, depths = scaled_configs(args.scale)
    checks: list = []

    sections = [
        fig2_section(checks),
        fig5_section(streaming, depths, checks),
        case_study_section(soc, checks),
        quantum_section(streaming, checks),
        context_switch_section(streaming, depths, checks),
    ]

    passed = sum(1 for ok, _ in checks if ok)
    summary_lines = [
        "## Shape-check summary",
        "",
        f"{passed} / {len(checks)} structural claims of the paper hold on this run:",
        "",
    ]
    for ok, description in checks:
        summary_lines.append(f"* {'PASS' if ok else 'FAIL'} — {description}")
    summary_lines.append("")

    header = [
        "# EXPERIMENTS — paper versus measured",
        "",
        "*Fast and Accurate TLM Simulations using Temporal Decoupling for FIFO-based*",
        "*Communications* (Helmstetter, Cornet, Galilée, Moy, Vivet — DATE 2013).",
        "",
        f"Generated by `python tools/generate_experiments_report.py --scale {args.scale}` "
        f"on {datetime.date.today().isoformat()}, repro version {__version__}, "
        f"Python {platform.python_version()} on {platform.system()} {platform.machine()}.",
        "",
        "Absolute durations cannot match the paper (the substrate is a pure-Python",
        "discrete-event kernel, not the authors' C++ SystemC testbed on their",
        "workstation); what is reproduced and checked is the *shape* of every result:",
        "who wins, by roughly which factor, where the crossovers fall, and the strict",
        "timing-accuracy guarantees.  Wall-clock numbers below are from this machine;",
        "context-switch counts are machine independent.",
        "",
    ]

    content = "\n".join(header + sections + summary_lines)
    with open(args.output, "w") as handle:
        handle.write(content + "\n")
    print(f"wrote {args.output}")
    print(f"shape checks: {passed}/{len(checks)} passed")
    if passed != len(checks):
        for ok, description in checks:
            if not ok:
                print(f"  FAILED: {description}", file=sys.stderr)


if __name__ == "__main__":
    main()
