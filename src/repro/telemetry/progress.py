"""The ``--progress`` live stderr ticker.

A tiny single-line progress renderer for long campaigns and orchestrated
runs: items done / total, observed rate, an ETA and a free-form detail
tail (the orchestrator shows its per-host state there).  When a cost map
from ``COSTS.json`` is supplied the ETA weights the *remaining work* by
estimated per-item cost instead of assuming uniform items — exactly what
the cost model exists for.

The ticker writes to stderr only (stdout stays machine-parsable), uses
carriage-return rewriting on TTYs and rate-limited plain lines on pipes,
and never touches deterministic outputs — it is display, not data.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional


def _format_eta(seconds: float) -> str:
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "--:--"
    seconds = int(seconds + 0.5)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class ProgressTicker:
    """Renders ``[label] done/total | rate | ETA mm:ss | detail``.

    Parameters
    ----------
    total:
        Number of items expected (specs, hosts, ...).
    label:
        Prefix shown in brackets.
    costs:
        Optional ``{item_name: estimated_cost}`` (arbitrary units, e.g.
        the cost model's per-spec estimates).  With it, the ETA scales
        elapsed time by remaining *cost* over completed cost; without
        it, by remaining count over completed count.
    stream:
        Output stream (default ``sys.stderr``).
    min_interval_s:
        Re-render rate limit; plain (non-TTY) streams stretch it 10x so
        CI logs are not flooded.
    """

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        costs: Optional[Dict[str, float]] = None,
        stream=None,
        min_interval_s: float = 0.5,
    ):
        self.total = max(total, 0)
        self.label = label
        self.costs = dict(costs) if costs else None
        self.stream = sys.stderr if stream is None else stream
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._min_interval_s = (
            min_interval_s if self._tty else min_interval_s * 10
        )
        self.done = 0
        self._done_cost = 0.0
        self._total_cost = (
            sum(self.costs.values()) if self.costs else float(self.total)
        )
        self._start = time.monotonic()
        self._last_render = 0.0
        self._last_width = 0
        self._detail = ""

    # ------------------------------------------------------------------
    def item_done(self, name: Optional[str] = None, detail: str = "") -> None:
        """Mark one item complete and re-render (rate limited)."""
        self.done += 1
        if self.costs is not None:
            self._done_cost += self.costs.get(name or "", 1.0)
        else:
            self._done_cost = float(self.done)
        if detail:
            self._detail = detail
        self._render()

    def tick(self, detail: str = "") -> None:
        """Re-render without progress (e.g. each orchestrator poll)."""
        if detail:
            self._detail = detail
        self._render()

    def finish(self) -> None:
        """Final render plus a newline so later output starts clean."""
        self._render(force=True)
        if self._tty and self._last_width:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    def _eta_s(self, elapsed: float) -> float:
        if self._done_cost <= 0:
            return float("inf")
        remaining = max(self._total_cost - self._done_cost, 0.0)
        return elapsed * remaining / self._done_cost

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self._min_interval_s:
            return
        self._last_render = now
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        text = (
            f"[{self.label}] {self.done}/{self.total} done | "
            f"{rate:.2f}/s | ETA {_format_eta(self._eta_s(elapsed))}"
        )
        if self._detail:
            text += f" | {self._detail}"
        if self._tty:
            padding = " " * max(self._last_width - len(text), 0)
            self.stream.write("\r" + text + padding)
            self._last_width = len(text)
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
