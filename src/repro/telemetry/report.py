"""Fold telemetry sideband files into human tables.

Backs the ``repro.analysis.cli telemetry-report`` subcommand: one or many
sideband JSONL files (or directories of them — a campaign ``--telemetry``
directory, an orchestrator directory with per-host files) aggregate into

* **top spans** ranked by total and self time,
* **counters** and the latest **gauges**,
* **worker utilization** — per campaign-worker busy/queue-wait split over
  the observed wall window,
* a **replay routing breakdown** (simulated vs replayed points, envelope
  refusals by probing construct),
* a **per-host table** for orchestrated runs (launch/poll/collect spans,
  shard makespan, observed specs/s).

Everything here is read-side only: it consumes the schema written by
:mod:`repro.telemetry.core` and renders with the repo's standard ASCII
tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .core import load_events, telemetry_files


class SpanAgg:
    """Aggregate of all spans sharing one name."""

    __slots__ = ("name", "count", "total_s", "self_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.max_s = 0.0

    def add(self, dur_s: float, self_s: float) -> None:
        self.count += 1
        self.total_s += dur_s
        self.self_s += self_s
        if dur_s > self.max_s:
            self.max_s = dur_s


class TelemetryAggregate:
    """Everything the report sections read, built in one pass."""

    def __init__(self):
        self.files: List[str] = []
        self.spans: Dict[str, SpanAgg] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, object] = {}
        #: ``pid -> component`` from meta lines.
        self.components: Dict[int, str] = {}
        #: ``pid -> (busy_s, queue_wait_s, first_t0, last_end)`` for
        #: campaign workers (busy = execute + serialize span time).
        self.workers: Dict[int, List[float]] = {}
        #: ``host -> {span name -> total_s, "polls": n, ...}``.
        self.hosts: Dict[str, Dict[str, float]] = {}
        self.host_gauges: Dict[str, Dict[str, object]] = {}
        self.event_count = 0

    # ------------------------------------------------------------------
    def add_file(self, path: str) -> None:
        self.files.append(path)
        for event in load_events(path):
            self.event_count += 1
            kind = event.get("kind")
            if kind == "meta":
                pid = event.get("pid")
                if isinstance(pid, int):
                    self.components[pid] = str(event.get("component", "?"))
            elif kind == "span":
                self._add_span(event)
            elif kind == "counter":
                name = str(event.get("name"))
                self.counters[name] = (
                    self.counters.get(name, 0) + event.get("value", 0)
                )
            elif kind == "gauge":
                self.gauges[str(event.get("name"))] = event.get("value")

    def _add_span(self, event: Dict[str, object]) -> None:
        name = str(event.get("name"))
        dur_s = float(event.get("dur_s", 0.0))
        self_s = float(event.get("self_s", dur_s))
        agg = self.spans.get(name)
        if agg is None:
            agg = self.spans[name] = SpanAgg(name)
        agg.add(dur_s, self_s)
        pid = event.get("pid")
        attrs = event.get("attrs") or {}
        if isinstance(pid, int) and name in (
            "campaign.execute", "campaign.serialize", "campaign.queue_wait"
        ):
            window = self.workers.setdefault(
                pid, [0.0, 0.0, float("inf"), 0.0]
            )
            t0 = float(event.get("t0", 0.0))
            if name == "campaign.queue_wait":
                window[1] += dur_s
            else:
                window[0] += dur_s
            if t0 < window[2]:
                window[2] = t0
            if t0 + dur_s > window[3]:
                window[3] = t0 + dur_s
        host = attrs.get("host") if isinstance(attrs, dict) else None
        if host is not None and name.startswith("orchestrate."):
            entry = self.hosts.setdefault(str(host), {})
            entry[name] = entry.get(name, 0.0) + dur_s
            entry[name + ".count"] = entry.get(name + ".count", 0) + 1

    # ------------------------------------------------------------------
    def span_rows(self, top: int) -> List[Dict[str, object]]:
        ranked = sorted(
            self.spans.values(), key=lambda agg: agg.total_s, reverse=True
        )[:top]
        return [
            {
                "span": agg.name,
                "count": agg.count,
                "total_s": f"{agg.total_s:.4f}",
                "self_s": f"{agg.self_s:.4f}",
                "mean_ms": f"{agg.total_s / agg.count * 1e3:.3f}",
                "max_ms": f"{agg.max_s * 1e3:.3f}",
            }
            for agg in ranked
        ]

    def counter_rows(self, top: int) -> List[Dict[str, object]]:
        ranked = sorted(self.counters.items())[:top]
        return [
            {
                "counter": name,
                "value": (
                    f"{value:.6f}".rstrip("0").rstrip(".")
                    if isinstance(value, float)
                    else value
                ),
            }
            for name, value in ranked
        ]

    def worker_rows(self) -> List[Dict[str, object]]:
        rows = []
        for pid in sorted(self.workers):
            busy_s, wait_s, first, last = self.workers[pid]
            window = max(last - first, 0.0)
            utilization = busy_s / window if window > 0 else 0.0
            rows.append(
                {
                    "worker": f"{self.components.get(pid, 'worker')}:{pid}",
                    "busy_s": f"{busy_s:.4f}",
                    "queue_wait_s": f"{wait_s:.4f}",
                    "window_s": f"{window:.4f}",
                    "utilization": f"{min(utilization, 1.0):.1%}",
                }
            )
        return rows

    def replay_rows(self) -> List[Dict[str, object]]:
        return [
            {"metric": name, "value": value}
            for name, value in sorted(self.counters.items())
            if name.startswith("replay.")
        ]

    def host_rows(self) -> List[Dict[str, object]]:
        rows = []
        for host in sorted(self.hosts):
            entry = self.hosts[host]
            specs_per_s = self.gauges.get(f"orchestrate.specs_per_s.{host}")
            rows.append(
                {
                    "host": host,
                    "launch_s": f"{entry.get('orchestrate.launch', 0.0):.4f}",
                    "poll_s": f"{entry.get('orchestrate.poll', 0.0):.4f}",
                    "polls": int(entry.get("orchestrate.poll.count", 0)),
                    "collect_s": f"{entry.get('orchestrate.collect', 0.0):.4f}",
                    "makespan_s": f"{entry.get('orchestrate.host', 0.0):.4f}",
                    "specs_per_s": (
                        f"{specs_per_s:.3f}"
                        if isinstance(specs_per_s, (int, float))
                        else "-"
                    ),
                }
            )
        return rows


def aggregate_telemetry(paths: Sequence[str]) -> TelemetryAggregate:
    """Load and fold every sideband file under ``paths`` (files or dirs)."""
    aggregate = TelemetryAggregate()
    for path in telemetry_files(paths):
        aggregate.add_file(path)
    return aggregate


def render_report(
    paths: Sequence[str],
    top: int = 15,
    aggregate: Optional[TelemetryAggregate] = None,
) -> str:
    """The full ``telemetry-report`` text for ``paths``."""
    from ..analysis.reporting import dict_rows_table

    if aggregate is None:
        aggregate = aggregate_telemetry(paths)
    sections: List[str] = [
        f"{aggregate.event_count} events from {len(aggregate.files)} "
        f"telemetry file(s)"
    ]
    span_rows = aggregate.span_rows(top)
    if span_rows:
        sections.append(
            dict_rows_table(
                span_rows,
                ["span", "count", "total_s", "self_s", "mean_ms", "max_ms"],
                title=f"Top spans by total time (top {top})",
            )
        )
    worker_rows = aggregate.worker_rows()
    if worker_rows:
        sections.append(
            dict_rows_table(
                worker_rows,
                ["worker", "busy_s", "queue_wait_s", "window_s", "utilization"],
                title="Worker utilization (execute+serialize over observed window)",
            )
        )
    host_rows = aggregate.host_rows()
    if host_rows:
        sections.append(
            dict_rows_table(
                host_rows,
                ["host", "launch_s", "poll_s", "polls", "collect_s",
                 "makespan_s", "specs_per_s"],
                title="Orchestrated hosts (launch/poll/collect, shard makespan)",
            )
        )
    replay_rows = aggregate.replay_rows()
    if replay_rows:
        sections.append(
            dict_rows_table(
                replay_rows,
                ["metric", "value"],
                title="Replay routing breakdown",
            )
        )
    counter_rows = aggregate.counter_rows(top)
    if counter_rows:
        sections.append(
            dict_rows_table(
                counter_rows,
                ["counter", "value"],
                title=f"Counters (first {top}, alphabetical)",
            )
        )
    gauge_items = sorted(
        (name, value)
        for name, value in aggregate.gauges.items()
    )
    if gauge_items:
        sections.append(
            dict_rows_table(
                [{"gauge": name, "value": value} for name, value in gauge_items],
                ["gauge", "value"],
                title="Gauges (latest value)",
            )
        )
    return "\n\n".join(sections)
