"""Telemetry sideband: spans, counters, gauges and live progress.

See :mod:`repro.telemetry.core` for the event layer and sideband schema,
:mod:`repro.telemetry.report` for the ``telemetry-report`` aggregation
and :mod:`repro.telemetry.progress` for the ``--progress`` stderr ticker.
"""

from .core import (
    DEFAULT_BUFFER_LIMIT,
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    NullTelemetry,
    Telemetry,
    load_events,
    merge_telemetry_files,
    telemetry_files,
)
from .progress import ProgressTicker
from .report import TelemetryAggregate, aggregate_telemetry, render_report

__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "NULL_TELEMETRY",
    "TELEMETRY_SCHEMA",
    "NullTelemetry",
    "Telemetry",
    "ProgressTicker",
    "TelemetryAggregate",
    "aggregate_telemetry",
    "load_events",
    "merge_telemetry_files",
    "render_report",
    "telemetry_files",
]
