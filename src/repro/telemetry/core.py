"""Process-local telemetry: spans, counters and gauges on a sideband.

The campaign's deterministic JSONL rows must never contain wall-clock
values or PIDs — that property is what makes shard files merge byte for
byte (see :mod:`repro.campaign.runner`).  Everything wall-clock therefore
lives *beside* the rows, the way ``COSTS.json`` already does: a
:class:`Telemetry` instance records monotonic-clock spans, scalar
counters and gauges into a bounded in-memory buffer and flushes them as a
JSONL *sideband* file that tooling (``repro.analysis.cli
telemetry-report``) folds into human tables.

Disabled is the default and must cost (almost) nothing: hot paths guard
with one attribute check — ``if telemetry.enabled:`` — against the
module-level :data:`NULL_TELEMETRY` singleton, exactly the discipline of
:class:`repro.kernel.tracing.NullSink` and ``Simulator.dep_recorder``.

Sideband schema (one JSON object per line)::

    {"kind": "meta", "schema": 1, "component": "campaign-worker",
     "pid": 1234, "host": "..."}                       # once per writer
    {"kind": "span", "name": "campaign.execute", "pid": 1234,
     "t0": 12.345, "dur_s": 0.042, "self_s": 0.017,
     "attrs": {"spec": "streaming_d2"}}                # optional attrs
    {"kind": "counter", "name": "kernel.delta_cycles", "pid": 1234,
     "value": 1882}
    {"kind": "gauge", "name": "campaign.workers", "pid": 1234,
     "value": 4}

``t0`` is :func:`time.monotonic` — on Linux a system-wide clock, so spans
stamped by the campaign parent (job enqueue) and measured in a worker
(job start) subtract meaningfully.  Every event carries the writer's
``pid``, which makes merging a directory of per-worker files a plain
concatenation (:func:`merge_telemetry_files`) without losing worker
attribution.  PIDs and wall-clock are *only* ever written here, never
into deterministic campaign rows.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Dict, IO, Iterable, List, Optional, Sequence

#: Version of the sideband line format above.
TELEMETRY_SCHEMA = 1

#: Default bound of the in-memory span buffer; overflowing events are
#: dropped and counted under the ``telemetry.dropped_events`` counter.
DEFAULT_BUFFER_LIMIT = 100_000


class _NullSpan:
    """The no-op context manager :data:`NULL_TELEMETRY` hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that is off: every method is a no-op.

    Hot paths never call these methods — they guard with the class-level
    ``enabled`` attribute first (one load, one truth test), so the
    disabled configuration pays one attribute check, not a call.
    """

    enabled = False

    def span(self, name: str, **attrs) -> "_NullSpan":
        return _NULL_SPAN

    def span_at(self, name: str, t0: float, dur_s: float, **attrs) -> None:
        pass

    def counter(self, name: str, value=1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled instance: everything instrumentable defaults to it.
NULL_TELEMETRY = NullTelemetry()


class _Span:
    """An open span: context manager measuring one monotonic interval.

    Nested spans report their *self* time too: each frame accumulates the
    duration of its direct children, and ``self_s = dur_s - child_s`` —
    the quantity ``telemetry-report`` ranks by when a parent span (say
    ``kernel.run``) is dominated by an instrumented child phase.
    """

    __slots__ = ("_telemetry", "name", "attrs", "_t0", "_child_s")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, object]):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._child_s = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._stack.append(self)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_s = time.monotonic() - self._t0
        telemetry = self._telemetry
        stack = telemetry._stack
        stack.pop()
        if stack:
            stack[-1]._child_s += dur_s
        telemetry._record_span(
            self.name, self._t0, dur_s, dur_s - self._child_s, self.attrs
        )
        return False


class Telemetry:
    """An enabled telemetry recorder bound to one sideband file.

    Parameters
    ----------
    component:
        Writer identity stamped into the file's meta line
        (``"campaign-worker"``, ``"orchestrator"``, ...).
    path:
        Sideband JSONL file :meth:`flush` appends to.  ``None`` keeps
        events purely in memory (unit tests, ad-hoc inspection via
        :meth:`drain`).
    buffer_limit:
        Bound of the span/event buffer; overflow drops the event and
        counts it (``telemetry.dropped_events``), it never grows the
        buffer — a campaign must not trade determinism for memory.
    """

    enabled = True

    def __init__(
        self,
        component: str,
        path: Optional[str] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
    ):
        if buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.component = component
        self.path = path
        self.buffer_limit = buffer_limit
        self.pid = os.getpid()
        self._events: List[Dict[str, object]] = []
        self._counters: Dict[str, float] = {}
        self._flushed_counters: Dict[str, float] = {}
        self._gauges: Dict[str, object] = {}
        self._stack: List[_Span] = []
        self._dropped = 0
        self._meta_written = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """Open a span: ``with telemetry.span("campaign.execute", spec=n):``"""
        return _Span(self, name, attrs)

    def span_at(self, name: str, t0: float, dur_s: float, **attrs) -> None:
        """Record an externally measured span (``t0`` in monotonic
        seconds) — e.g. a queue wait whose start was stamped by another
        process on the same machine."""
        self._record_span(name, t0, dur_s, dur_s, attrs)

    def _record_span(
        self,
        name: str,
        t0: float,
        dur_s: float,
        self_s: float,
        attrs: Dict[str, object],
    ) -> None:
        if len(self._events) >= self.buffer_limit:
            self._dropped += 1
            return
        event: Dict[str, object] = {
            "kind": "span",
            "name": name,
            "pid": self.pid,
            "t0": t0,
            "dur_s": dur_s,
            "self_s": max(self_s, 0.0),
        }
        if attrs:
            event["attrs"] = attrs
        self._events.append(event)

    def counter(self, name: str, value=1) -> None:
        """Accumulate ``value`` (int or float) under ``name``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        """Set ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    # ------------------------------------------------------------------
    # Flushing / inspection
    # ------------------------------------------------------------------
    def _meta_line(self) -> Dict[str, object]:
        return {
            "kind": "meta",
            "schema": TELEMETRY_SCHEMA,
            "component": self.component,
            "pid": self.pid,
            "host": socket.gethostname(),
        }

    def drain(self) -> List[Dict[str, object]]:
        """All pending events (meta + spans + counter deltas + gauges),
        clearing the buffer — what a :meth:`flush` would have written."""
        events: List[Dict[str, object]] = []
        if not self._meta_written:
            events.append(self._meta_line())
            self._meta_written = True
        if self._dropped:
            self.counter("telemetry.dropped_events", self._dropped)
            self._dropped = 0
        events.extend(self._events)
        self._events = []
        for name in sorted(self._counters):
            total = self._counters[name]
            delta = total - self._flushed_counters.get(name, 0)
            if delta:
                events.append(
                    {
                        "kind": "counter",
                        "name": name,
                        "pid": self.pid,
                        "value": delta,
                    }
                )
            self._flushed_counters[name] = total
        for name in sorted(self._gauges):
            events.append(
                {
                    "kind": "gauge",
                    "name": name,
                    "pid": self.pid,
                    "value": self._gauges[name],
                }
            )
        self._gauges = {}
        return events

    def flush(self) -> None:
        """Append pending events to :attr:`path` (no-op without a path).

        Counters flush as *deltas* since the previous flush, so a worker
        appending after every job never double-counts; gauges flush their
        latest value and reset."""
        events = self.drain()
        if self.path is None or not events:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as stream:
            _write_events(stream, events)

    def close(self) -> None:
        if self._stack:
            raise RuntimeError(
                f"telemetry closed with {len(self._stack)} open span(s): "
                f"{', '.join(frame.name for frame in self._stack)}"
            )
        self.flush()


def _write_events(stream: IO[str], events: Iterable[Dict[str, object]]) -> None:
    for event in events:
        stream.write(json.dumps(event, sort_keys=True, separators=(",", ":")))
        stream.write("\n")


# ---------------------------------------------------------------------------
# Reading the sideband back
# ---------------------------------------------------------------------------
def load_events(path: str) -> List[Dict[str, object]]:
    """Parse one sideband JSONL file into its event dicts.

    Raises :class:`ValueError` with the line number on corrupt lines and
    on meta lines claiming a schema this reader does not speak."""
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path} line {number} is not valid JSON: {exc}"
                ) from None
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(
                    f"{path} line {number} is not a telemetry event"
                )
            if event["kind"] == "meta":
                schema = event.get("schema")
                if schema != TELEMETRY_SCHEMA:
                    raise ValueError(
                        f"{path} line {number} uses telemetry schema "
                        f"{schema!r}; this version reads schema "
                        f"{TELEMETRY_SCHEMA}"
                    )
            events.append(event)
    return events


def _is_telemetry_file(path: str) -> bool:
    """Whether the first non-empty line looks like a telemetry event.

    Directory expansion sniffs files instead of trusting the extension:
    a telemetry directory routinely also holds the campaign's *rows*
    JSONL, which is not a sideband and must not poison a report."""
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    return False
                return isinstance(event, dict) and "kind" in event
    except OSError:
        return False
    return True  # an empty file merges to nothing, harmlessly


def telemetry_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into sideband file paths.

    A directory contributes its ``*.jsonl`` files in sorted order,
    skipping JSONL that is not a telemetry sideband (see
    :func:`_is_telemetry_file`); a missing path — or a directory with no
    sideband files — raises (a typo must not silently report on
    nothing).  Explicitly named files are never filtered: naming a
    non-telemetry file is an error the reader reports."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            candidates = [
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            ]
            candidates = [c for c in candidates if _is_telemetry_file(c)]
            if not candidates:
                raise ValueError(f"{path} contains no telemetry .jsonl files")
            files.extend(candidates)
        elif os.path.exists(path):
            files.append(path)
        else:
            raise ValueError(f"telemetry path {path} does not exist")
    return files


def merge_telemetry_files(
    sources: Sequence[str], destination: str, remove_sources: bool = False
) -> int:
    """Concatenate sideband files into ``destination``; return the event
    count.  Every event line carries its writer's pid, so concatenation
    loses nothing; sources are validated line by line first (a torn
    worker file must fail loudly, not poison the merged report).  With
    ``remove_sources`` the per-worker parts are deleted after the merge —
    the campaign's end-of-run fold into one ``telemetry.jsonl``."""
    merged: List[Dict[str, object]] = []
    for source in sources:
        merged.extend(load_events(source))
    directory = os.path.dirname(destination)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = destination + ".tmp"
    with open(tmp_path, "w") as stream:
        _write_events(stream, merged)
    os.replace(tmp_path, destination)
    if remove_sources:
        for source in sources:
            if os.path.abspath(source) != os.path.abspath(destination):
                os.remove(source)
    return len(merged)
