"""Experiment drivers.

One driver per table/figure of the paper (see DESIGN.md, "Per-experiment
index").  The benchmark harness under ``benchmarks/`` and the
EXPERIMENTS.md generator call these functions; they can also be used
interactively::

    from repro.analysis import experiments
    rows = experiments.fig5_depth_sweep(depths=[1, 2, 4, 8, 16])
    print(experiments.fig5_table(rows))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..campaign.evaluators import ReplaySweepResult, run_replay_sweep
from ..campaign.spec import MODE_REFERENCE, MODE_SMART, ScenarioSpec
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from ..soc.platform import FifoPolicy, SocConfig, SocPlatform
from ..td.quantum import GlobalQuantum
from ..workloads.streaming import (
    ExampleMode,
    PipelineModel,
    StreamingConfig,
    StreamingPipeline,
    WriterReaderExample,
)
from .reporting import ascii_table, dict_rows_table
from .stats import RunResult, measure_run


# ---------------------------------------------------------------------------
# EXP-FIG2 / EXP-FIG3 — execution traces of the writer/reader example
# ---------------------------------------------------------------------------
@dataclass
class ExampleResult:
    """Dates produced by the three executions of the Fig. 1 model."""

    reference: List[tuple]
    naive_decoupled: List[tuple]
    smart: List[tuple]

    @property
    def smart_matches_reference(self) -> bool:
        return self.smart == self.reference

    @property
    def naive_differs_from_reference(self) -> bool:
        return self.naive_decoupled != self.reference

    def rows(self) -> List[Dict[str, object]]:
        """One dict row per transferred value (CSV-friendly counterpart of
        :meth:`table`)."""
        rows: List[Dict[str, object]] = []
        for (value, ref_w, ref_r), (_, naive_w, naive_r), (_, smart_w, smart_r) in zip(
            self.reference, self.naive_decoupled, self.smart
        ):
            rows.append(
                {
                    "value": value,
                    "reference_write_ns": ref_w,
                    "reference_read_ns": ref_r,
                    "naive_write_ns": naive_w,
                    "naive_read_ns": naive_r,
                    "smart_write_ns": smart_w,
                    "smart_read_ns": smart_r,
                }
            )
        return rows

    def table(self) -> str:
        headers = ["value", "reference wr/rd (ns)", "naive wr/rd (ns)", "smart wr/rd (ns)"]
        rows = []
        for (value, ref_w, ref_r), (_, naive_w, naive_r), (_, smart_w, smart_r) in zip(
            self.reference, self.naive_decoupled, self.smart
        ):
            rows.append(
                [
                    value,
                    f"{ref_w:g} / {ref_r:g}",
                    f"{naive_w:g} / {naive_r:g}",
                    f"{smart_w:g} / {smart_r:g}",
                ]
            )
        return ascii_table(headers, rows, title="Fig. 2/3 — write/read dates per value")


def fig2_fig3_example(fifo_depth: int = 4) -> ExampleResult:
    """Run the Fig. 1 example in the three modes and collect the dates."""

    def run(mode: ExampleMode) -> List[tuple]:
        sim = Simulator(f"example_{mode.value}")
        example = WriterReaderExample(sim, mode=mode, fifo_depth=fifo_depth)
        example.run()
        return example.dates_ns()

    return ExampleResult(
        reference=run(ExampleMode.REFERENCE),
        naive_decoupled=run(ExampleMode.DECOUPLED_NO_SYNC),
        smart=run(ExampleMode.SMART),
    )


# ---------------------------------------------------------------------------
# EXP-FIG5 — execution duration versus FIFO depth
# ---------------------------------------------------------------------------
DEFAULT_FIG5_DEPTHS = (1, 2, 4, 8, 16, 32, 64, 128)
DEFAULT_FIG5_MODELS = (
    PipelineModel.UNTIMED,
    PipelineModel.TDLESS,
    PipelineModel.TDFULL,
)


def run_pipeline(
    model: PipelineModel, config: StreamingConfig, label: Optional[str] = None
) -> RunResult:
    """Measure one pipeline run (wall time + kernel counters)."""

    def setup(sim: Simulator) -> StreamingPipeline:
        return StreamingPipeline(sim, model, config)

    def extras(sim: Simulator, pipeline: StreamingPipeline) -> Dict[str, float]:
        pipeline.verify()
        completion = pipeline.completion_time
        return {
            "completion_ns": completion.to(TimeUnit.NS) if completion else 0.0,
            "fifo_depth": config.fifo_depth,
            "model": model.value,
        }

    return measure_run(label or model.value, setup, extras)


def fig5_depth_sweep(
    depths: Sequence[int] = DEFAULT_FIG5_DEPTHS,
    base_config: Optional[StreamingConfig] = None,
    models: Sequence[PipelineModel] = DEFAULT_FIG5_MODELS,
) -> List[Dict[str, object]]:
    """Reproduce the Fig. 5 sweep; returns one dict row per (depth, model)."""
    base = base_config or StreamingConfig()
    rows: List[Dict[str, object]] = []
    for depth in depths:
        config = StreamingConfig(
            n_blocks=base.n_blocks,
            words_per_block=base.words_per_block,
            fifo_depth=depth,
            source_word_time=base.source_word_time,
            transmitter_word_time=base.transmitter_word_time,
            sink_word_time=base.sink_word_time,
            block_overhead=base.block_overhead,
        )
        for model in models:
            result = run_pipeline(model, config, label=f"{model.value}_d{depth}")
            row = result.as_row()
            row["depth"] = depth
            row["model"] = model.value
            rows.append(row)
    return rows


def fig5_table(rows: Sequence[Dict[str, object]]) -> str:
    columns = ["depth", "model", "wall_seconds", "context_switches", "completion_ns"]
    return dict_rows_table(rows, columns, title="Fig. 5 — execution duration vs FIFO depth")


def fig5_series(rows: Sequence[Dict[str, object]]) -> Dict[str, Dict[int, float]]:
    """Pivot the sweep rows into {model: {depth: wall_seconds}}."""
    series: Dict[str, Dict[int, float]] = {}
    for row in rows:
        series.setdefault(str(row["model"]), {})[int(row["depth"])] = float(
            row["wall_seconds"]
        )
    return series


def fig5_speedup_table(rows: Sequence[Dict[str, object]]) -> str:
    """TDfull speed-up over TDless per depth (the paper's headline numbers)."""
    series = fig5_series(rows)
    tdless = series.get(PipelineModel.TDLESS.value, {})
    tdfull = series.get(PipelineModel.TDFULL.value, {})
    untimed = series.get(PipelineModel.UNTIMED.value, {})
    table_rows = []
    for depth in sorted(tdfull):
        row = [depth]
        if depth in tdless and tdfull[depth] > 0:
            row.append(f"{tdless[depth] / tdfull[depth]:.2f}x")
        else:
            row.append("-")
        if depth in untimed and untimed[depth] > 0:
            row.append(f"{tdfull[depth] / untimed[depth]:.2f}x")
        else:
            row.append("-")
        table_rows.append(row)
    return ascii_table(
        ["depth", "TDfull speedup vs TDless", "TDfull slowdown vs untimed"],
        table_rows,
        title="Fig. 5 — derived ratios",
    )


# ---------------------------------------------------------------------------
# EXP-FIG5-REPLAY — the same sweep from one simulation per curve
# ---------------------------------------------------------------------------
@dataclass
class Fig5ReplayResult:
    """Fig. 5 depth curves computed by record-and-replay.

    One full simulation per mode (the recording anchor); every other depth
    is priced by :class:`~repro.replay.ReplayEngine` replaying the anchor's
    dependency spool, with a sampled subset cross-validated against fresh
    simulations.  Wall-clock columns are absent by design — replay
    reproduces the *simulated* observables (end dates, context switches,
    delta cycles), which are the machine-independent Fig. 5 companions.
    """

    sweeps: Dict[str, ReplaySweepResult]

    @property
    def all_validated(self) -> bool:
        return all(sweep.all_validated for sweep in self.sweeps.values())

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for mode, sweep in self.sweeps.items():
            for record in sorted(sweep.rows, key=lambda r: r.depth):
                rows.append(
                    {
                        "depth": record.depth,
                        "mode": mode,
                        "evaluator": record.evaluator,
                        "sim_end_ns": record.sim_end_fs / 1e6,
                        "context_switches": record.context_switches,
                        "delta_cycles": record.delta_cycles,
                    }
                )
        return rows

    def table(self) -> str:
        return dict_rows_table(
            self.rows(),
            ["depth", "mode", "evaluator", "sim_end_ns", "context_switches",
             "delta_cycles"],
            title="Fig. 5 (replay) — simulated duration vs FIFO depth",
        )

    def summary(self) -> str:
        lines = []
        for mode, sweep in self.sweeps.items():
            replayed = sum(1 for r in sweep.rows if r.evaluator == "replay")
            validated = sum(1 for v in sweep.validations if v.ok)
            per_replay = (
                sweep.replay_seconds / replayed if replayed else float("nan")
            )
            speedup = (
                sweep.record_seconds / per_replay if replayed else float("nan")
            )
            lines.append(
                f"{mode}: 1 simulation + {replayed} replays "
                f"({sweep.points_per_s:.0f} points/s, {speedup:.0f}x per "
                f"point vs simulate); validated {validated}/"
                f"{len(sweep.validations)} sampled points exactly"
            )
        return "\n".join(lines)


def fig5_replay_sweep(
    depths: Sequence[int] = DEFAULT_FIG5_DEPTHS,
    base_config: Optional[StreamingConfig] = None,
    anchor_depth: Optional[int] = None,
    validate: int = 2,
    modes: Sequence[str] = (MODE_SMART, MODE_REFERENCE),
) -> Fig5ReplayResult:
    """Reproduce the Fig. 5 depth sweep with one simulation per curve.

    Records the streaming pipeline once per mode at ``anchor_depth``
    (default: the middle of ``depths``) and replays the recording at every
    other depth; ``validate`` sampled points per curve are re-simulated and
    compared exactly (see
    :func:`repro.campaign.evaluators.run_replay_sweep`).
    """
    base = base_config or StreamingConfig()
    if anchor_depth is None:
        anchor_depth = sorted(depths)[len(depths) // 2]
    sweeps: Dict[str, ReplaySweepResult] = {}
    for mode in modes:
        anchor = ScenarioSpec(
            name=f"fig5_replay_{mode}",
            workload="streaming",
            mode=mode,
            depth=anchor_depth,
            params={
                "n_blocks": base.n_blocks,
                "words_per_block": base.words_per_block,
            },
        )
        sweeps[mode] = run_replay_sweep(
            anchor, depths=depths, validate=validate
        )
    return Fig5ReplayResult(sweeps=sweeps)


# ---------------------------------------------------------------------------
# EXP-CASE — the heterogeneous many-core case study
# ---------------------------------------------------------------------------
@dataclass
class CaseStudyResult:
    """Comparison of the two FIFO policies on the same SoC and job."""

    smart: RunResult
    sync: RunResult
    timing_identical: bool
    consumer_dates_ns: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def gain_percent(self) -> float:
        return self.smart.gain_percent_vs(self.sync)

    def rows(self) -> List[Dict[str, object]]:
        """One dict row per policy (CSV-friendly counterpart of :meth:`table`)."""
        rows = []
        for result in (self.sync, self.smart):
            row = result.as_row()
            row["gain_percent"] = round(self.gain_percent, 2)
            row["timing_identical"] = self.timing_identical
            rows.append(row)
        return rows

    def table(self) -> str:
        rows = [
            [
                "sync-per-access",
                f"{self.sync.wall_seconds:.4f}",
                self.sync.context_switches,
                self.sync.extra.get("fifo_blocking_waits", ""),
            ],
            [
                "Smart FIFO",
                f"{self.smart.wall_seconds:.4f}",
                self.smart.context_switches,
                self.smart.extra.get("fifo_blocking_waits", ""),
            ],
        ]
        table = ascii_table(
            ["policy", "wall seconds", "context switches", "fifo blocking waits"],
            rows,
            title="Case study (Section IV-C) — Smart FIFO vs sync-per-access",
        )
        return (
            f"{table}\n"
            f"gain: {self.gain_percent:.1f}% "
            f"(timing identical: {self.timing_identical})"
        )


def case_study(config: Optional[SocConfig] = None) -> CaseStudyResult:
    """Run the case-study SoC with both FIFO policies and compare."""
    config = config or SocConfig.benchmark()
    finishes: Dict[str, Dict[str, float]] = {}

    def make_setup(policy: FifoPolicy):
        def setup(sim: Simulator) -> SocPlatform:
            return SocPlatform(sim, policy=policy, config=config)

        return setup

    def extras(sim: Simulator, platform: SocPlatform) -> Dict[str, float]:
        platform.verify()
        dates = {
            name: time.to(TimeUnit.NS) if time is not None else -1.0
            for name, time in platform.consumer_finish_times().items()
        }
        finishes[platform.policy.value] = dates
        return {
            "fifo_blocking_waits": platform.fifo_blocking_waits(),
            "noc_packets": platform.mesh.total_packets_routed,
        }

    sync_result = measure_run(
        "sync_per_access", make_setup(FifoPolicy.SYNC_PER_ACCESS), extras
    )
    smart_result = measure_run("smart_fifo", make_setup(FifoPolicy.SMART), extras)
    timing_identical = finishes.get("smart") == finishes.get("sync")
    return CaseStudyResult(
        smart=smart_result,
        sync=sync_result,
        timing_identical=timing_identical,
        consumer_dates_ns=finishes,
    )


# ---------------------------------------------------------------------------
# EXP-QUANTUM — global-quantum decoupling ablation
# ---------------------------------------------------------------------------
def quantum_ablation(
    quanta_ns: Sequence[int] = (0, 100, 1000, 10000),
    config: Optional[StreamingConfig] = None,
) -> List[Dict[str, object]]:
    """Compare quantum-based decoupling against TDless and the Smart FIFO.

    For each quantum the pipeline runs with regular FIFOs and quantum-keeper
    decoupling; the completion date is compared with the TDless reference to
    quantify the timing error, while the wall time and context switches show
    the speed side of the trade-off.  The Smart FIFO row (exact timing, no
    quantum to tune) is appended for comparison.
    """
    config = config or StreamingConfig()
    rows: List[Dict[str, object]] = []

    reference = run_pipeline(PipelineModel.TDLESS, config, label="tdless_reference")
    reference_completion = reference.extra["completion_ns"]
    reference_row = reference.as_row()
    reference_row.update({"quantum_ns": "-", "timing_error_ns": 0.0})
    rows.append(reference_row)

    for quantum_ns in quanta_ns:
        def setup(sim: Simulator, quantum_ns=quantum_ns) -> StreamingPipeline:
            GlobalQuantum.instance(sim).set(quantum_ns, TimeUnit.NS)
            return StreamingPipeline(sim, PipelineModel.QUANTUM, config)

        def extras(sim: Simulator, pipeline: StreamingPipeline) -> Dict[str, float]:
            pipeline.verify()
            completion = pipeline.completion_time
            return {
                "completion_ns": completion.to(TimeUnit.NS) if completion else 0.0,
            }

        result = measure_run(f"quantum_{quantum_ns}ns", setup, extras)
        row = result.as_row()
        row["quantum_ns"] = quantum_ns
        row["timing_error_ns"] = abs(
            result.extra["completion_ns"] - reference_completion
        )
        rows.append(row)

    smart = run_pipeline(PipelineModel.TDFULL, config, label="smart_fifo")
    smart_row = smart.as_row()
    smart_row.update(
        {
            "quantum_ns": "none needed",
            "timing_error_ns": abs(smart.extra["completion_ns"] - reference_completion),
        }
    )
    rows.append(smart_row)
    return rows


def quantum_table(rows: Sequence[Dict[str, object]]) -> str:
    columns = [
        "label",
        "quantum_ns",
        "wall_seconds",
        "context_switches",
        "completion_ns",
        "timing_error_ns",
    ]
    return dict_rows_table(
        rows, columns, title="Quantum ablation — accuracy/speed trade-off"
    )


# ---------------------------------------------------------------------------
# EXP-CSW — context-switch accounting (machine-independent Fig. 5 companion)
# ---------------------------------------------------------------------------
def context_switch_sweep(
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
    base_config: Optional[StreamingConfig] = None,
) -> List[Dict[str, object]]:
    """Context-switch counts per model and FIFO depth (no wall-clock noise)."""
    rows = fig5_depth_sweep(depths, base_config)
    return [
        {
            "depth": row["depth"],
            "model": row["model"],
            "context_switches": row["context_switches"],
            "delta_cycles": row["delta_cycles"],
        }
        for row in rows
    ]


def context_switch_table(rows: Sequence[Dict[str, object]]) -> str:
    return dict_rows_table(
        rows,
        ["depth", "model", "context_switches", "delta_cycles"],
        title="Context switches vs FIFO depth",
    )


Iterable  # typing convenience re-export
SimTime
ns
