"""Run measurement helpers.

The evaluation section of the paper reports wall-clock execution durations
(Fig. 5, Section IV-C).  Wall-clock numbers are machine dependent, so every
measurement in this reproduction also records the kernel activity counters
(context switches in particular), which explain the wall-clock shape in a
machine-independent way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.simtime import SimTime
from ..kernel.simulator import Simulator


@dataclass
class RunResult:
    """Measurements of one simulation run."""

    label: str
    wall_seconds: float
    sim_end: SimTime
    context_switches: int
    method_invocations: int
    delta_cycles: int
    timed_phases: int
    #: Free-form additional metrics provided by the scenario.
    extra: Dict[str, float] = field(default_factory=dict)
    #: The most-activated processes as ``(name, activations)`` — the
    #: per-process breakdown behind the context-switch totals above.
    top_processes: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_activations(self) -> int:
        return self.context_switches + self.method_invocations

    def speedup_vs(self, other: "RunResult") -> float:
        """How many times faster this run is compared to ``other``."""
        if self.wall_seconds == 0:
            return float("inf")
        return other.wall_seconds / self.wall_seconds

    def gain_percent_vs(self, other: "RunResult") -> float:
        """Relative wall-clock gain of this run versus ``other`` (in %).

        The paper reports the case-study result this way: 38.0 s -> 21.9 s
        is a gain of 42.3 %.
        """
        if other.wall_seconds == 0:
            return 0.0
        return 100.0 * (other.wall_seconds - self.wall_seconds) / other.wall_seconds

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "label": self.label,
            "wall_seconds": round(self.wall_seconds, 4),
            "context_switches": self.context_switches,
            "method_invocations": self.method_invocations,
            "delta_cycles": self.delta_cycles,
            "sim_end": str(self.sim_end),
        }
        row.update(self.extra)
        return row


def measure_run(
    label: str,
    setup: Callable[[Simulator], object],
    extra_metrics: Optional[Callable[[Simulator, object], Dict[str, float]]] = None,
) -> RunResult:
    """Build a simulator, run the scenario returned by ``setup``, time it.

    ``setup(sim)`` must build the model and return an object with a
    ``run()`` method (or None, in which case ``sim.run()`` is called).
    ``extra_metrics(sim, scenario)`` may add scenario-specific numbers.
    """
    sim = Simulator(label)
    scenario = setup(sim)
    start = time.perf_counter()
    if scenario is not None and hasattr(scenario, "run"):
        scenario.run()
    else:
        sim.run()
    wall = time.perf_counter() - start
    stats = sim.stats
    extra = extra_metrics(sim, scenario) if extra_metrics else {}
    return RunResult(
        label=label,
        wall_seconds=wall,
        sim_end=sim.now,
        context_switches=stats.thread_activations,
        method_invocations=stats.method_invocations,
        delta_cycles=stats.delta_cycles,
        timed_phases=stats.timed_phases,
        extra=extra,
        top_processes=stats.top_processes(8),
    )
