"""Validation and evaluation harness.

* :mod:`repro.analysis.trace_diff` — the reorder-and-compare trace
  equivalence check of Section IV-A;
* :mod:`repro.analysis.stats` — wall-clock + kernel-counter measurement of
  simulation runs;
* :mod:`repro.analysis.reporting` — ASCII tables / CSV / text plots;
* :mod:`repro.analysis.experiments` — one driver per table and figure of
  the paper (Fig. 2/3 traces, Fig. 5 depth sweep, Section IV-C case study,
  plus the quantum and context-switch ablations).
"""

from .reporting import ascii_table, csv_text, dict_rows_table, format_gain, text_plot, write_csv
from .stats import RunResult, measure_run
from .trace_diff import (
    TraceComparison,
    assert_equivalent,
    compare_collectors,
    compare_sorted_lines,
    compare_spools,
    compare_traces,
    emission_order_changed,
    sorted_lines,
)

__all__ = [
    "RunResult",
    "TraceComparison",
    "ascii_table",
    "assert_equivalent",
    "compare_collectors",
    "compare_sorted_lines",
    "compare_spools",
    "compare_traces",
    "csv_text",
    "dict_rows_table",
    "emission_order_changed",
    "format_gain",
    "measure_run",
    "sorted_lines",
    "text_plot",
    "write_csv",
]
