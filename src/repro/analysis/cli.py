"""Command-line interface to the experiment drivers.

Lets a user regenerate any table or figure of the paper without writing
code::

    python -m repro.analysis.cli fig2
    python -m repro.analysis.cli fig5 --depths 1,2,4,8,16 --blocks 50 --words 100
    python -m repro.analysis.cli case-study --chains 4 --items 512
    python -m repro.analysis.cli quantum --quanta 0,100,1000
    python -m repro.analysis.cli context-switches --depths 1,4,16
    python -m repro.analysis.cli fig5 --csv fig5.csv

Every subcommand prints the corresponding ASCII table; ``--csv`` also dumps
the raw rows for external plotting.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..soc import SocConfig
from ..workloads import StreamingConfig
from . import experiments
from .reporting import write_csv


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.cli",
        description="Regenerate the evaluation tables/figures of the DATE 2013 "
        "Smart FIFO paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig2 = subparsers.add_parser("fig2", help="Fig. 2/3 writer/reader traces")
    fig2.add_argument("--depth", type=int, default=4, help="FIFO depth of the example")

    fig5 = subparsers.add_parser("fig5", help="Fig. 5 depth sweep")
    fig5.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 16, 64])
    fig5.add_argument("--blocks", type=int, default=20)
    fig5.add_argument("--words", type=int, default=50)
    fig5.add_argument("--csv", default=None, help="also write the rows to a CSV file")

    case = subparsers.add_parser("case-study", help="Section IV-C SoC case study")
    case.add_argument("--chains", type=int, default=4)
    case.add_argument("--items", type=int, default=512)
    case.add_argument("--workers", type=int, default=3)

    quantum = subparsers.add_parser("quantum", help="global-quantum ablation")
    quantum.add_argument("--quanta", type=_int_list, default=[0, 100, 1000, 10000])
    quantum.add_argument("--blocks", type=int, default=20)
    quantum.add_argument("--words", type=int, default=50)

    csw = subparsers.add_parser("context-switches", help="context-switch sweep")
    csw.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 32])
    csw.add_argument("--blocks", type=int, default=20)
    csw.add_argument("--words", type=int, default=50)

    return parser


def _streaming_config(args: argparse.Namespace) -> StreamingConfig:
    return StreamingConfig(n_blocks=args.blocks, words_per_block=args.words)


def run_fig2(args: argparse.Namespace) -> str:
    result = experiments.fig2_fig3_example(fifo_depth=args.depth)
    lines = [
        result.table(),
        "",
        f"Smart FIFO matches the reference: {result.smart_matches_reference}",
        f"Naive decoupling differs (Fig. 3 error): {result.naive_differs_from_reference}",
    ]
    return "\n".join(lines)


def run_fig5(args: argparse.Namespace) -> str:
    rows = experiments.fig5_depth_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return "\n\n".join(
        [experiments.fig5_table(rows), experiments.fig5_speedup_table(rows)]
    )


def run_case_study(args: argparse.Namespace) -> str:
    config = SocConfig.benchmark(n_chains=args.chains, items_per_chain=args.items)
    config.workers_per_chain = args.workers
    config.validate()
    result = experiments.case_study(config)
    return result.table()


def run_quantum(args: argparse.Namespace) -> str:
    rows = experiments.quantum_ablation(
        quanta_ns=args.quanta, config=_streaming_config(args)
    )
    return experiments.quantum_table(rows)


def run_context_switches(args: argparse.Namespace) -> str:
    rows = experiments.context_switch_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    return experiments.context_switch_table(rows)


_COMMANDS = {
    "fig2": run_fig2,
    "fig5": run_fig5,
    "case-study": run_case_study,
    "quantum": run_quantum,
    "context-switches": run_context_switches,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised through main()
    raise SystemExit(main())
