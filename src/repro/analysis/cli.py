"""Command-line interface to the experiment drivers.

Lets a user regenerate any table or figure of the paper without writing
code::

    python -m repro.analysis.cli fig2
    python -m repro.analysis.cli fig5 --depths 1,2,4,8,16 --blocks 50 --words 100
    python -m repro.analysis.cli case-study --chains 4 --items 512
    python -m repro.analysis.cli quantum --quanta 0,100,1000
    python -m repro.analysis.cli context-switches --depths 1,4,16
    python -m repro.analysis.cli fig5 --csv fig5.csv
    python -m repro.analysis.cli campaign --workers 4

Every subcommand prints the corresponding ASCII table; ``--csv`` also dumps
the raw rows for external plotting.

The ``campaign`` subcommand runs the declarative scenario campaign of
:mod:`repro.campaign`: every spec once (sharded over ``--workers``
processes) plus the paired reference/Smart trace-equivalence battery; the
printed fingerprint is byte-identical for any worker count.  Multi-machine
campaigns split the spec list with ``--shard i/N`` and stream deterministic
result rows with ``--jsonl out.jsonl``; the shard files are recombined with
``--merge-jsonl a.jsonl,b.jsonl``, whose fingerprint is byte-identical to
the unsharded run::

    python -m repro.analysis.cli campaign --shard 0/2 --jsonl s0.jsonl
    python -m repro.analysis.cli campaign --shard 1/2 --jsonl s1.jsonl
    python -m repro.analysis.cli campaign --merge-jsonl s0.jsonl,s1.jsonl

An interrupted campaign is picked up with ``--resume`` (skips the specs
whose rows already sit in the JSONL file and reproduces the uninterrupted
fingerprint); ``--trace-sink`` selects the worker trace pipeline (the
default ``digest`` sink streams traces into their digests with bounded
memory) and ``--trace-sink spool --trace-out DIR`` exports the reordered
per-run trace files::

    python -m repro.analysis.cli campaign --jsonl out.jsonl --resume
    python -m repro.analysis.cli campaign --trace-sink spool --trace-out traces/
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..campaign import (
    DEFAULT_TRACE_SINK,
    CampaignResumeError,
    CampaignRunner,
    default_campaign,
    describe_specs,
    merge_jsonl,
)
from ..kernel.tracing import SINK_KINDS
from ..soc import SocConfig
from ..workloads import StreamingConfig
from . import experiments
from .reporting import dict_rows_table, write_csv


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--workers``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _shard(text: str) -> Tuple[int, int]:
    """argparse type for ``--shard i/N`` (0 <= i < N, N >= 1)."""
    parts = text.split("/")
    try:
        if len(parts) != 2:
            raise ValueError
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected i/N (e.g. 0/2), got {text!r}"
        )
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 1, got {count}"
        )
    if not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.cli",
        description="Regenerate the evaluation tables/figures of the DATE 2013 "
        "Smart FIFO paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_csv_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--csv", default=None, help="also write the rows to a CSV file"
        )

    fig2 = subparsers.add_parser("fig2", help="Fig. 2/3 writer/reader traces")
    fig2.add_argument("--depth", type=int, default=4, help="FIFO depth of the example")
    add_csv_flag(fig2)

    fig5 = subparsers.add_parser("fig5", help="Fig. 5 depth sweep")
    fig5.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 16, 64])
    fig5.add_argument("--blocks", type=int, default=20)
    fig5.add_argument("--words", type=int, default=50)
    add_csv_flag(fig5)

    case = subparsers.add_parser("case-study", help="Section IV-C SoC case study")
    case.add_argument("--chains", type=int, default=4)
    case.add_argument("--items", type=int, default=512)
    case.add_argument("--workers", type=int, default=3)
    add_csv_flag(case)

    quantum = subparsers.add_parser("quantum", help="global-quantum ablation")
    quantum.add_argument("--quanta", type=_int_list, default=[0, 100, 1000, 10000])
    quantum.add_argument("--blocks", type=int, default=20)
    quantum.add_argument("--words", type=int, default=50)
    add_csv_flag(quantum)

    csw = subparsers.add_parser("context-switches", help="context-switch sweep")
    csw.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 32])
    csw.add_argument("--blocks", type=int, default=20)
    csw.add_argument("--words", type=int, default=50)
    add_csv_flag(csw)

    campaign = subparsers.add_parser(
        "campaign", help="parallel scenario campaign + paired equivalence"
    )
    campaign.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes (1 = inline; must be >= 1)",
    )
    campaign.add_argument(
        "--specs",
        default=None,
        help="comma-separated spec names (default: the whole default campaign)",
    )
    campaign.add_argument(
        "--no-paired",
        action="store_true",
        help="skip the paired reference/Smart equivalence runs",
    )
    campaign.add_argument(
        "--shard",
        type=_shard,
        default=None,
        metavar="i/N",
        help="run only the i-th of N deterministic spec shards (for "
        "multi-machine campaigns; merge the per-shard --jsonl files with "
        "--merge-jsonl to reproduce the unsharded fingerprint)",
    )
    campaign.add_argument(
        "--jsonl",
        default=None,
        metavar="OUT.JSONL",
        help="stream one deterministic JSONL row per completed run/pair "
        "(plus a campaign header row) to this file",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="with --jsonl: re-read the file, skip the specs whose rows "
        "are already present and append only the missing ones (the file "
        "must carry the same campaign header; the final fingerprint is "
        "identical to an uninterrupted run)",
    )
    campaign.add_argument(
        "--merge-jsonl",
        default=None,
        metavar="A.JSONL,B.JSONL",
        help="merge previously written campaign JSONL files (e.g. one per "
        "shard) and print the merged tables/fingerprint instead of running",
    )
    campaign.add_argument(
        "--trace-sink",
        choices=SINK_KINDS,
        default=DEFAULT_TRACE_SINK,
        help="trace sink every worker simulation emits into: 'digest' "
        "(default) streams the trace into its digest with bounded memory, "
        "'list' materializes records (historical behaviour), 'spool' keeps "
        "a sorted on-disk spool (enables --trace-out), 'null' disables "
        "tracing and with it trace validation",
    )
    campaign.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="with --trace-sink spool: export one reordered trace file "
        "per run to DIR (<spec>.<mode>.trace)",
    )
    campaign.add_argument(
        "--list", action="store_true", help="list the specs and exit"
    )
    add_csv_flag(campaign)

    return parser


def _streaming_config(args: argparse.Namespace) -> StreamingConfig:
    return StreamingConfig(n_blocks=args.blocks, words_per_block=args.words)


def run_fig2(args: argparse.Namespace) -> str:
    result = experiments.fig2_fig3_example(fifo_depth=args.depth)
    if args.csv:
        write_csv(result.rows(), args.csv)
    lines = [
        result.table(),
        "",
        f"Smart FIFO matches the reference: {result.smart_matches_reference}",
        f"Naive decoupling differs (Fig. 3 error): {result.naive_differs_from_reference}",
    ]
    return "\n".join(lines)


def run_fig5(args: argparse.Namespace) -> str:
    rows = experiments.fig5_depth_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return "\n\n".join(
        [experiments.fig5_table(rows), experiments.fig5_speedup_table(rows)]
    )


def run_case_study(args: argparse.Namespace) -> str:
    config = SocConfig.benchmark(n_chains=args.chains, items_per_chain=args.items)
    config.workers_per_chain = args.workers
    config.validate()
    result = experiments.case_study(config)
    if args.csv:
        write_csv(result.rows(), args.csv)
    return result.table()


def run_quantum(args: argparse.Namespace) -> str:
    rows = experiments.quantum_ablation(
        quanta_ns=args.quanta, config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return experiments.quantum_table(rows)


def run_context_switches(args: argparse.Namespace) -> str:
    rows = experiments.context_switch_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return experiments.context_switch_table(rows)


def _campaign_output(result) -> tuple:
    sections = [result.table()]
    if result.pairs:
        sections.append(result.pairs_table())
    sections.append(result.summary())
    output = "\n\n".join(sections)
    return (output, 0) if result.all_pairs_equivalent else (output, 1)


def run_campaign(args: argparse.Namespace) -> str:
    if args.resume and not args.jsonl:
        raise SystemExit("--resume requires --jsonl (the file to resume from)")
    if args.trace_out and args.trace_sink != "spool":
        raise SystemExit("--trace-out requires --trace-sink spool")
    if args.merge_jsonl:
        conflicting = [
            flag for flag, active in (
                ("--jsonl", args.jsonl is not None),
                ("--resume", args.resume),
                ("--shard", args.shard is not None),
                ("--specs", args.specs is not None),
                ("--workers", args.workers != 1),
                ("--no-paired", args.no_paired),
                ("--list", args.list),
                ("--trace-out", args.trace_out is not None),
            ) if active
        ]
        if conflicting:
            raise SystemExit(
                f"--merge-jsonl only merges previously written files and "
                f"cannot be combined with {', '.join(conflicting)}"
            )
        paths = [p.strip() for p in args.merge_jsonl.split(",") if p.strip()]
        try:
            result = merge_jsonl(paths)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot merge campaign JSONL: {exc}")
        if args.csv:
            write_csv(result.run_rows(), args.csv)
        return _campaign_output(result)
    specs = default_campaign()
    if args.specs:
        wanted = [name.strip() for name in args.specs.split(",") if name.strip()]
        by_name = {spec.name: spec for spec in specs}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            raise SystemExit(
                f"unknown spec name(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(by_name))}"
            )
        specs = [by_name[name] for name in wanted]
    if args.list:
        rows = describe_specs(specs)
        if args.csv:
            write_csv(rows, args.csv)
        return dict_rows_table(
            rows,
            ["name", "workload", "mode", "depth", "quantum_ns", "seed",
             "timing", "pairable", "params"],
            title="Campaign specs",
        )
    runner = CampaignRunner(
        workers=args.workers, paired=not args.no_paired, shard=args.shard,
        trace_sink=args.trace_sink, trace_out=args.trace_out,
    )
    try:
        result = runner.run(specs, jsonl=args.jsonl, resume=args.resume)
    except CampaignResumeError as exc:
        # Only resume problems get the friendly one-liner; a ValueError
        # from inside a simulation is a real bug and keeps its traceback.
        raise SystemExit(f"cannot resume campaign: {exc}")
    if args.csv:
        write_csv(result.run_rows(), args.csv)
    return _campaign_output(result)


_COMMANDS = {
    "fig2": run_fig2,
    "fig5": run_fig5,
    "case-study": run_case_study,
    "quantum": run_quantum,
    "context-switches": run_context_switches,
    "campaign": run_campaign,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point.  Command handlers return either the output string
    (exit code 0) or an ``(output, exit_code)`` tuple."""
    parser = build_parser()
    args = parser.parse_args(argv)
    result = _COMMANDS[args.command](args)
    output, code = result if isinstance(result, tuple) else (result, 0)
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised through main()
    raise SystemExit(main())
