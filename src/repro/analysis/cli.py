"""Command-line interface to the experiment drivers.

Lets a user regenerate any table or figure of the paper without writing
code::

    python -m repro.analysis.cli fig2
    python -m repro.analysis.cli fig5 --depths 1,2,4,8,16 --blocks 50 --words 100
    python -m repro.analysis.cli case-study --chains 4 --items 512
    python -m repro.analysis.cli quantum --quanta 0,100,1000
    python -m repro.analysis.cli context-switches --depths 1,4,16
    python -m repro.analysis.cli fig5 --csv fig5.csv
    python -m repro.analysis.cli campaign --workers 4

Every subcommand prints the corresponding ASCII table; ``--csv`` also dumps
the raw rows for external plotting.

The ``campaign`` subcommand runs the declarative scenario campaign of
:mod:`repro.campaign`: every spec once (sharded over ``--workers``
processes) plus the paired reference/Smart trace-equivalence battery; the
printed fingerprint is byte-identical for any worker count.  Multi-machine
campaigns split the spec list with ``--shard i/N`` and stream deterministic
result rows with ``--jsonl out.jsonl``; the shard files are recombined with
``--merge-jsonl a.jsonl,b.jsonl``, whose fingerprint is byte-identical to
the unsharded run::

    python -m repro.analysis.cli campaign --shard 0/2 --jsonl s0.jsonl
    python -m repro.analysis.cli campaign --shard 1/2 --jsonl s1.jsonl
    python -m repro.analysis.cli campaign --merge-jsonl s0.jsonl,s1.jsonl

An interrupted campaign is picked up with ``--resume`` (skips the specs
whose rows already sit in the JSONL file and reproduces the uninterrupted
fingerprint); ``--trace-sink`` selects the worker trace pipeline (the
default ``digest`` sink streams traces into their digests with bounded
memory) and ``--trace-sink spool --trace-out DIR`` exports the reordered
per-run trace files::

    python -m repro.analysis.cli campaign --jsonl out.jsonl --resume
    python -m repro.analysis.cli campaign --trace-sink spool --trace-out traces/

Production-scale campaigns use the orchestrator layer
(:mod:`repro.campaign.orchestrator`): ``--record-costs`` writes observed
per-spec wall times to a ``COSTS.json`` sideband (never into the
deterministic rows), ``--shard-by-cost i/N`` partitions the campaign with
the cost-balanced LPT partitioner instead of round-robin, and
``--spec-timeout`` / ``--campaign-budget`` kill overrunning jobs,
persisting deterministic ``timeout`` rows that ``--resume`` re-runs::

    python -m repro.analysis.cli campaign --record-costs COSTS.json
    python -m repro.analysis.cli campaign --shard-by-cost 0/2 --costs COSTS.json \
        --jsonl s0.jsonl --spec-timeout 120 --campaign-budget 3600

The ``orchestrate`` subcommand drives the whole flow across N hosts (local
subprocesses by default, ssh hosts via ``--hosts-file``), each running one
cost-balanced shard, then collects and merges the shard JSONLs — the
merged fingerprint is byte-identical to an unsharded single-pool run::

    python -m repro.analysis.cli orchestrate --hosts 2 --workers-per-host 2
    python -m repro.analysis.cli orchestrate --hosts-file hosts.json \
        --costs COSTS.json --record-costs COSTS.json --merged-jsonl merged.jsonl

Observability: ``campaign`` and ``orchestrate`` accept ``--telemetry DIR``
(write the spans/counters sideband described in :mod:`repro.telemetry` to
``DIR/telemetry.jsonl``; deterministic rows and fingerprints are
byte-identical with it on or off) and ``--progress`` (a live stderr
ticker).  ``telemetry-report`` renders a collected sideband::

    python -m repro.analysis.cli campaign --telemetry tele/ --progress
    python -m repro.analysis.cli telemetry-report tele/
"""

from __future__ import annotations

import argparse
import os
import re
import socket
from typing import List, Optional, Sequence, Tuple

from ..campaign import (
    DEFAULT_TRACE_SINK,
    CampaignResumeError,
    CampaignRunner,
    CostModel,
    JsonlSink,
    RunBudget,
    default_campaign,
    describe_specs,
    merge_jsonl,
    run_replay_sweep,
    sweep_point_specs,
)
from ..replay import ReplayError
from ..campaign.orchestrator import (
    Orchestrator,
    OrchestratorError,
    local_hosts,
    parse_hosts_file,
)
from ..kernel.tracing import SINK_KINDS
from ..soc import SocConfig
from ..telemetry import NULL_TELEMETRY, Telemetry, render_report
from ..workloads import StreamingConfig
from . import experiments
from .reporting import dict_rows_table, write_csv


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--workers``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type for wall-clock limits (seconds, must be > 0)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {value}"
        )
    return value


def _shard(text: str) -> Tuple[int, int]:
    """argparse type for ``--shard i/N`` (0 <= i < N, N >= 1)."""
    parts = text.split("/")
    try:
        if len(parts) != 2:
            raise ValueError
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected i/N (e.g. 0/2), got {text!r}"
        )
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 1, got {count}"
        )
    if not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.cli",
        description="Regenerate the evaluation tables/figures of the DATE 2013 "
        "Smart FIFO paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_csv_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--csv", default=None, help="also write the rows to a CSV file"
        )

    fig2 = subparsers.add_parser("fig2", help="Fig. 2/3 writer/reader traces")
    fig2.add_argument("--depth", type=int, default=4, help="FIFO depth of the example")
    add_csv_flag(fig2)

    fig5 = subparsers.add_parser("fig5", help="Fig. 5 depth sweep")
    fig5.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 16, 64])
    fig5.add_argument("--blocks", type=int, default=20)
    fig5.add_argument("--words", type=int, default=50)
    fig5.add_argument(
        "--replay",
        action="store_true",
        help="compute the sweep by record-and-replay: one simulation per "
        "curve (smart and reference), every other depth replayed from its "
        "dependency spool, with --validate sampled points re-simulated and "
        "compared exactly (simulated observables only — no wall clock)",
    )
    fig5.add_argument(
        "--anchor-depth",
        type=_positive_int,
        default=None,
        metavar="DEPTH",
        help="with --replay: the depth to simulate and record (default: "
        "the middle of --depths)",
    )
    fig5.add_argument(
        "--validate",
        type=int,
        default=2,
        metavar="N",
        help="with --replay: cross-validate N sampled replayed points "
        "against fresh simulations (0 = trust the anchor self-check)",
    )
    add_csv_flag(fig5)

    case = subparsers.add_parser("case-study", help="Section IV-C SoC case study")
    case.add_argument("--chains", type=int, default=4)
    case.add_argument("--items", type=int, default=512)
    case.add_argument("--workers", type=int, default=3)
    add_csv_flag(case)

    quantum = subparsers.add_parser("quantum", help="global-quantum ablation")
    quantum.add_argument("--quanta", type=_int_list, default=[0, 100, 1000, 10000])
    quantum.add_argument("--blocks", type=int, default=20)
    quantum.add_argument("--words", type=int, default=50)
    add_csv_flag(quantum)

    csw = subparsers.add_parser("context-switches", help="context-switch sweep")
    csw.add_argument("--depths", type=_int_list, default=[1, 2, 4, 8, 32])
    csw.add_argument("--blocks", type=int, default=20)
    csw.add_argument("--words", type=int, default=50)
    add_csv_flag(csw)

    campaign = subparsers.add_parser(
        "campaign", help="parallel scenario campaign + paired equivalence"
    )
    campaign.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes (1 = inline; must be >= 1)",
    )
    campaign.add_argument(
        "--specs",
        default=None,
        help="comma-separated spec names (default: the whole default campaign)",
    )
    campaign.add_argument(
        "--no-paired",
        action="store_true",
        help="skip the paired reference/Smart equivalence runs",
    )
    campaign.add_argument(
        "--shard",
        type=_shard,
        default=None,
        metavar="i/N",
        help="run only the i-th of N deterministic spec shards (for "
        "multi-machine campaigns; merge the per-shard --jsonl files with "
        "--merge-jsonl to reproduce the unsharded fingerprint)",
    )
    campaign.add_argument(
        "--shard-by-cost",
        type=_shard,
        default=None,
        metavar="i/N",
        help="like --shard, but partition with the cost-balanced LPT "
        "partitioner over the estimates in --costs (cold start falls back "
        "to a static per-workload heuristic); shard files still merge to "
        "the byte-identical unsharded fingerprint",
    )
    campaign.add_argument(
        "--costs",
        default=None,
        metavar="COSTS.JSON",
        help="with --shard-by-cost: the recorded wall-time sideband to "
        "partition by (ship the same file to every shard of a campaign)",
    )
    campaign.add_argument(
        "--record-costs",
        default=None,
        metavar="COSTS.JSON",
        help="after the campaign, fold the observed per-spec wall times "
        "into this COSTS.json sideband (created if missing; wall clock "
        "never enters the deterministic JSONL rows)",
    )
    campaign.add_argument(
        "--spec-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="kill any single worker job (one spec in one mode) running "
        "longer than this and persist a deterministic timeout row; "
        "--resume re-runs timed-out specs",
    )
    campaign.add_argument(
        "--campaign-budget",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="abandon the whole campaign once it has run this long; every "
        "incomplete spec gets a timeout row (heal with --resume)",
    )
    campaign.add_argument(
        "--jsonl",
        default=None,
        metavar="OUT.JSONL",
        help="stream one deterministic JSONL row per completed run/pair "
        "(plus a campaign header row) to this file",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="with --jsonl: re-read the file, skip the specs whose rows "
        "are already present and append only the missing ones (the file "
        "must carry the same campaign header; the final fingerprint is "
        "identical to an uninterrupted run)",
    )
    campaign.add_argument(
        "--merge-jsonl",
        default=None,
        metavar="A.JSONL,B.JSONL",
        help="merge previously written campaign JSONL files (e.g. one per "
        "shard) and print the merged tables/fingerprint instead of running",
    )
    campaign.add_argument(
        "--trace-sink",
        choices=SINK_KINDS,
        default=DEFAULT_TRACE_SINK,
        help="trace sink every worker simulation emits into: 'digest' "
        "(default) streams the trace into its digest with bounded memory, "
        "'list' materializes records (historical behaviour), 'spool' keeps "
        "a sorted on-disk spool (enables --trace-out), 'null' disables "
        "tracing and with it trace validation",
    )
    campaign.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="with --trace-sink spool: export one reordered trace file "
        "per run to DIR (<spec>.<mode>.trace)",
    )
    campaign.add_argument(
        "--burst",
        action="store_true",
        dest="burst",
        default=True,
        help="run every spec with burst (span) FIFO transfers where the "
        "workload supports them; bit-exact with word-by-word accesses, so "
        "the campaign fingerprint is identical — a pure speed knob (now "
        "the default; kept for compatibility)",
    )
    campaign.add_argument(
        "--no-burst",
        action="store_false",
        dest="burst",
        help="run the historical word-by-word FIFO transfers instead of "
        "burst spans (bit-exact either way)",
    )
    campaign.add_argument(
        "--replay-sweep",
        default=None,
        metavar="SPEC",
        help="record the named campaign spec once and price every "
        "--sweep-depths / --sweep-quanta point by replaying its dependency "
        "spool (rows tagged evaluator=replay; --validate points are "
        "re-simulated and compared exactly)",
    )
    campaign.add_argument(
        "--sweep-depths",
        type=_int_list,
        default=None,
        metavar="D1,D2,...",
        help="with --replay-sweep or --auto-replay: the FIFO depths to "
        "evaluate (with --auto-replay, every selected spec is expanded "
        "into one point per depth)",
    )
    campaign.add_argument(
        "--sweep-quanta",
        type=_int_list,
        default=None,
        metavar="Q1,Q2,...",
        help="with --replay-sweep: global quanta (ns) to evaluate "
        "(needs a timing=quantum anchor spec)",
    )
    campaign.add_argument(
        "--validate",
        type=int,
        default=1,
        metavar="N",
        help="with --replay-sweep / --auto-replay: cross-validate N "
        "sampled replayed points against fresh simulations (0 = trust "
        "the anchor self-check)",
    )
    campaign.add_argument(
        "--auto-replay",
        action="store_true",
        help="route specs sharing an anchor (same identity modulo "
        "depth/quantum) through record-and-replay: the group's first "
        "spec is simulated once with a recorder, every other member is "
        "priced by replay (rows tagged evaluator=replay); poisoned "
        "recordings and out-of-envelope points fall back to plain "
        "simulation; paired specs are never routed (pairs diff traces); "
        "combine with --sweep-depths/--sweep-quanta to expand each "
        "selected spec into a sweep grid first",
    )
    campaign.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="write the spans/counters telemetry sideband to "
        "DIR/telemetry.jsonl (parent + per-worker events, merged after "
        "the run; deterministic rows and fingerprints are byte-identical "
        "with telemetry on or off)",
    )
    campaign.add_argument(
        "--progress",
        action="store_true",
        help="live single-line progress ticker on stderr (specs done, "
        "rate, ETA; cost-weighted when --costs is given); display only, "
        "never touches stdout or deterministic outputs",
    )
    campaign.add_argument(
        "--list", action="store_true", help="list the specs and exit"
    )
    add_csv_flag(campaign)

    orchestrate = subparsers.add_parser(
        "orchestrate",
        help="drive a cost-sharded campaign across N hosts and merge the "
        "shard JSONLs (fingerprint identical to an unsharded run)",
    )
    orchestrate.add_argument(
        "--hosts",
        type=_positive_int,
        default=2,
        help="number of local-subprocess hosts (ignored with --hosts-file)",
    )
    orchestrate.add_argument(
        "--hosts-file",
        default=None,
        metavar="HOSTS.JSON",
        help="JSON host declarations (local and/or ssh hosts; see "
        "repro.campaign.orchestrator.hosts)",
    )
    orchestrate.add_argument(
        "--workers-per-host",
        type=_positive_int,
        default=1,
        help="worker processes each shard campaign runs with",
    )
    orchestrate.add_argument(
        "--specs",
        default=None,
        help="comma-separated spec names (default: the whole default "
        "campaign; hosts rebuild specs by name)",
    )
    orchestrate.add_argument(
        "--no-paired",
        action="store_true",
        help="skip the paired reference/Smart equivalence runs",
    )
    orchestrate.add_argument(
        "--out-dir",
        default="orchestrate-out",
        metavar="DIR",
        help="local directory for host workdirs, logs and collected shard "
        "JSONLs",
    )
    orchestrate.add_argument(
        "--costs",
        default=None,
        metavar="COSTS.JSON",
        help="wall-time sideband shipped to every host so they compute "
        "the identical cost partition (missing file = cold-start "
        "heuristic)",
    )
    orchestrate.add_argument(
        "--record-costs",
        default=None,
        metavar="COSTS.JSON",
        help="have every host record its shard's wall times; the per-host "
        "cost files are collected and merged into this local path",
    )
    orchestrate.add_argument(
        "--round-robin",
        action="store_true",
        help="partition round-robin (--shard) instead of by cost — for "
        "comparing shard makespans against --shard-by-cost",
    )
    orchestrate.add_argument(
        "--spec-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="forwarded to every shard campaign (see campaign "
        "--spec-timeout)",
    )
    orchestrate.add_argument(
        "--campaign-budget",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="forwarded to every shard campaign (see campaign "
        "--campaign-budget)",
    )
    orchestrate.add_argument(
        "--merged-jsonl",
        default=None,
        metavar="OUT.JSONL",
        help="also write the merged rows as one unsharded campaign JSONL "
        "(itself re-mergeable; what CI uploads as an artifact)",
    )
    orchestrate.add_argument(
        "--expect-fingerprint",
        default=None,
        metavar="SHA256",
        help="fail unless the merged fingerprint equals this value (the "
        "pinned-fingerprint gate of the orchestrator smoke)",
    )
    orchestrate.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="write the orchestrator's own launch/poll/collect telemetry "
        "and every host's collected campaign telemetry to "
        "DIR/telemetry.jsonl (sideband only; merged rows are unchanged)",
    )
    orchestrate.add_argument(
        "--progress",
        action="store_true",
        help="live single-line progress ticker on stderr (local shards "
        "report per-row progress; remote shards on host completion)",
    )
    add_csv_flag(orchestrate)

    report = subparsers.add_parser(
        "telemetry-report",
        help="aggregate one or more telemetry sidebands (files or "
        "directories of *.jsonl) into top-span / worker-utilization / "
        "per-host tables",
    )
    report.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="telemetry JSONL files or directories holding them (e.g. "
        "the --telemetry DIR of a campaign or orchestrate run)",
    )
    report.add_argument(
        "--top",
        type=_positive_int,
        default=15,
        metavar="N",
        help="rows in the top-spans table (default 15)",
    )

    return parser


def _streaming_config(args: argparse.Namespace) -> StreamingConfig:
    return StreamingConfig(n_blocks=args.blocks, words_per_block=args.words)


def run_fig2(args: argparse.Namespace) -> str:
    result = experiments.fig2_fig3_example(fifo_depth=args.depth)
    if args.csv:
        write_csv(result.rows(), args.csv)
    lines = [
        result.table(),
        "",
        f"Smart FIFO matches the reference: {result.smart_matches_reference}",
        f"Naive decoupling differs (Fig. 3 error): {result.naive_differs_from_reference}",
    ]
    return "\n".join(lines)


def run_fig5(args: argparse.Namespace):
    if args.replay:
        try:
            result = experiments.fig5_replay_sweep(
                depths=args.depths,
                base_config=_streaming_config(args),
                anchor_depth=args.anchor_depth,
                validate=args.validate,
            )
        except ReplayError as exc:
            raise SystemExit(f"fig5 --replay failed: {exc}")
        if args.csv:
            write_csv(result.rows(), args.csv)
        output = "\n\n".join([result.table(), result.summary()])
        return output, 0 if result.all_validated else 1
    rows = experiments.fig5_depth_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return "\n\n".join(
        [experiments.fig5_table(rows), experiments.fig5_speedup_table(rows)]
    )


def run_case_study(args: argparse.Namespace) -> str:
    config = SocConfig.benchmark(n_chains=args.chains, items_per_chain=args.items)
    config.workers_per_chain = args.workers
    config.validate()
    result = experiments.case_study(config)
    if args.csv:
        write_csv(result.rows(), args.csv)
    sections = [result.table()]
    # The per-process activation breakdown behind the context-switch
    # totals: which processes the scheduler actually woke, per policy.
    top_rows = []
    for label, run in (("sync-per-access", result.sync),
                       ("Smart FIFO", result.smart)):
        for name, activations in run.top_processes:
            top_rows.append(
                {"policy": label, "process": name,
                 "activations": activations}
            )
    if top_rows:
        sections.append(
            dict_rows_table(
                top_rows,
                ["policy", "process", "activations"],
                title="Most-activated processes",
            )
        )
    return "\n\n".join(sections)


def run_quantum(args: argparse.Namespace) -> str:
    rows = experiments.quantum_ablation(
        quanta_ns=args.quanta, config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return experiments.quantum_table(rows)


def run_context_switches(args: argparse.Namespace) -> str:
    rows = experiments.context_switch_sweep(
        depths=args.depths, base_config=_streaming_config(args)
    )
    if args.csv:
        write_csv(rows, args.csv)
    return experiments.context_switch_table(rows)


def _campaign_output(result) -> tuple:
    sections = [result.table()]
    if result.pairs:
        sections.append(result.pairs_table())
    sections.append(result.summary())
    output = "\n\n".join(sections)
    ok = result.all_pairs_equivalent and result.complete
    return (output, 0) if ok else (output, 1)


def _run_replay_sweep(args: argparse.Namespace) -> tuple:
    """The ``campaign --replay-sweep`` body: record once, replay the sweep."""
    specs = default_campaign(burst=args.burst)
    by_name = {spec.name: spec for spec in specs}
    if args.replay_sweep not in by_name:
        raise SystemExit(
            f"unknown spec name: {args.replay_sweep}; "
            f"known: {', '.join(sorted(by_name))}"
        )
    anchor = by_name[args.replay_sweep]
    depths = args.sweep_depths or []
    quanta = args.sweep_quanta or []
    if not depths and not quanta:
        raise SystemExit(
            "--replay-sweep needs --sweep-depths and/or --sweep-quanta"
        )
    telemetry = NULL_TELEMETRY
    if args.telemetry:
        os.makedirs(args.telemetry, exist_ok=True)
        telemetry = Telemetry(
            "replay-sweep",
            path=os.path.join(args.telemetry, "telemetry.jsonl"),
        )
    try:
        sweep = run_replay_sweep(
            anchor,
            depths=depths,
            quanta_ns=quanta,
            validate=args.validate,
            trace_sink=args.trace_sink,
            telemetry=telemetry,
        )
    except ReplayError as exc:
        telemetry.close()
        poisoned = re.match(
            r"recording is not replayable: (?P<construct>.+?)"
            r"(?: \[in process (?P<process>.+?)\])?$",
            str(exc),
        )
        if poisoned is not None:
            construct = poisoned.group("construct")
            process = poisoned.group("process") or "<unknown>"
            raise SystemExit(
                f"spec {anchor.name!r} cannot be replay-swept: its "
                f"recording was poisoned by `{construct}` in process "
                f"{process!r}.  That construct's behaviour depends on "
                f"state the recorder cannot pin, so replayed sweeps would "
                f"be unsound.  Price this spec by plain simulation "
                f"(drop --replay-sweep), or use --auto-replay, which "
                f"falls back to simulation for exactly these specs."
            )
        raise SystemExit(f"replay sweep failed: {exc}")
    telemetry.close()
    if args.jsonl:
        row_specs = [anchor] + sweep_point_specs(anchor, depths, quanta)
        with open(args.jsonl, "w") as stream:
            sink = JsonlSink(stream, row_specs, workers=1, paired=False)
            for record in sweep.rows:
                sink.run_completed(record)
    rows = sweep.summary_rows()
    if args.csv:
        write_csv(rows, args.csv)
    table = dict_rows_table(
        rows,
        ["name", "evaluator", "depth", "quantum_ns", "sim_end_fs",
         "context_switches", "delta_cycles"],
        title=f"Replay sweep — {anchor.name}",
    )
    replayed = sum(1 for r in sweep.rows if r.evaluator == "replay")
    validated = sum(1 for v in sweep.validations if v.ok)
    per_replay = sweep.replay_seconds / replayed if replayed else float("nan")
    speedup = sweep.record_seconds / per_replay if replayed else float("nan")
    summary = (
        f"1 simulation + {replayed} replays; {sweep.points_per_s:.0f} "
        f"points/s ({speedup:.0f}x per point vs simulate); validated "
        f"{validated}/{len(sweep.validations)} sampled points exactly"
    )
    return "\n\n".join([table, summary]), 0 if sweep.all_validated else 1


def run_campaign(args: argparse.Namespace) -> str:
    if (args.sweep_depths or args.sweep_quanta) and not (
        args.replay_sweep or args.auto_replay
    ):
        raise SystemExit(
            "--sweep-depths/--sweep-quanta are only read by "
            "--replay-sweep and --auto-replay"
        )
    if args.replay_sweep and args.auto_replay:
        raise SystemExit(
            "--replay-sweep (one explicit anchor) and --auto-replay "
            "(grouping over the campaign) are two drivers of the same "
            "engine; pick one"
        )
    if args.replay_sweep:
        conflicting = [
            flag for flag, active in (
                ("--resume", args.resume),
                ("--merge-jsonl", args.merge_jsonl is not None),
                ("--shard", args.shard is not None),
                ("--shard-by-cost", args.shard_by_cost is not None),
                ("--record-costs", args.record_costs is not None),
                ("--spec-timeout", args.spec_timeout is not None),
                ("--campaign-budget", args.campaign_budget is not None),
                ("--specs", args.specs is not None),
                ("--workers", args.workers != 1),
                ("--no-paired", args.no_paired),
                ("--list", args.list),
                ("--trace-out", args.trace_out is not None),
                ("--progress", args.progress),
            ) if active
        ]
        if conflicting:
            raise SystemExit(
                f"--replay-sweep records one spec and replays the sweep "
                f"in-process; it cannot be combined with "
                f"{', '.join(conflicting)}"
            )
        return _run_replay_sweep(args)
    if args.resume and not args.jsonl:
        raise SystemExit("--resume requires --jsonl (the file to resume from)")
    if args.trace_out and args.trace_sink != "spool":
        raise SystemExit("--trace-out requires --trace-sink spool")
    if args.shard and args.shard_by_cost:
        raise SystemExit(
            "--shard and --shard-by-cost are two partitioners of the same "
            "campaign; pick one"
        )
    if args.costs and not (args.shard_by_cost or args.progress):
        raise SystemExit(
            "--costs is only read by --shard-by-cost (partitioning) and "
            "--progress (cost-weighted ETA)"
        )
    if args.merge_jsonl:
        conflicting = [
            flag for flag, active in (
                ("--jsonl", args.jsonl is not None),
                ("--resume", args.resume),
                ("--shard", args.shard is not None),
                ("--shard-by-cost", args.shard_by_cost is not None),
                ("--record-costs", args.record_costs is not None),
                ("--spec-timeout", args.spec_timeout is not None),
                ("--campaign-budget", args.campaign_budget is not None),
                ("--specs", args.specs is not None),
                ("--workers", args.workers != 1),
                ("--no-paired", args.no_paired),
                ("--list", args.list),
                ("--trace-out", args.trace_out is not None),
                ("--telemetry", args.telemetry is not None),
                ("--progress", args.progress),
            ) if active
        ]
        if conflicting:
            raise SystemExit(
                f"--merge-jsonl only merges previously written files and "
                f"cannot be combined with {', '.join(conflicting)}"
            )
        paths = [p.strip() for p in args.merge_jsonl.split(",") if p.strip()]
        try:
            result = merge_jsonl(paths)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot merge campaign JSONL: {exc}")
        if args.csv:
            write_csv(result.run_rows(), args.csv)
        return _campaign_output(result)
    specs = default_campaign(burst=args.burst)
    if args.specs:
        wanted = [name.strip() for name in args.specs.split(",") if name.strip()]
        by_name = {spec.name: spec for spec in specs}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            raise SystemExit(
                f"unknown spec name(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(by_name))}"
            )
        specs = [by_name[name] for name in wanted]
    if args.auto_replay and (args.sweep_depths or args.sweep_quanta):
        # Expand each selected spec into its sweep grid; the runner's
        # auto-replay pass then records each spec once and replays its
        # grid points.
        expanded = []
        for spec in specs:
            expanded.append(spec)
            try:
                expanded.extend(
                    sweep_point_specs(
                        spec,
                        depths=args.sweep_depths or (),
                        quanta_ns=args.sweep_quanta or (),
                    )
                )
            except ReplayError as exc:
                raise SystemExit(f"cannot expand {spec.name!r}: {exc}")
        specs = expanded
    if args.list:
        rows = describe_specs(specs)
        if args.csv:
            write_csv(rows, args.csv)
        return dict_rows_table(
            rows,
            ["name", "workload", "mode", "depth", "quantum_ns", "seed",
             "timing", "pairable", "params"],
            title="Campaign specs",
        )
    budget = None
    if args.spec_timeout is not None or args.campaign_budget is not None:
        budget = RunBudget(
            spec_timeout_s=args.spec_timeout,
            campaign_budget_s=args.campaign_budget,
        )
    cost_model = None
    if args.shard_by_cost is not None or (args.progress and args.costs):
        try:
            cost_model = CostModel.load(args.costs)
        except ValueError as exc:
            raise SystemExit(f"cannot read --costs: {exc}")
    runner = CampaignRunner(
        workers=args.workers, paired=not args.no_paired,
        shard=args.shard if args.shard else args.shard_by_cost,
        shard_by_cost=args.shard_by_cost is not None,
        cost_model=cost_model, budget=budget,
        trace_sink=args.trace_sink, trace_out=args.trace_out,
        auto_replay=args.auto_replay,
        auto_replay_validate=args.validate,
        telemetry_dir=args.telemetry,
        progress=args.progress,
    )
    try:
        result = runner.run(specs, jsonl=args.jsonl, resume=args.resume)
    except CampaignResumeError as exc:
        # Only resume problems get the friendly one-liner; a ValueError
        # from inside a simulation is a real bug and keeps its traceback.
        raise SystemExit(f"cannot resume campaign: {exc}")
    if args.record_costs:
        try:
            recorded = CostModel.load(args.record_costs)
        except ValueError as exc:
            raise SystemExit(f"cannot read --record-costs: {exc}")
        recorded.observe_result(result)
        if result.wall_seconds > 0 and specs:
            # Advisory whole-host throughput for capacity planning; the
            # LPT partitioner never reads it (see orchestrator/costs.py).
            recorded.observe_host(
                socket.gethostname(),
                len(specs) / result.wall_seconds,
            )
        recorded.save(args.record_costs)
    if args.csv:
        write_csv(result.run_rows(), args.csv)
    return _campaign_output(result)


def run_orchestrate(args: argparse.Namespace) -> tuple:
    if args.round_robin and args.costs:
        raise SystemExit(
            "--costs is only read by the cost partitioner and has no "
            "effect with --round-robin"
        )
    if args.hosts_file:
        try:
            hosts = parse_hosts_file(args.hosts_file)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read --hosts-file: {exc}")
    else:
        hosts = local_hosts(args.hosts)
    spec_names = None
    if args.specs:
        spec_names = [
            name.strip() for name in args.specs.split(",") if name.strip()
        ]
    orchestrator = Orchestrator(
        hosts,
        args.out_dir,
        workers_per_host=args.workers_per_host,
        paired=not args.no_paired,
        shard_by_cost=not args.round_robin,
        costs_path=args.costs,
        spec_timeout_s=args.spec_timeout,
        campaign_budget_s=args.campaign_budget,
        record_costs_path=args.record_costs,
        telemetry_dir=args.telemetry,
        progress=args.progress,
    )
    try:
        outcome = orchestrator.run(spec_names, merged_jsonl=args.merged_jsonl)
    except OrchestratorError as exc:
        raise SystemExit(f"orchestrated campaign failed: {exc}")
    result = outcome.result
    if args.csv:
        write_csv(result.run_rows(), args.csv)
    sections = [outcome.hosts_table(), result.table()]
    if result.pairs:
        sections.append(result.pairs_table())
    sections.append(outcome.summary())
    code = 0 if result.all_pairs_equivalent and result.complete else 1
    if args.expect_fingerprint and outcome.fingerprint() != args.expect_fingerprint:
        sections.append(
            f"FINGERPRINT MISMATCH: merged {outcome.fingerprint()} != "
            f"expected {args.expect_fingerprint}"
        )
        code = 1
    return "\n\n".join(sections), code


def run_telemetry_report(args: argparse.Namespace) -> str:
    try:
        return render_report(args.paths, top=args.top)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read telemetry: {exc}")


_COMMANDS = {
    "fig2": run_fig2,
    "fig5": run_fig5,
    "case-study": run_case_study,
    "quantum": run_quantum,
    "context-switches": run_context_switches,
    "campaign": run_campaign,
    "orchestrate": run_orchestrate,
    "telemetry-report": run_telemetry_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point.  Command handlers return either the output string
    (exit code 0) or an ``(output, exit_code)`` tuple."""
    parser = build_parser()
    args = parser.parse_args(argv)
    result = _COMMANDS[args.command](args)
    output, code = result if isinstance(result, tuple) else (result, 0)
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised through main()
    raise SystemExit(main())
