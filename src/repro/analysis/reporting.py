"""Result formatting.

Small helpers to turn experiment results into aligned ASCII tables, CSV
files and simple text plots, so the benchmark harness can print the same
rows/series the paper reports (and EXPERIMENTS.md can be regenerated from
the command line).
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` as a fixed-width ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(format_row(row))
    return "\n".join(lines)


def dict_rows_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows, inferring the columns when omitted."""
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    return ascii_table(columns, [[row.get(col, "") for col in columns] for row in rows], title)


def write_csv(rows: Sequence[Mapping[str, object]], path: str) -> None:
    """Dump dict rows to a CSV file (columns from the first row)."""
    if not rows:
        with open(path, "w", newline="") as handle:
            handle.write("")
        return
    columns = list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def csv_text(rows: Sequence[Mapping[str, object]]) -> str:
    """Same as :func:`write_csv` but returning the CSV as a string."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def text_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[object],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """A crude horizontal-bar plot: one block of bars per x value.

    Useful to eyeball the Fig. 5 shape directly in a terminal without any
    plotting dependency.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    maximum = max((max(values) for values in series.values() if len(values)), default=0.0)
    if maximum <= 0:
        maximum = 1.0
    label_width = max(len(name) for name in series) if series else 0
    for index, x_value in enumerate(x_values):
        lines.append(f"x={x_value}")
        for name, values in series.items():
            if index >= len(values):
                continue
            value = values[index]
            bar = "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""
            lines.append(f"  {name.ljust(label_width)} {value:>10.4f} {bar}")
    return "\n".join(lines)


def format_gain(reference: float, improved: float) -> str:
    """Format a wall-clock improvement the way the paper does (percent gain)."""
    if reference <= 0:
        return "n/a"
    gain = 100.0 * (reference - improved) / reference
    return f"{reference:.2f}s -> {improved:.2f}s (gain {gain:.1f}%)"
