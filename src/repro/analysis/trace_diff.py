"""Trace equivalence checking (the validation methodology of Section IV-A).

Each validation scenario is executed twice: once with regular FIFOs and no
temporal decoupling, once with Smart FIFOs and temporal decoupling (random
scenarios reuse the same seed).  Both executions emit locally-timestamped
trace lines.  Because temporal decoupling changes the schedule, the lines
are not emitted in the same order — dates may even decrease between
consecutive lines of the decoupled run — so the comparison is done *after
reordering*: a test passes iff the two sorted traces are identical, meaning
neither the behaviour nor the timing changed at all.

Two implementations of the reorder-and-compare check coexist:

* the historical in-memory one (:func:`compare_traces` and friends), which
  sorts full line lists — fine for unit tests and small runs;
* :func:`compare_spools`, which merge-walks two
  :class:`~repro.kernel.tracing.SpoolSink` spools in sorted order and
  never materializes either trace, so campaign-sized mismatch diffs stay
  memory-bounded.  Both produce identical :class:`TraceComparison`
  contents for the same records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..kernel.tracing import SpoolSink, TraceCollector, TraceRecord, format_entry


@dataclass
class TraceComparison:
    """Outcome of an equivalence check between two trace sets."""

    equivalent: bool
    #: Lines present only in the reference / only in the candidate run.
    missing_in_candidate: List[str]
    unexpected_in_candidate: List[str]
    reference_count: int
    candidate_count: int

    def report(self) -> str:
        """Human-readable summary (used in assertion messages)."""
        if self.equivalent:
            return (
                f"traces equivalent ({self.reference_count} lines, identical "
                f"after reordering)"
            )
        lines = [
            f"traces differ: {self.reference_count} reference lines, "
            f"{self.candidate_count} candidate lines"
        ]
        for line in self.missing_in_candidate[:10]:
            lines.append(f"  missing in candidate: {line}")
        for line in self.unexpected_in_candidate[:10]:
            lines.append(f"  unexpected in candidate: {line}")
        return "\n".join(lines)


def sorted_lines(trace: Iterable[TraceRecord]) -> List[str]:
    """The reordered, formatted lines of a trace (the comparison key)."""
    return [record.format() for record in sorted(trace, key=TraceRecord.sort_key)]


def _multiset_diff(left: Sequence[str], right: Sequence[str]) -> List[str]:
    """Elements of ``left`` not matched by an element of ``right`` (multiset)."""
    from collections import Counter

    remaining = Counter(right)
    missing = []
    for item in left:
        if remaining[item] > 0:
            remaining[item] -= 1
        else:
            missing.append(item)
    return missing


def compare_sorted_lines(
    ref_lines: Sequence[str], cand_lines: Sequence[str]
) -> TraceComparison:
    """Compare two already-reordered line lists (multiset equality).

    This is the building block of the split-pair campaign aggregation: the
    worker that ran each half of a reference/Smart pair ships back its
    reordered trace lines, and the parent process diffs them here.
    """
    missing = _multiset_diff(ref_lines, cand_lines)
    unexpected = _multiset_diff(cand_lines, ref_lines)
    return TraceComparison(
        equivalent=not missing and not unexpected,
        missing_in_candidate=missing,
        unexpected_in_candidate=unexpected,
        reference_count=len(ref_lines),
        candidate_count=len(cand_lines),
    )


def compare_traces(
    reference: Iterable[TraceRecord], candidate: Iterable[TraceRecord]
) -> TraceComparison:
    """Compare two record streams after reordering (multiset equality)."""
    return compare_sorted_lines(sorted_lines(reference), sorted_lines(candidate))


def compare_spools(reference: SpoolSink, candidate: SpoolSink) -> TraceComparison:
    """Streaming reorder-and-compare over two trace spools.

    Both spools stream their encoded entries in sort-key order, so one
    merge walk finds the multiset difference without materializing either
    trace: equal heads cancel, the smaller head is exclusive to its side.
    The resulting :class:`TraceComparison` is identical (contents and line
    order) to running :func:`compare_traces` on the same records — only
    the diff lines themselves are ever held in memory.
    """
    missing: List[str] = []
    unexpected: List[str] = []
    ref_iter = reference.iter_encoded()
    cand_iter = candidate.iter_encoded()
    ref_entry = next(ref_iter, None)
    cand_entry = next(cand_iter, None)
    while ref_entry is not None and cand_entry is not None:
        if ref_entry == cand_entry:
            ref_entry = next(ref_iter, None)
            cand_entry = next(cand_iter, None)
        elif ref_entry < cand_entry:
            missing.append(format_entry(ref_entry))
            ref_entry = next(ref_iter, None)
        else:
            unexpected.append(format_entry(cand_entry))
            cand_entry = next(cand_iter, None)
    while ref_entry is not None:
        missing.append(format_entry(ref_entry))
        ref_entry = next(ref_iter, None)
    while cand_entry is not None:
        unexpected.append(format_entry(cand_entry))
        cand_entry = next(cand_iter, None)
    return TraceComparison(
        equivalent=not missing and not unexpected,
        missing_in_candidate=missing,
        unexpected_in_candidate=unexpected,
        reference_count=len(reference),
        candidate_count=len(candidate),
    )


def compare_collectors(
    reference: TraceCollector, candidate: TraceCollector
) -> TraceComparison:
    """Convenience wrapper for whole-simulation trace collectors."""
    return compare_traces(reference.records, candidate.records)


def assert_equivalent(reference: TraceCollector, candidate: TraceCollector) -> None:
    """Raise ``AssertionError`` with a readable report when traces differ."""
    comparison = compare_collectors(reference, candidate)
    if not comparison.equivalent:
        raise AssertionError(comparison.report())


def emission_order_changed(
    reference: TraceCollector, candidate: TraceCollector
) -> bool:
    """True when the raw (unsorted) emission orders differ.

    The paper points out that with temporal decoupling "dates may decrease
    when we switch from one process to the next": observing a changed
    emission order together with equivalent sorted traces is exactly the
    expected signature of a correct Smart FIFO run.
    """
    return reference.formatted_lines() != candidate.formatted_lines()


Tuple  # typing re-export for annotations in downstream modules
