"""Record-and-replay evaluation.

One reference simulation records a :class:`~repro.kernel.tracing.DependencySpool`
(per-process FIFO accesses, blocking-wait edges and timing annotations);
:class:`ReplayEngine` then re-evaluates the model at *any* FIFO depth or
global quantum by re-executing the recorded ops against a miniature
scheduler — no processes, no coroutines, no trace machinery.  See
``docs`` in the README for the anchor/validate workflow.
"""

from .engine import (  # noqa: F401
    ReplayEngine,
    ReplayError,
    ReplayInvalid,
    ReplayMismatch,
    ReplayResult,
)

__all__ = [
    "ReplayEngine",
    "ReplayError",
    "ReplayInvalid",
    "ReplayMismatch",
    "ReplayResult",
]
