"""Replay recorded dependency spools at arbitrary FIFO depths / quanta.

One reference simulation records, per thread and in program order, every
FIFO access and every timing annotation (a :class:`DependencySpool`, see
``repro.kernel.tracing``).  :class:`ReplayEngine` compiles that record into
flat per-thread programs and re-executes them against a miniature explicit
scheduler: completion dates follow the paper's recurrence
``d_i = max(d_{i-1} + gap_i, cell_date_i)``, blocking waits come from
re-deriving when a Smart FIFO's cell ring is internally full/empty at the
*replayed* depth, and the global date advances through the same
delta-cycle / delta-notification / timed-phase machinery as the real
kernel — but with no generators, no coroutines and no trace pipeline.

The engine mirrors the real kernel exactly (same counters, same wake
order, same local-time clamping), which is what makes the anchor
self-check meaningful: replaying at the recorded configuration must
reproduce the recorded per-access dates, kernel counters and final date
bit-exactly, otherwise the run is declared non-replayable.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.tracing import (
    DEP_INC,
    DEP_QUANTUM,
    DEP_REG_READ,
    DEP_REG_WRITE,
    DEP_SMART_READ,
    DEP_SMART_WRITE,
    DEP_SPAN_READ,
    DEP_SPAN_WRITE,
    DEP_SYNC,
    DEP_TIMED,
    DependencySpool,
)


class ReplayError(RuntimeError):
    """The spool cannot be replayed (poisoned or corrupt)."""


class ReplayMismatch(ReplayError):
    """The anchor self-check found a divergence from the recorded run."""

    def __init__(self, diffs: Sequence[str]):
        self.diffs = list(diffs)
        preview = "; ".join(self.diffs[:8])
        more = len(self.diffs) - 8
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"replay diverges from recorded run: {preview}")


# Compiled opcodes (uniform ``(op, a, b, pre)`` tuples, ``pre`` being the
# fused local-time advance of the preceding INC records; spans are
# expanded to word ops at compile time, exactly the word loop they are
# bit-exact with).
OP_SMART_WRITE = 0  # a = fifo index, b = recorded insertion date (fs)
OP_SMART_READ = 1   # a = fifo index, b = recorded read date (fs)
OP_SYNC = 2         # a = recorded local date at the sync (fs)
OP_TIMED = 3        # a = wait duration (fs)
OP_QUANTUM = 4      # a = quantum-keeper annotation (fs)
OP_REG_WRITE = 5    # a = fifo index, b = recorded kernel date (fs)
OP_REG_READ = 6     # a = fifo index, b = recorded kernel date (fs)
OP_INC = 7          # a = local-time annotation (fs)

_OP_NAMES = (
    "smart_write", "smart_read", "sync", "timed", "quantum",
    "reg_write", "reg_read", "inc",
)

_MAX_MISMATCHES = 25


class _Proc:
    """Replay image of one thread process."""

    __slots__ = (
        "pid", "name", "program", "length", "pc", "phase", "stored",
        "wait_id", "runnable", "terminated",
    )

    def __init__(self, pid: int, name: str, program: List[tuple]):
        self.pid = pid
        self.name = name
        self.program = program
        self.length = len(program)
        self.pc = 0
        #: Sub-state of a multi-suspension op (the blocking-loop machine).
        self.phase = 0
        #: Raw local date, mirroring ``Process.local_fs`` (-1 = never set).
        self.stored = -1
        self.wait_id = 0
        self.runnable = False
        self.terminated = False


class _Event:
    """Replay image of a kernel event (delta notifications only)."""

    __slots__ = ("pending", "waiters")

    def __init__(self):
        self.pending = False
        self.waiters: List[Tuple[_Proc, int]] = []


class _SmartState:
    """Replay image of a Smart FIFO's cell ring at the replayed depth."""

    __slots__ = (
        "name", "depth", "sync_on_access", "wdates", "rdates", "nw", "nr",
        "blocked_readers", "blocked_writers", "blocking_waits",
        "cell_filled", "cell_freed",
    )

    kind = "smart"

    def __init__(self, name: str, depth: int, sync_on_access: bool):
        self.name = name
        self.depth = depth
        self.sync_on_access = sync_on_access
        #: Insertion date of write i / freeing date of read i (fs).
        self.wdates: List[int] = []
        self.rdates: List[int] = []
        #: len(wdates) / len(rdates) as plain ints — the occupancy check
        #: is the hottest expression of the interpreter.
        self.nw = 0
        self.nr = 0
        self.blocked_readers = 0
        self.blocked_writers = 0
        self.blocking_waits = 0
        self.cell_filled = _Event()
        self.cell_freed = _Event()

    @property
    def total_written(self) -> int:
        return len(self.wdates)

    @property
    def total_read(self) -> int:
        return len(self.rdates)


class _RegState:
    """Replay image of a regular FIFO (occupancy only, no dates)."""

    __slots__ = (
        "name", "depth", "occupancy", "total_written", "total_read",
        "data_written", "data_read",
    )

    kind = "regular"
    sync_on_access = False
    blocking_waits = 0

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth
        self.occupancy = 0
        self.total_written = 0
        self.total_read = 0
        self.data_written = _Event()
        self.data_read = _Event()


@dataclass
class ReplayResult:
    """Everything one replayed evaluation point produces."""

    sim_end_fs: int
    quantum_fs: int
    depths: List[int]
    thread_activations: int
    delta_cycles: int
    timed_phases: int
    fifo_stats: List[dict]
    process_local_fs: Dict[int, int]
    all_terminated: bool
    #: ``(process, pc, op, expected, got)`` date-check divergences
    #: (only populated when the replay ran with ``check_dates=True``).
    mismatches: List[tuple] = field(default_factory=list)
    #: Replay runs no method processes by construction.
    method_invocations: int = 0
    #: Per-FIFO ``(insertion_dates, read_dates)`` in fs for Smart FIFOs
    #: (None for regular FIFOs, which carry no dates) — the paper's
    #: completion dates, used by sweep cross-validation.
    fifo_dates: List[Optional[Tuple[List[int], List[int]]]] = field(
        default_factory=list
    )

    @property
    def context_switches(self) -> int:
        return self.thread_activations

    @property
    def blocking_waits(self) -> int:
        return sum(f["blocking_waits"] for f in self.fifo_stats)


class ReplayEngine:
    """Compile one :class:`DependencySpool` and replay it at will.

    The engine is immutable after construction; every :meth:`replay` call
    creates fresh emulator state, so one recorded anchor can be replayed
    at hundreds of depth/quantum points.
    """

    def __init__(self, spool: DependencySpool):
        if spool.poison is not None:
            raise ReplayError(f"recording is not replayable: {spool.poison}")
        self.spool = spool
        self.fifos: List[dict] = list(spool.fifos)
        self.programs: List[Tuple[str, int, List[tuple]]] = [
            (name, pid, _compile_ops(spool.ops.get(pid, ())))
            for name, pid in spool.threads
        ]
        self.op_count = sum(len(prog) for _, _, prog in self.programs)

    # ------------------------------------------------------------------
    def retarget_depths(self, anchor_depth: int, depth: int) -> List[int]:
        """Per-FIFO depths for replaying a sweep point at ``depth``.

        Only FIFOs whose recorded depth equals the sweep's anchor depth are
        retargeted; auxiliary FIFOs with their own fixed depth (for example
        the mixed workload's back-pressure channel) keep it.
        """
        return [
            depth if meta["depth"] == anchor_depth else meta["depth"]
            for meta in self.fifos
        ]

    def replay(
        self,
        depths: Optional[Sequence[int]] = None,
        quantum_fs: Optional[int] = None,
        check_dates: bool = False,
    ) -> ReplayResult:
        """Re-execute the recorded programs at the given configuration.

        ``depths`` is one depth per recorded FIFO (registration order;
        None = the recorded depths).  ``quantum_fs`` overrides the global
        quantum (None = recorded).  With ``check_dates`` every completed
        access is compared against its recorded date (anchor self-check).
        """
        if depths is None:
            depths = [meta["depth"] for meta in self.fifos]
        elif len(depths) != len(self.fifos):
            raise ReplayError(
                f"expected {len(self.fifos)} depths, got {len(depths)}"
            )
        if any(d <= 0 for d in depths):
            raise ReplayError(f"replay depths must be positive: {depths}")
        if quantum_fs is None:
            quantum_fs = self.spool.quantum_fs
        return _Emulator(self, list(depths), quantum_fs, check_dates).run()

    # ------------------------------------------------------------------
    def self_check(self) -> ReplayResult:
        """Replay at the recorded configuration and compare everything.

        Raises :class:`ReplayMismatch` on any divergence; this is the gate
        every recording passes before being trusted for a sweep.
        """
        result = self.replay(check_dates=True)
        spool = self.spool
        diffs: List[str] = []
        for proc_name, pc, op, expected, got in result.mismatches:
            diffs.append(
                f"{proc_name} op#{pc} {_OP_NAMES[op]}: "
                f"recorded {expected}, replayed {got}"
            )
        if not result.all_terminated:
            diffs.append("replay deadlocked (recorded run completed)")
        if result.sim_end_fs != spool.sim_end_fs:
            diffs.append(
                f"sim_end_fs: recorded {spool.sim_end_fs}, "
                f"replayed {result.sim_end_fs}"
            )
        for key, got in (
            ("thread_activations", result.thread_activations),
            ("delta_cycles", result.delta_cycles),
            ("timed_phases", result.timed_phases),
            ("method_invocations", result.method_invocations),
        ):
            expected = spool.stats.get(key, 0)
            if expected != got:
                diffs.append(f"{key}: recorded {expected}, replayed {got}")
        for meta, got in zip(spool.fifos, result.fifo_stats):
            for key in ("total_written", "total_read", "blocking_waits"):
                if meta[key] != got[key]:
                    diffs.append(
                        f"{meta['name']}.{key}: recorded {meta[key]}, "
                        f"replayed {got[key]}"
                    )
        for pid, expected in spool.process_local_fs.items():
            got = result.process_local_fs.get(pid)
            if expected != got:
                diffs.append(
                    f"pid {pid} local_fs: recorded {expected}, replayed {got}"
                )
        if diffs:
            raise ReplayMismatch(diffs)
        return result


def _compile_ops(ops: Sequence[tuple]) -> List[tuple]:
    """Flatten one thread's recorded ops into ``(op, a, b, pre)`` tuples.

    ``pre`` is the accumulated local-time advance (the INC records) fused
    into the op that follows it: an INC never suspends, so it always
    executes in the same activation — and at the same kernel date — as
    phase 0 of the next op, and word loops (one INC per word) would
    otherwise double the interpreter's dispatch count.  Consecutive INCs
    merge additively (``max(max(s, now) + a, now) + b == max(s, now) +
    a + b`` for non-negative advances); only a trailing INC with no op
    after it survives as a standalone ``OP_INC``.

    Spans expand to the word loop they are bit-exact with: word op, then
    the per-word local-time advance (including the trailing one — the word
    loop advances after the last word too).
    """
    program: List[tuple] = []
    append = program.append
    pending = 0
    for op in ops:
        code = op[0]
        if code == DEP_SMART_WRITE or code == DEP_SMART_READ:
            append((code, op[1], op[2], pending))
            pending = 0
        elif code == DEP_SYNC:
            append((OP_SYNC, op[1], 0, pending))
            pending = 0
        elif code == DEP_TIMED:
            append((OP_TIMED, op[1], 0, pending))
            pending = 0
        elif code == DEP_QUANTUM:
            append((OP_QUANTUM, op[1], 0, pending))
            pending = 0
        elif code == DEP_REG_WRITE or code == DEP_REG_READ:
            append((code, op[1], op[2], pending))
            pending = 0
        elif code == DEP_INC:
            pending += op[1]
        elif code == DEP_SPAN_WRITE or code == DEP_SPAN_READ:
            word_op = (
                OP_SMART_WRITE if code == DEP_SPAN_WRITE else OP_SMART_READ
            )
            _, fifo_index, count, gap_const, gaps, dates = op
            if len(dates) != count or (gaps is not None and len(gaps) != count):
                raise ReplayError(
                    f"corrupt span record: {count} words, "
                    f"{len(dates)} dates"
                )
            for index in range(count):
                append((word_op, fifo_index, dates[index], pending))
                pending = gap_const if gaps is None else gaps[index]
        else:
            raise ReplayError(f"unknown dependency op code {code}")
    if pending:
        append((OP_INC, pending, 0, 0))
    return program


class _Emulator:
    """One replay run: miniature scheduler + flat-program interpreter.

    Mirrors ``kernel.scheduler.Scheduler`` exactly — delta cycles drain a
    FIFO queue of runnable processes, delta notifications collapse via the
    per-event pending flag, stale wakes are filtered by wait id, timed
    phases pop every record of the next date — and the Smart FIFO
    blocking loops as a per-op phase machine.
    """

    def __init__(self, engine: ReplayEngine, depths: List[int],
                 quantum_fs: int, check_dates: bool):
        self.engine = engine
        self.quantum_fs = quantum_fs
        self.check = check_dates
        self.mismatches: List[tuple] = []
        self.now = 0
        self.delta_cycles = 0
        self.timed_phases = 0
        self.activations = 0
        self.fifos: List[object] = [
            _SmartState(meta["name"], depth, meta["sync_on_access"])
            if meta["kind"] == "smart"
            else _RegState(meta["name"], depth)
            for meta, depth in zip(engine.fifos, depths)
        ]
        self.depths = depths
        self.procs = [
            _Proc(pid, name, program)
            for name, pid, program in engine.programs
        ]
        self.runnable: deque = deque()
        self.delta_events: List[_Event] = []
        self.delta_wakes: List[Tuple[_Proc, int]] = []
        self.heap: List[tuple] = []
        self.seq = 0

    # -- scheduling primitives -----------------------------------------
    # The suspend / notify / wake primitives are inlined at their call
    # sites inside ``run``: a replay of a blocking-heavy point performs
    # hundreds of thousands of them, and the Python call overhead used
    # to dominate the replay wall.  ``delta_events`` and ``delta_wakes``
    # keep a stable list identity for the same reason (the delta phase
    # iterates in place and clears instead of rebinding), so ``run``
    # can hold them in locals across suspensions.

    def _mismatch(self, proc: _Proc, pc: int, op: int,
                  expected: int, got: int) -> None:
        if len(self.mismatches) < _MAX_MISMATCHES:
            self.mismatches.append((proc.name, pc, op, expected, got))

    # -- main loop + interpreter ---------------------------------------
    def run(self) -> ReplayResult:
        """Run the whole replay to completion.

        The delta-phase bookkeeping and the per-process interpreter are
        inlined into this one loop on purpose: a blocking-heavy point
        performs hundreds of activations per simulated date, and the
        Python call + local-rebinding overhead of a per-activation
        helper used to dominate the replay wall.  ``proc.phase`` carries the
        position inside a multi-suspension op (the Smart FIFO blocking
        loop mirrors the real generator's suspension points).
        """
        runnable = self.runnable
        delta_events = self.delta_events
        delta_wakes = self.delta_wakes
        heap = self.heap
        fifos = self.fifos
        check = self.check
        quantum_fs = self.quantum_fs
        heappush = heapq.heappush
        heappop = heapq.heappop
        now = 0
        seq = 0
        activations = 0
        delta_cycles = 0
        timed_phases = 0
        for proc in self.procs:
            proc.runnable = True
            runnable.append(proc)
        while True:
            if runnable:
                delta_cycles += 1
            while runnable:
                proc = runnable.popleft()
                proc.runnable = False
                activations += 1
                # -- run ``proc`` until it suspends or terminates --------
                program = proc.program
                length = proc.length
                pc = proc.pc
                phase = proc.phase
                stored = proc.stored
                while True:
                    if pc >= length:
                        proc.terminated = True
                        break
                    op, a, b, pre = program[pc]
                    if pre and phase == 0:
                        # Fused local-time advance of the INCs before this
                        # op (applies exactly once: every suspension point
                        # below leaves a non-zero resume phase).
                        stored = (stored if stored > now else now) + pre
                    if op == OP_SMART_WRITE:
                        f = fifos[a]
                        # Fast path: non-synchronizing write into a non-full ring
                        # (phases 0 -> 2 -> 6 of the machine below, no suspension).
                        if phase == 0 and not f.sync_on_access \
                                and f.nw - f.nr != f.depth:
                            local = stored if stored > now else now
                            index = f.nw
                            if index >= f.depth:
                                freeing = f.rdates[index - f.depth]
                                if freeing > local:
                                    local = freeing
                                    stored = freeing
                            f.wdates.append(local)
                            f.nw = index + 1
                            if f.blocked_readers:
                                ev = f.cell_filled
                                if not ev.pending:
                                    ev.pending = True
                                    delta_events.append(ev)
                            if check and local != b:
                                self._mismatch(proc, pc, op, b, local)
                            pc += 1
                            continue
                        suspended = False
                        while True:
                            if phase == 0:
                                if f.sync_on_access:
                                    if stored > now:
                                        phase = 1
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                phase = 2
                            elif phase == 1:
                                stored = now
                                phase = 2
                            elif phase == 2:
                                if f.nw - f.nr == f.depth:
                                    f.blocking_waits += 1
                                    f.blocked_writers += 1
                                    if stored > now:
                                        phase = 3
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                    phase = 4
                                else:
                                    phase = 6
                            elif phase == 3:
                                stored = now
                                phase = 4
                            elif phase == 4:
                                if f.nw - f.nr == f.depth:
                                    phase = 5
                                    proc.wait_id = wid = proc.wait_id + 1
                                    f.cell_freed.waiters.append((proc, wid))
                                    suspended = True
                                    break
                                f.blocked_writers -= 1
                                phase = 2
                            elif phase == 5:
                                f.blocked_writers -= 1
                                phase = 2
                            else:  # phase 6: the write itself
                                local = stored if stored > now else now
                                index = f.nw
                                if index >= f.depth:
                                    freeing = f.rdates[index - f.depth]
                                    if freeing > local:
                                        local = freeing
                                        stored = freeing
                                f.wdates.append(local)
                                f.nw = index + 1
                                if f.blocked_readers:
                                    ev = f.cell_filled
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                                if check and local != b:
                                    self._mismatch(proc, pc, op, b, local)
                                pc += 1
                                phase = 0
                                break
                        if suspended:
                            break
                        continue
                    if op == OP_SMART_READ:
                        f = fifos[a]
                        # Fast path: non-synchronizing read of a non-empty ring.
                        if phase == 0 and not f.sync_on_access and f.nw != f.nr:
                            local = stored if stored > now else now
                            insertion = f.wdates[f.nr]
                            if insertion > local:
                                local = insertion
                                stored = insertion
                            f.rdates.append(local)
                            f.nr += 1
                            if f.blocked_writers:
                                ev = f.cell_freed
                                if not ev.pending:
                                    ev.pending = True
                                    delta_events.append(ev)
                            if check and local != b:
                                self._mismatch(proc, pc, op, b, local)
                            pc += 1
                            continue
                        suspended = False
                        while True:
                            if phase == 0:
                                if f.sync_on_access:
                                    if stored > now:
                                        phase = 1
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                phase = 2
                            elif phase == 1:
                                stored = now
                                phase = 2
                            elif phase == 2:
                                if f.nw == f.nr:
                                    f.blocking_waits += 1
                                    f.blocked_readers += 1
                                    if stored > now:
                                        phase = 3
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                    phase = 4
                                else:
                                    phase = 6
                            elif phase == 3:
                                stored = now
                                phase = 4
                            elif phase == 4:
                                if f.nw == f.nr:
                                    phase = 5
                                    proc.wait_id = wid = proc.wait_id + 1
                                    f.cell_filled.waiters.append((proc, wid))
                                    suspended = True
                                    break
                                f.blocked_readers -= 1
                                phase = 2
                            elif phase == 5:
                                f.blocked_readers -= 1
                                phase = 2
                            else:  # phase 6: the read itself
                                local = stored if stored > now else now
                                insertion = f.wdates[f.nr]
                                if insertion > local:
                                    local = insertion
                                    stored = insertion
                                f.rdates.append(local)
                                f.nr += 1
                                if f.blocked_writers:
                                    ev = f.cell_freed
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                                if check and local != b:
                                    self._mismatch(proc, pc, op, b, local)
                                pc += 1
                                phase = 0
                                break
                        if suspended:
                            break
                        continue
                    if op == OP_INC:
                        stored = (stored if stored > now else now) + a
                        pc += 1
                        continue
                    if op == OP_SYNC:
                        if phase == 0:
                            if check:
                                local = stored if stored > now else now
                                if local != a:
                                    self._mismatch(proc, pc, op, a, local)
                            if stored > now:
                                phase = 1
                                proc.wait_id = wid = proc.wait_id + 1
                                seq += 1
                                heappush(heap, (stored, seq, proc, wid))
                                break
                        stored = now
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_TIMED:
                        if phase == 0:
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            if a <= 0:
                                # Zero-duration timeouts wake in the next delta phase.
                                delta_wakes.append((proc, wid))
                            else:
                                seq += 1
                                heappush(heap, (now + a, seq, proc, wid))
                            break
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_QUANTUM:
                        if phase == 0:
                            stored = (stored if stored > now else now) + a
                            offset = stored - now
                            if (offset > 0) if quantum_fs == 0 else (offset >= quantum_fs):
                                phase = 1
                                proc.wait_id = wid = proc.wait_id + 1
                                seq += 1
                                heappush(heap, (stored, seq, proc, wid))
                                break
                            pc += 1
                            continue
                        stored = now
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_REG_WRITE:
                        f = fifos[a]
                        if f.occupancy >= f.depth:
                            # phase 1 marks a resume so the fused pre-inc
                            # above is not applied twice.
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            f.data_read.waiters.append((proc, wid))
                            break
                        f.occupancy += 1
                        f.total_written += 1
                        ev = f.data_written
                        if not ev.pending:
                            ev.pending = True
                            delta_events.append(ev)
                        if check and now != b:
                            self._mismatch(proc, pc, op, b, now)
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_REG_READ:
                        f = fifos[a]
                        if f.occupancy == 0:
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            f.data_written.waiters.append((proc, wid))
                            break
                        f.occupancy -= 1
                        f.total_read += 1
                        ev = f.data_read
                        if not ev.pending:
                            ev.pending = True
                            delta_events.append(ev)
                        if check and now != b:
                            self._mismatch(proc, pc, op, b, now)
                        pc += 1
                        phase = 0
                        continue
                    raise ReplayError(f"unknown compiled op {op}")
                proc.pc = pc
                proc.phase = phase
                proc.stored = stored
            # -- delta phase: deliver notifications, wake waiters --------
            # (nothing appends to either list while the steps above are
            # idle, so iterate in place and clear afterwards — the lists
            # keep a stable identity for the locals bound above)
            if delta_events:
                for event in delta_events:
                    event.pending = False
                    waiters = event.waiters
                    if waiters:
                        event.waiters = []
                        for proc, wait_id in waiters:
                            if not (proc.terminated or proc.runnable
                                    or wait_id != proc.wait_id):
                                proc.runnable = True
                                runnable.append(proc)
                delta_events.clear()
            if delta_wakes:
                for proc, wait_id in delta_wakes:
                    if not (proc.terminated or proc.runnable
                            or wait_id != proc.wait_id):
                        proc.runnable = True
                        runnable.append(proc)
                delta_wakes.clear()
            if runnable:
                continue
            # -- timed phase: advance to the next pending date -----------
            if not heap:
                break
            time_fs = heap[0][0]
            now = time_fs
            timed_phases += 1
            while heap and heap[0][0] == time_fs:
                _, _, proc, wait_id = heappop(heap)
                if not (proc.terminated or proc.runnable
                        or wait_id != proc.wait_id):
                    proc.runnable = True
                    runnable.append(proc)
        self.now = now
        self.seq = seq
        self.activations = activations
        self.delta_cycles = delta_cycles
        self.timed_phases = timed_phases
        return ReplayResult(
            sim_end_fs=self.now,
            quantum_fs=self.quantum_fs,
            depths=self.depths,
            thread_activations=self.activations,
            delta_cycles=self.delta_cycles,
            timed_phases=self.timed_phases,
            fifo_stats=[
                {
                    "name": state.name,
                    "kind": state.kind,
                    "depth": state.depth,
                    "total_written": state.total_written,
                    "total_read": state.total_read,
                    "blocking_waits": state.blocking_waits,
                }
                for state in self.fifos
            ],
            process_local_fs={
                proc.pid: proc.stored for proc in self.procs
            },
            all_terminated=all(proc.terminated for proc in self.procs),
            mismatches=self.mismatches,
            fifo_dates=[
                (state.wdates, state.rdates)
                if state.kind == "smart" else None
                for state in self.fifos
            ],
        )
