"""Replay recorded dependency spools at arbitrary FIFO depths / quanta.

One reference simulation records, per thread and in program order, every
FIFO access and every timing annotation (a :class:`DependencySpool`, see
``repro.kernel.tracing``).  :class:`ReplayEngine` compiles that record into
flat per-thread programs and re-executes them against a miniature explicit
scheduler: completion dates follow the paper's recurrence
``d_i = max(d_{i-1} + gap_i, cell_date_i)``, blocking waits come from
re-deriving when a Smart FIFO's cell ring is internally full/empty at the
*replayed* depth, and the global date advances through the same
delta-cycle / delta-notification / timed-phase machinery as the real
kernel — but with no generators, no coroutines and no trace pipeline.

The engine mirrors the real kernel exactly (same counters, same wake
order, same local-time clamping), which is what makes the anchor
self-check meaningful: replaying at the recorded configuration must
reproduce the recorded per-access dates, kernel counters and final date
bit-exactly, otherwise the run is declared non-replayable.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.tracing import (
    BR_GET_SIZE,
    BR_IS_EMPTY,
    BR_IS_FULL,
    BR_NAMES,
    BR_NB_READ,
    BR_NB_WRITE,
    BR_PEEK_SIZE,
    BR_PKT_AVAILABLE,
    BR_PKT_SPACE,
    BR_REG_IS_EMPTY,
    BR_REG_IS_FULL,
    BR_REG_NB_READ,
    BR_REG_NB_WRITE,
    BR_REG_PEEK,
    BR_REG_SIZE,
    DEP_BRANCH,
    DEP_GRANT,
    DEP_INC,
    DEP_QUANTUM,
    DEP_REG_READ,
    DEP_REG_WRITE,
    DEP_SMART_READ,
    DEP_SMART_WRITE,
    DEP_SPAN_READ,
    DEP_SPAN_WRITE,
    DEP_SYNC,
    DEP_TIMED,
    DEP_WAIT_CAP,
    DependencySpool,
)


class ReplayError(RuntimeError):
    """The spool cannot be replayed (poisoned or corrupt)."""


class ReplayMismatch(ReplayError):
    """The anchor self-check found a divergence from the recorded run."""

    def __init__(self, diffs: Sequence[str]):
        self.diffs = list(diffs)
        preview = "; ".join(self.diffs[:8])
        more = len(self.diffs) - 8
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"replay diverges from recorded run: {preview}")


class ReplayInvalid(ReplayError):
    """The retargeted point falls outside the recording's validity envelope.

    A recorded branch outcome (the result of an occupancy probe such as
    ``nb_write``/``is_full``/``get_size``) could not be reproduced at the
    replayed depth/quantum: the anchor's control flow is not valid there,
    so the replay refuses rather than silently diverging.  Callers are
    expected to fall back to a fresh simulation for exactly these points.
    """

    def __init__(self, message: str, process: Optional[str] = None,
                 fifo: Optional[str] = None,
                 construct: Optional[str] = None):
        #: Name of the process whose recorded decision became invalid.
        self.process = process
        #: Name of the FIFO the probe inspected (None for non-FIFO causes).
        self.fifo = fifo
        #: Human-readable name of the probing construct (see ``BR_NAMES``).
        self.construct = construct
        super().__init__(message)


# Compiled opcodes (uniform ``(op, a, b, pre)`` tuples, ``pre`` being the
# fused local-time advance of the preceding INC records; spans are
# expanded to word ops at compile time, exactly the word loop they are
# bit-exact with).
OP_SMART_WRITE = 0  # a = fifo index, b = recorded insertion date (fs)
OP_SMART_READ = 1   # a = fifo index, b = recorded read date (fs)
OP_SYNC = 2         # a = recorded local date at the sync (fs)
OP_TIMED = 3        # a = wait duration (fs)
OP_QUANTUM = 4      # a = quantum-keeper annotation (fs)
OP_REG_WRITE = 5    # a = fifo index, b = recorded kernel date (fs)
OP_REG_READ = 6     # a = fifo index, b = recorded kernel date (fs)
OP_INC = 7          # a = local-time annotation (fs)
OP_BRANCH = 8       # a = fifo index, b = (construct, outcome, date_fs)
OP_WAIT_CAP = 9     # a = fifo index, b = side (0 = writable, 1 = readable)
OP_GRANT = 10       # a = arbiter index, b = (grant_fs, access_fs)

_OP_NAMES = (
    "smart_write", "smart_read", "sync", "timed", "quantum",
    "reg_write", "reg_read", "inc", "branch", "wait_cap", "grant",
)

_MAX_MISMATCHES = 25


class _Proc:
    """Replay image of one thread process."""

    __slots__ = (
        "pid", "name", "program", "length", "pc", "phase", "stored",
        "wait_id", "runnable", "terminated",
    )

    def __init__(self, pid: int, name: str, program: List[tuple]):
        self.pid = pid
        self.name = name
        self.program = program
        self.length = len(program)
        self.pc = 0
        #: Sub-state of a multi-suspension op (the blocking-loop machine).
        self.phase = 0
        #: Raw local date, mirroring ``Process.local_fs`` (-1 = never set).
        self.stored = -1
        self.wait_id = 0
        self.runnable = False
        self.terminated = False


class _Event:
    """Replay image of a kernel event (delta notifications only)."""

    __slots__ = ("pending", "waiters")

    def __init__(self):
        self.pending = False
        self.waiters: List[Tuple[_Proc, int]] = []


class _SmartState:
    """Replay image of a Smart FIFO's cell ring at the replayed depth."""

    __slots__ = (
        "name", "depth", "sync_on_access", "wdates", "rdates", "nw", "nr",
        "blocked_readers", "blocked_writers", "blocking_waits",
        "cell_filled", "cell_freed", "anchor_depth", "packet_size",
    )

    kind = "smart"

    def __init__(self, name: str, depth: int, sync_on_access: bool,
                 anchor_depth: int = 0, packet_size: int = 0):
        self.name = name
        self.depth = depth
        self.sync_on_access = sync_on_access
        #: Depth the anchor run recorded (envelope checks compare the probe
        #: at this depth against the replayed one).
        self.anchor_depth = anchor_depth or depth
        #: Packet granularity of a PacketSmartFifo (0 = word-level only).
        self.packet_size = packet_size
        #: Insertion date of write i / freeing date of read i (fs).
        self.wdates: List[int] = []
        self.rdates: List[int] = []
        #: len(wdates) / len(rdates) as plain ints — the occupancy check
        #: is the hottest expression of the interpreter.
        self.nw = 0
        self.nr = 0
        self.blocked_readers = 0
        self.blocked_writers = 0
        self.blocking_waits = 0
        self.cell_filled = _Event()
        self.cell_freed = _Event()

    @property
    def total_written(self) -> int:
        return len(self.wdates)

    @property
    def total_read(self) -> int:
        return len(self.rdates)


class _RegState:
    """Replay image of a regular FIFO (occupancy only, no dates)."""

    __slots__ = (
        "name", "depth", "occupancy", "total_written", "total_read",
        "data_written", "data_read", "anchor_depth",
    )

    kind = "regular"
    sync_on_access = False
    blocking_waits = 0

    def __init__(self, name: str, depth: int, anchor_depth: int = 0):
        self.name = name
        self.depth = depth
        self.anchor_depth = anchor_depth or depth
        self.occupancy = 0
        self.total_written = 0
        self.total_read = 0
        self.data_written = _Event()
        self.data_read = _Event()


class _Method:
    """Replay image of one method process: a pinned branch-record stream.

    Methods cannot block or synchronize, so their recorded streams contain
    only ``DEP_BRANCH`` records.  They replay *pinned*: each record fires at
    its recorded kernel date once the emulated FIFO state verifies against
    the recorded outcome (exact-occupancy matching orders concurrent method
    accesses the way the anchor ordered them); a record that stays
    infeasible at its date pushes the point outside the validity envelope.
    """

    __slots__ = ("pid", "name", "records", "length", "pc")

    def __init__(self, pid: int, name: str, records: List[tuple]):
        self.pid = pid
        self.name = name
        #: ``(due_fs, construct, fifo_index, outcome, date_fs)`` per record.
        self.records = records
        self.length = len(records)
        self.pc = 0


def _smart_probe(f: _SmartState, depth: int, construct: int, d: int,
                 psize: int) -> Tuple[int, int]:
    """Re-derive one Smart FIFO probe from the emulated ring.

    Returns ``(outcome, armed_fs)``: the probe's result at date ``d`` with
    the ring truncated/extended to ``depth``, and the date at which the
    probe would have (re)armed a forced external notification (-1 when it
    arms nothing).  The arming date matters for pinned method replays: a
    retarget that changes it would change when the method is next invoked,
    which the pinned stream cannot represent.
    """
    nw = f.nw
    nr = f.nr
    busy = nw - nr
    if construct == BR_NB_WRITE:
        if busy >= depth:
            return 0, -1
        freeing = f.rdates[nw - depth] if nw >= depth else -1
        if freeing > d:
            return 0, freeing
        return 1, -1
    if construct == BR_NB_READ:
        if busy == 0:
            return 0, -1
        insertion = f.wdates[nr]
        if insertion > d:
            return 0, insertion
        return 1, -1
    if construct == BR_IS_FULL:
        if busy >= depth:
            return 1, -1
        freeing = f.rdates[nw - depth] if nw >= depth else -1
        if freeing > d:
            return 1, freeing
        return 0, -1
    if construct == BR_IS_EMPTY:
        if busy == 0:
            return 1, -1
        insertion = f.wdates[nr]
        if insertion > d:
            return 1, insertion
        return 0, -1
    if construct == BR_GET_SIZE or construct == BR_PEEK_SIZE:
        return (bisect_right(f.wdates, d) - bisect_right(f.rdates, d)), -1
    if construct == BR_PKT_AVAILABLE:
        if psize <= 0:
            raise ReplayError(f"packet probe on non-packet FIFO {f.name}")
        if busy >= psize:
            completion = f.wdates[nr + psize - 1]
            if completion <= d:
                return 1, -1
            return 0, completion
        return 0, -1
    if construct == BR_PKT_SPACE:
        if psize <= 0:
            raise ReplayError(f"packet probe on non-packet FIFO {f.name}")
        if depth - busy >= psize:
            index = nw - depth + psize - 1
            if index < 0:
                return 1, -1
            ready = f.rdates[index]
            if ready <= d:
                return 1, -1
            return 0, ready
        return 0, -1
    raise ReplayError(f"unknown branch construct {construct}")


@dataclass
class ReplayResult:
    """Everything one replayed evaluation point produces."""

    sim_end_fs: int
    quantum_fs: int
    depths: List[int]
    thread_activations: int
    delta_cycles: int
    timed_phases: int
    fifo_stats: List[dict]
    process_local_fs: Dict[int, int]
    all_terminated: bool
    #: ``(process, pc, op, expected, got)`` date-check divergences
    #: (only populated when the replay ran with ``check_dates=True``).
    mismatches: List[tuple] = field(default_factory=list)
    #: Zero except in strict (method-pinned) replays, which verify the
    #: recorded method schedule and adopt its invocation count.
    method_invocations: int = 0
    #: Per-FIFO ``(insertion_dates, read_dates)`` in fs for Smart FIFOs
    #: (None for regular FIFOs, which carry no dates) — the paper's
    #: completion dates, used by sweep cross-validation.
    fifo_dates: List[Optional[Tuple[List[int], List[int]]]] = field(
        default_factory=list
    )

    @property
    def context_switches(self) -> int:
        return self.thread_activations

    @property
    def blocking_waits(self) -> int:
        return sum(f["blocking_waits"] for f in self.fifo_stats)


class ReplayEngine:
    """Compile one :class:`DependencySpool` and replay it at will.

    The engine is immutable after construction; every :meth:`replay` call
    creates fresh emulator state, so one recorded anchor can be replayed
    at hundreds of depth/quantum points.
    """

    def __init__(self, spool: DependencySpool):
        if spool.poison is not None:
            raise ReplayError(f"recording is not replayable: {spool.poison}")
        self.spool = spool
        self.fifos: List[dict] = list(spool.fifos)
        self.arbiters: List[dict] = list(getattr(spool, "arbiters", ()))
        self.programs: List[Tuple[str, int, List[tuple]]] = [
            (name, pid, _compile_ops(spool.ops.get(pid, ())))
            for name, pid in spool.threads
        ]
        #: Pinned branch-record streams of the method processes (see
        #: :class:`_Method`).  A spool with any non-empty method stream
        #: replays in *strict* mode: every recorded date is verified and
        #: the result is the recorded run itself (identical-execution
        #: envelope), because method invocation times cannot be re-derived.
        self.method_programs: List[Tuple[str, int, List[tuple]]] = []
        for name, pid in getattr(spool, "methods", ()):
            records = []
            for op in spool.ops.get(pid, ()):
                if op[0] != DEP_BRANCH:
                    raise ReplayError(
                        f"method process {name} recorded op code {op[0]}; "
                        "only branch probes are replayable from methods"
                    )
                _, construct, fifo_index, outcome, date_fs, now_fs = op
                records.append(
                    (now_fs, construct, fifo_index, outcome, date_fs)
                )
            self.method_programs.append((name, pid, records))
        self.strict = any(recs for _, _, recs in self.method_programs)
        self.op_count = sum(len(prog) for _, _, prog in self.programs) + sum(
            len(recs) for _, _, recs in self.method_programs
        )
        self._envelope = self._collect_envelope()

    def _collect_envelope(self) -> Dict[int, dict]:
        """Static (provable) validity envelope per FIFO index.

        Write-side boolean probes are monotone in the depth *given an
        unchanged prior state*: an accepted ``nb_write`` (or a False
        ``is_full``, or a True ``space_for_packet``) stays valid for any
        depth >= the anchor's, and a refusal stays valid for any depth <=
        it.  Inside the resulting per-FIFO ``[min_depth, max_depth]`` range
        the whole recording is provably stable by induction; outside it the
        dynamic per-record verification decides (it may still succeed — the
        static envelope is sufficient, not necessary).
        """
        envelope: Dict[int, dict] = {}

        def constrain(fifo_index: int, kind: str, construct: int,
                      process: str) -> None:
            entry = envelope.setdefault(fifo_index, {})
            if kind not in entry:
                entry[kind] = (BR_NAMES.get(construct, str(construct)),
                               process)

        for name, _pid, program in self.programs:
            for op, a, b, _pre in program:
                if op != OP_BRANCH:
                    continue
                construct, outcome, _date = b
                self._constrain_one(constrain, a, construct, outcome, name)
        for name, _pid, records in self.method_programs:
            for _due, construct, fifo_index, outcome, _date in records:
                self._constrain_one(
                    constrain, fifo_index, construct, outcome, name
                )
        return envelope

    def _constrain_one(self, constrain, fifo_index: int, construct: int,
                       outcome: int, process: str) -> None:
        anchor_depth = self.fifos[fifo_index]["depth"]
        if construct == BR_NB_WRITE or construct == BR_PKT_SPACE:
            constrain(fifo_index, "ge" if outcome else "le", construct,
                      process)
        elif construct == BR_IS_FULL:
            constrain(fifo_index, "le" if outcome else "ge", construct,
                      process)
        elif construct == BR_REG_NB_WRITE:
            accepted = outcome < anchor_depth
            constrain(fifo_index, "ge" if accepted else "le", construct,
                      process)
        elif construct == BR_REG_IS_FULL:
            full = outcome >= anchor_depth
            constrain(fifo_index, "le" if full else "ge", construct, process)

    def depth_envelope(self) -> List[dict]:
        """Per-FIFO static envelope: ``[{name, min_depth, max_depth, ...}]``.

        ``min_depth``/``max_depth`` bound the *provably* safe retargets for
        each FIFO (None = unbounded on that side); each bound names the
        probing construct and process that imposed it.  Retargets outside
        the bounds are still attempted — the dynamic per-record check is
        authoritative — but are the ones that can raise
        :class:`ReplayInvalid`.
        """
        report = []
        for index, meta in enumerate(self.fifos):
            entry = self._envelope.get(index, {})
            ge = entry.get("ge")
            le = entry.get("le")
            report.append({
                "name": meta["name"],
                "anchor_depth": meta["depth"],
                "min_depth": meta["depth"] if ge else None,
                "max_depth": meta["depth"] if le else None,
                "min_origin": ge,
                "max_origin": le,
            })
        return report

    # ------------------------------------------------------------------
    def retarget_depths(self, anchor_depth: int, depth: int) -> List[int]:
        """Per-FIFO depths for replaying a sweep point at ``depth``.

        Only FIFOs whose recorded depth equals the sweep's anchor depth are
        retargeted; auxiliary FIFOs with their own fixed depth (for example
        the mixed workload's back-pressure channel) keep it.
        """
        return [
            depth if meta["depth"] == anchor_depth else meta["depth"]
            for meta in self.fifos
        ]

    def replay(
        self,
        depths: Optional[Sequence[int]] = None,
        quantum_fs: Optional[int] = None,
        check_dates: bool = False,
    ) -> ReplayResult:
        """Re-execute the recorded programs at the given configuration.

        ``depths`` is one depth per recorded FIFO (registration order;
        None = the recorded depths).  ``quantum_fs`` overrides the global
        quantum (None = recorded).  With ``check_dates`` every completed
        access is compared against its recorded date (anchor self-check).
        """
        if depths is None:
            depths = [meta["depth"] for meta in self.fifos]
        elif len(depths) != len(self.fifos):
            raise ReplayError(
                f"expected {len(self.fifos)} depths, got {len(depths)}"
            )
        if any(d <= 0 for d in depths):
            raise ReplayError(f"replay depths must be positive: {depths}")
        if quantum_fs is None:
            quantum_fs = self.spool.quantum_fs
        elif self.strict and quantum_fs != self.spool.quantum_fs:
            # Pinned method records fire at recorded *kernel* dates; a
            # different quantum moves every sync boundary, so those dates
            # are only meaningful at the recorded quantum.
            raise ReplayInvalid(
                f"strict (method-pinned) recording cannot be retargeted "
                f"from quantum {self.spool.quantum_fs} fs to "
                f"{quantum_fs} fs",
            )
        return _Emulator(self, list(depths), quantum_fs, check_dates).run()

    # ------------------------------------------------------------------
    def self_check(self) -> ReplayResult:
        """Replay at the recorded configuration and compare everything.

        Raises :class:`ReplayMismatch` on any divergence; this is the gate
        every recording passes before being trusted for a sweep.
        """
        result = self.replay(check_dates=True)
        spool = self.spool
        diffs: List[str] = []
        for proc_name, pc, op, expected, got in result.mismatches:
            diffs.append(
                f"{proc_name} op#{pc} {_OP_NAMES[op]}: "
                f"recorded {expected}, replayed {got}"
            )
        if not result.all_terminated:
            diffs.append("replay deadlocked (recorded run completed)")
        if result.sim_end_fs != spool.sim_end_fs:
            diffs.append(
                f"sim_end_fs: recorded {spool.sim_end_fs}, "
                f"replayed {result.sim_end_fs}"
            )
        for key, got in (
            ("thread_activations", result.thread_activations),
            ("delta_cycles", result.delta_cycles),
            ("timed_phases", result.timed_phases),
            ("method_invocations", result.method_invocations),
        ):
            expected = spool.stats.get(key, 0)
            if expected != got:
                diffs.append(f"{key}: recorded {expected}, replayed {got}")
        for meta, got in zip(spool.fifos, result.fifo_stats):
            for key in ("total_written", "total_read", "blocking_waits"):
                if meta[key] != got[key]:
                    diffs.append(
                        f"{meta['name']}.{key}: recorded {meta[key]}, "
                        f"replayed {got[key]}"
                    )
        for pid, expected in spool.process_local_fs.items():
            got = result.process_local_fs.get(pid)
            if expected != got:
                diffs.append(
                    f"pid {pid} local_fs: recorded {expected}, replayed {got}"
                )
        if diffs:
            raise ReplayMismatch(diffs)
        return result


def _compile_ops(ops: Sequence[tuple]) -> List[tuple]:
    """Flatten one thread's recorded ops into ``(op, a, b, pre)`` tuples.

    ``pre`` is the accumulated local-time advance (the INC records) fused
    into the op that follows it: an INC never suspends, so it always
    executes in the same activation — and at the same kernel date — as
    phase 0 of the next op, and word loops (one INC per word) would
    otherwise double the interpreter's dispatch count.  Consecutive INCs
    merge additively (``max(max(s, now) + a, now) + b == max(s, now) +
    a + b`` for non-negative advances); only a trailing INC with no op
    after it survives as a standalone ``OP_INC``.

    Spans expand to the word loop they are bit-exact with: word op, then
    the per-word local-time advance (including the trailing one — the word
    loop advances after the last word too).
    """
    program: List[tuple] = []
    append = program.append
    pending = 0
    for op in ops:
        code = op[0]
        if code == DEP_SMART_WRITE or code == DEP_SMART_READ:
            append((code, op[1], op[2], pending))
            pending = 0
        elif code == DEP_SYNC:
            append((OP_SYNC, op[1], 0, pending))
            pending = 0
        elif code == DEP_TIMED:
            append((OP_TIMED, op[1], 0, pending))
            pending = 0
        elif code == DEP_QUANTUM:
            append((OP_QUANTUM, op[1], 0, pending))
            pending = 0
        elif code == DEP_REG_WRITE or code == DEP_REG_READ:
            append((code, op[1], op[2], pending))
            pending = 0
        elif code == DEP_INC:
            pending += op[1]
        elif code == DEP_SPAN_WRITE or code == DEP_SPAN_READ:
            word_op = (
                OP_SMART_WRITE if code == DEP_SPAN_WRITE else OP_SMART_READ
            )
            _, fifo_index, count, gap_const, gaps, dates = op
            if len(dates) != count or (gaps is not None and len(gaps) != count):
                raise ReplayError(
                    f"corrupt span record: {count} words, "
                    f"{len(dates)} dates"
                )
            for index in range(count):
                append((word_op, fifo_index, dates[index], pending))
                pending = gap_const if gaps is None else gaps[index]
        elif code == DEP_BRANCH:
            # (code, construct, fifo_index, outcome, date_fs, now_fs);
            # the kernel date is only needed by pinned method streams.
            append((OP_BRANCH, op[2], (op[1], op[3], op[4]), pending))
            pending = 0
        elif code == DEP_WAIT_CAP:
            append((OP_WAIT_CAP, op[1], op[2], pending))
            pending = 0
        elif code == DEP_GRANT:
            append((OP_GRANT, op[1], (op[2], op[3]), pending))
            pending = 0
        else:
            raise ReplayError(f"unknown dependency op code {code}")
    if pending:
        append((OP_INC, pending, 0, 0))
    return program


class _Emulator:
    """One replay run: miniature scheduler + flat-program interpreter.

    Mirrors ``kernel.scheduler.Scheduler`` exactly — delta cycles drain a
    FIFO queue of runnable processes, delta notifications collapse via the
    per-event pending flag, stale wakes are filtered by wait id, timed
    phases pop every record of the next date — and the Smart FIFO
    blocking loops as a per-op phase machine.
    """

    def __init__(self, engine: ReplayEngine, depths: List[int],
                 quantum_fs: int, check_dates: bool):
        self.engine = engine
        self.quantum_fs = quantum_fs
        self.strict = engine.strict
        # Strict mode verifies every recorded date (the identical-execution
        # argument needs them; see ``_finish_strict``).
        self.check = check_dates or self.strict
        self.mismatches: List[tuple] = []
        self.now = 0
        self.delta_cycles = 0
        self.timed_phases = 0
        self.activations = 0
        self.fifos: List[object] = [
            _SmartState(
                meta["name"], depth, meta["sync_on_access"],
                anchor_depth=meta["depth"],
                packet_size=meta.get("packet_size", 0),
            )
            if meta["kind"] == "smart"
            else _RegState(meta["name"], depth, anchor_depth=meta["depth"])
            for meta, depth in zip(engine.fifos, depths)
        ]
        self.depths = depths
        self.procs = [
            _Proc(pid, name, program)
            for name, pid, program in engine.programs
        ]
        self.methods = [
            _Method(pid, name, records)
            for name, pid, records in engine.method_programs
        ]
        #: Port-free date per recorded arbiter (NEVER before any grant).
        self.port_free = [-1] * len(engine.arbiters)
        self.runnable: deque = deque()
        self.delta_events: List[_Event] = []
        self.delta_wakes: List[Tuple[_Proc, int]] = []
        self.heap: List[tuple] = []
        self.seq = 0

    # -- scheduling primitives -----------------------------------------
    # The suspend / notify / wake primitives are inlined at their call
    # sites inside ``run``: a replay of a blocking-heavy point performs
    # hundreds of thousands of them, and the Python call overhead used
    # to dominate the replay wall.  ``delta_events`` and ``delta_wakes``
    # keep a stable list identity for the same reason (the delta phase
    # iterates in place and clears instead of rebinding), so ``run``
    # can hold them in locals across suspensions.

    def _mismatch(self, proc: _Proc, pc: int, op: int,
                  expected: int, got: int) -> None:
        if len(self.mismatches) < _MAX_MISMATCHES:
            self.mismatches.append((proc.name, pc, op, expected, got))

    # -- main loop + interpreter ---------------------------------------
    def run(self) -> ReplayResult:
        """Run the whole replay to completion.

        The delta-phase bookkeeping and the per-process interpreter are
        inlined into this one loop on purpose: a blocking-heavy point
        performs hundreds of activations per simulated date, and the
        Python call + local-rebinding overhead of a per-activation
        helper used to dominate the replay wall.  ``proc.phase`` carries the
        position inside a multi-suspension op (the Smart FIFO blocking
        loop mirrors the real generator's suspension points).
        """
        runnable = self.runnable
        delta_events = self.delta_events
        delta_wakes = self.delta_wakes
        heap = self.heap
        fifos = self.fifos
        check = self.check
        strict = self.strict
        quantum_fs = self.quantum_fs
        port_free = self.port_free
        methods = self.methods
        have_methods = bool(methods)
        heappush = heapq.heappush
        heappop = heapq.heappop
        now = 0
        seq = 0
        activations = 0
        delta_cycles = 0
        timed_phases = 0
        for proc in self.procs:
            proc.runnable = True
            runnable.append(proc)
        while True:
            if have_methods:
                # Fire pinned method records that verify against the
                # *pre-thread* state of this delta round; records the anchor
                # interleaved after this round's thread effects defer and
                # are retried at quiescence below.
                self._pump(now)
            if runnable:
                delta_cycles += 1
            while runnable:
                proc = runnable.popleft()
                proc.runnable = False
                activations += 1
                # -- run ``proc`` until it suspends or terminates --------
                program = proc.program
                length = proc.length
                pc = proc.pc
                phase = proc.phase
                stored = proc.stored
                while True:
                    if pc >= length:
                        proc.terminated = True
                        break
                    op, a, b, pre = program[pc]
                    if pre and phase == 0:
                        # Fused local-time advance of the INCs before this
                        # op (applies exactly once: every suspension point
                        # below leaves a non-zero resume phase).
                        stored = (stored if stored > now else now) + pre
                    if op == OP_SMART_WRITE:
                        f = fifos[a]
                        # Fast path: non-synchronizing write into a non-full ring
                        # (phases 0 -> 2 -> 6 of the machine below, no suspension).
                        if phase == 0 and not f.sync_on_access \
                                and f.nw - f.nr != f.depth:
                            local = stored if stored > now else now
                            index = f.nw
                            if index >= f.depth:
                                freeing = f.rdates[index - f.depth]
                                if freeing > local:
                                    local = freeing
                                    stored = freeing
                            f.wdates.append(local)
                            f.nw = index + 1
                            if f.blocked_readers:
                                ev = f.cell_filled
                                if not ev.pending:
                                    ev.pending = True
                                    delta_events.append(ev)
                            if check and local != b:
                                self._mismatch(proc, pc, op, b, local)
                            pc += 1
                            continue
                        suspended = False
                        while True:
                            if phase == 0:
                                if f.sync_on_access:
                                    if stored > now:
                                        phase = 1
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                phase = 2
                            elif phase == 1:
                                stored = now
                                phase = 2
                            elif phase == 2:
                                if f.nw - f.nr == f.depth:
                                    f.blocking_waits += 1
                                    f.blocked_writers += 1
                                    if stored > now:
                                        phase = 3
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                    phase = 4
                                else:
                                    phase = 6
                            elif phase == 3:
                                stored = now
                                phase = 4
                            elif phase == 4:
                                if f.nw - f.nr == f.depth:
                                    phase = 5
                                    proc.wait_id = wid = proc.wait_id + 1
                                    f.cell_freed.waiters.append((proc, wid))
                                    suspended = True
                                    break
                                f.blocked_writers -= 1
                                phase = 2
                            elif phase == 5:
                                f.blocked_writers -= 1
                                phase = 2
                            else:  # phase 6: the write itself
                                local = stored if stored > now else now
                                index = f.nw
                                if index >= f.depth:
                                    freeing = f.rdates[index - f.depth]
                                    if freeing > local:
                                        local = freeing
                                        stored = freeing
                                f.wdates.append(local)
                                f.nw = index + 1
                                if f.blocked_readers:
                                    ev = f.cell_filled
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                                if check and local != b:
                                    self._mismatch(proc, pc, op, b, local)
                                pc += 1
                                phase = 0
                                break
                        if suspended:
                            break
                        continue
                    if op == OP_SMART_READ:
                        f = fifos[a]
                        # Fast path: non-synchronizing read of a non-empty ring.
                        if phase == 0 and not f.sync_on_access and f.nw != f.nr:
                            local = stored if stored > now else now
                            insertion = f.wdates[f.nr]
                            if insertion > local:
                                local = insertion
                                stored = insertion
                            f.rdates.append(local)
                            f.nr += 1
                            if f.blocked_writers:
                                ev = f.cell_freed
                                if not ev.pending:
                                    ev.pending = True
                                    delta_events.append(ev)
                            if check and local != b:
                                self._mismatch(proc, pc, op, b, local)
                            pc += 1
                            continue
                        suspended = False
                        while True:
                            if phase == 0:
                                if f.sync_on_access:
                                    if stored > now:
                                        phase = 1
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                phase = 2
                            elif phase == 1:
                                stored = now
                                phase = 2
                            elif phase == 2:
                                if f.nw == f.nr:
                                    f.blocking_waits += 1
                                    f.blocked_readers += 1
                                    if stored > now:
                                        phase = 3
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                    phase = 4
                                else:
                                    phase = 6
                            elif phase == 3:
                                stored = now
                                phase = 4
                            elif phase == 4:
                                if f.nw == f.nr:
                                    phase = 5
                                    proc.wait_id = wid = proc.wait_id + 1
                                    f.cell_filled.waiters.append((proc, wid))
                                    suspended = True
                                    break
                                f.blocked_readers -= 1
                                phase = 2
                            elif phase == 5:
                                f.blocked_readers -= 1
                                phase = 2
                            else:  # phase 6: the read itself
                                local = stored if stored > now else now
                                insertion = f.wdates[f.nr]
                                if insertion > local:
                                    local = insertion
                                    stored = insertion
                                f.rdates.append(local)
                                f.nr += 1
                                if f.blocked_writers:
                                    ev = f.cell_freed
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                                if check and local != b:
                                    self._mismatch(proc, pc, op, b, local)
                                pc += 1
                                phase = 0
                                break
                        if suspended:
                            break
                        continue
                    if op == OP_INC:
                        stored = (stored if stored > now else now) + a
                        pc += 1
                        continue
                    if op == OP_SYNC:
                        if phase == 0:
                            if check:
                                local = stored if stored > now else now
                                if local != a:
                                    self._mismatch(proc, pc, op, a, local)
                            if stored > now:
                                phase = 1
                                proc.wait_id = wid = proc.wait_id + 1
                                seq += 1
                                heappush(heap, (stored, seq, proc, wid))
                                break
                        stored = now
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_TIMED:
                        if phase == 0:
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            if a <= 0:
                                # Zero-duration timeouts wake in the next delta phase.
                                delta_wakes.append((proc, wid))
                            else:
                                seq += 1
                                heappush(heap, (now + a, seq, proc, wid))
                            break
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_QUANTUM:
                        if phase == 0:
                            stored = (stored if stored > now else now) + a
                            offset = stored - now
                            if (offset > 0) if quantum_fs == 0 else (offset >= quantum_fs):
                                phase = 1
                                proc.wait_id = wid = proc.wait_id + 1
                                seq += 1
                                heappush(heap, (stored, seq, proc, wid))
                                break
                            pc += 1
                            continue
                        stored = now
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_REG_WRITE:
                        f = fifos[a]
                        if f.occupancy >= f.depth:
                            # phase 1 marks a resume so the fused pre-inc
                            # above is not applied twice.
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            f.data_read.waiters.append((proc, wid))
                            break
                        f.occupancy += 1
                        f.total_written += 1
                        ev = f.data_written
                        if not ev.pending:
                            ev.pending = True
                            delta_events.append(ev)
                        if check and now != b:
                            self._mismatch(proc, pc, op, b, now)
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_REG_READ:
                        f = fifos[a]
                        if f.occupancy == 0:
                            phase = 1
                            proc.wait_id = wid = proc.wait_id + 1
                            f.data_written.waiters.append((proc, wid))
                            break
                        f.occupancy -= 1
                        f.total_read += 1
                        ev = f.data_read
                        if not ev.pending:
                            ev.pending = True
                            delta_events.append(ev)
                        if check and now != b:
                            self._mismatch(proc, pc, op, b, now)
                        pc += 1
                        phase = 0
                        continue
                    if op == OP_BRANCH:
                        construct, rec_outcome, rec_date = b
                        f = fifos[a]
                        if construct >= BR_REG_NB_WRITE:
                            occ = f.occupancy
                            depth = f.depth
                            anchor = f.anchor_depth
                            if strict and occ != rec_outcome:
                                self._invalid(
                                    proc.name, f.name, construct,
                                    f"pinned replay needs the recorded "
                                    f"occupancy {rec_outcome}, found {occ}",
                                )
                            if construct == BR_REG_NB_WRITE:
                                if (occ < depth) != (rec_outcome < anchor):
                                    self._invalid(
                                        proc.name, f.name, construct,
                                        f"recorded occupancy {rec_outcome} "
                                        f"(anchor depth {anchor}), replayed "
                                        f"{occ} at depth {depth}",
                                    )
                                if rec_outcome < anchor:
                                    f.occupancy = occ + 1
                                    f.total_written += 1
                                    ev = f.data_written
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                            elif construct == BR_REG_NB_READ:
                                if (occ > 0) != (rec_outcome > 0):
                                    self._invalid(
                                        proc.name, f.name, construct,
                                        f"recorded occupancy {rec_outcome}, "
                                        f"replayed {occ}",
                                    )
                                if rec_outcome > 0:
                                    f.occupancy = occ - 1
                                    f.total_read += 1
                                    ev = f.data_read
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                            elif construct == BR_REG_IS_FULL:
                                if (occ >= depth) != (rec_outcome >= anchor):
                                    self._invalid(
                                        proc.name, f.name, construct,
                                        f"recorded occupancy {rec_outcome} "
                                        f"(anchor depth {anchor}), replayed "
                                        f"{occ} at depth {depth}",
                                    )
                            elif construct == BR_REG_SIZE:
                                if occ != rec_outcome:
                                    self._invalid(
                                        proc.name, f.name, construct,
                                        f"recorded level {rec_outcome}, "
                                        f"replayed {occ}",
                                    )
                            else:  # BR_REG_IS_EMPTY / BR_REG_PEEK
                                if (occ == 0) != (rec_outcome == 0):
                                    self._invalid(
                                        proc.name, f.name, construct,
                                        f"recorded occupancy {rec_outcome}, "
                                        f"replayed {occ}",
                                    )
                            if check and now != rec_date:
                                self._mismatch(proc, pc, op, rec_date, now)
                        else:
                            local = stored if stored > now else now
                            outcome, _armed = _smart_probe(
                                f, f.depth, construct, local, f.packet_size
                            )
                            if outcome != rec_outcome:
                                self._invalid(
                                    proc.name, f.name, construct,
                                    f"recorded outcome {rec_outcome}, "
                                    f"replayed {outcome} at depth {f.depth} "
                                    f"(anchor {f.anchor_depth})",
                                )
                            if construct == BR_NB_WRITE and outcome:
                                f.wdates.append(local)
                                f.nw += 1
                                if f.blocked_readers:
                                    ev = f.cell_filled
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                            elif construct == BR_NB_READ and outcome:
                                f.rdates.append(local)
                                f.nr += 1
                                if f.blocked_writers:
                                    ev = f.cell_freed
                                    if not ev.pending:
                                        ev.pending = True
                                        delta_events.append(ev)
                            if check and local != rec_date:
                                self._mismatch(proc, pc, op, rec_date, local)
                        pc += 1
                        continue
                    if op == OP_WAIT_CAP:
                        # Inlined wait_writable (b == 0) / wait_readable
                        # (b == 1): the capacity half of the blocking
                        # machines above, with no access after it (the
                        # arbiter grants and transfers separately).
                        f = fifos[a]
                        suspended = False
                        while True:
                            if phase == 0:
                                phase = 2
                            elif phase == 2:
                                blocked = (
                                    f.nw - f.nr == f.depth if b == 0
                                    else f.nw == f.nr
                                )
                                if blocked:
                                    f.blocking_waits += 1
                                    if b == 0:
                                        f.blocked_writers += 1
                                    else:
                                        f.blocked_readers += 1
                                    if stored > now:
                                        phase = 3
                                        proc.wait_id = wid = proc.wait_id + 1
                                        seq += 1
                                        heappush(heap, (stored, seq, proc, wid))
                                        suspended = True
                                        break
                                    stored = now
                                    phase = 4
                                else:
                                    pc += 1
                                    phase = 0
                                    break
                            elif phase == 3:
                                stored = now
                                phase = 4
                            elif phase == 4:
                                blocked = (
                                    f.nw - f.nr == f.depth if b == 0
                                    else f.nw == f.nr
                                )
                                if blocked:
                                    phase = 5
                                    proc.wait_id = wid = proc.wait_id + 1
                                    event = (
                                        f.cell_freed if b == 0
                                        else f.cell_filled
                                    )
                                    event.waiters.append((proc, wid))
                                    suspended = True
                                    break
                                if b == 0:
                                    f.blocked_writers -= 1
                                else:
                                    f.blocked_readers -= 1
                                phase = 2
                            else:  # phase 5: woken by the capacity event
                                if b == 0:
                                    f.blocked_writers -= 1
                                else:
                                    f.blocked_readers -= 1
                                phase = 2
                        if suspended:
                            break
                        continue
                    if op == OP_GRANT:
                        # Arbiter port grant: raise the caller to the
                        # port-free date (advance_to writes the raw local
                        # date only when the caller was actually delayed).
                        local = stored if stored > now else now
                        pf = port_free[a]
                        if local < pf:
                            local = pf
                            stored = pf
                        port_free[a] = local + b[1]
                        if check and local != b[0]:
                            self._mismatch(proc, pc, op, b[0], local)
                        pc += 1
                        continue
                    raise ReplayError(f"unknown compiled op {op}")
                proc.pc = pc
                proc.phase = phase
                proc.stored = stored
            # -- delta phase: deliver notifications, wake waiters --------
            # (nothing appends to either list while the steps above are
            # idle, so iterate in place and clear afterwards — the lists
            # keep a stable identity for the locals bound above)
            if delta_events:
                for event in delta_events:
                    event.pending = False
                    waiters = event.waiters
                    if waiters:
                        event.waiters = []
                        for proc, wait_id in waiters:
                            if not (proc.terminated or proc.runnable
                                    or wait_id != proc.wait_id):
                                proc.runnable = True
                                runnable.append(proc)
                delta_events.clear()
            if delta_wakes:
                for proc, wait_id in delta_wakes:
                    if not (proc.terminated or proc.runnable
                            or wait_id != proc.wait_id):
                        proc.runnable = True
                        runnable.append(proc)
                delta_wakes.clear()
            if runnable:
                continue
            if have_methods:
                # Quiescent: retry records the anchor interleaved after this
                # round's thread effects, then refuse to leave the date with
                # an applicable-but-unverifiable record pending (it would
                # silently fire at the wrong date otherwise).
                if self._pump(now):
                    continue
                for m in methods:
                    if m.pc < m.length and m.records[m.pc][0] <= now:
                        due, construct, fifo_index, outcome, _date = (
                            m.records[m.pc]
                        )
                        self._invalid(
                            m.name, fifos[fifo_index].name, construct,
                            f"pinned record (outcome {outcome}) could not "
                            f"be applied at its recorded date {due} fs",
                        )
            # -- timed phase: advance to the next pending date -----------
            time_fs = heap[0][0] if heap else -1
            if have_methods:
                for m in methods:
                    if m.pc < m.length:
                        due = m.records[m.pc][0]
                        if time_fs < 0 or due < time_fs:
                            time_fs = due
            if time_fs < 0:
                break
            now = time_fs
            timed_phases += 1
            while heap and heap[0][0] == time_fs:
                _, _, proc, wait_id = heappop(heap)
                if not (proc.terminated or proc.runnable
                        or wait_id != proc.wait_id):
                    proc.runnable = True
                    runnable.append(proc)
        self.now = now
        self.seq = seq
        self.activations = activations
        self.delta_cycles = delta_cycles
        self.timed_phases = timed_phases
        if self.strict:
            return self._finish_strict()
        return ReplayResult(
            sim_end_fs=self.now,
            quantum_fs=self.quantum_fs,
            depths=self.depths,
            thread_activations=self.activations,
            delta_cycles=self.delta_cycles,
            timed_phases=self.timed_phases,
            fifo_stats=self._fifo_stats(),
            process_local_fs={
                proc.pid: proc.stored for proc in self.procs
            },
            all_terminated=all(proc.terminated for proc in self.procs),
            mismatches=self.mismatches,
            fifo_dates=self._fifo_dates(),
        )

    def _fifo_stats(self) -> List[dict]:
        return [
            {
                "name": state.name,
                "kind": state.kind,
                "depth": state.depth,
                "total_written": state.total_written,
                "total_read": state.total_read,
                "blocking_waits": state.blocking_waits,
            }
            for state in self.fifos
        ]

    def _fifo_dates(self) -> List[Optional[Tuple[List[int], List[int]]]]:
        return [
            (state.wdates, state.rdates)
            if state.kind == "smart" else None
            for state in self.fifos
        ]

    def _invalid(self, process: str, fifo: str, construct: int,
                 detail: str) -> None:
        name = BR_NAMES.get(construct, str(construct))
        raise ReplayInvalid(
            f"replay outside validity envelope: {name} on {fifo} "
            f"in {process}: {detail}",
            process=process, fifo=fifo, construct=name,
        )

    # -- pinned method streams (strict mode) ---------------------------
    def _pump(self, now: int) -> bool:
        """Fire every due pinned method record that verifies; True if any.

        Records fire in stream order per method; a record whose recorded
        FIFO state has not been reached yet defers (exact-occupancy
        matching orders method effects against thread effects the way the
        anchor interleaved them).  The fixpoint ends when no due record
        verifies; the caller decides whether that is a deferral (threads
        still runnable this date) or an envelope violation (quiescent).
        """
        fired = False
        progress = True
        while progress:
            progress = False
            for m in self.methods:
                records = m.records
                while m.pc < m.length:
                    record = records[m.pc]
                    due = record[0]
                    if due > now:
                        break
                    if due < now:
                        # Defensive: the timed phase never advances past a
                        # pending due date, and the quiescence check fires
                        # first; an earlier due here means corrupt state.
                        self._invalid(
                            m.name, self.fifos[record[2]].name, record[1],
                            f"pinned record for kernel date {due} fs "
                            f"outlived its date (now {now} fs)",
                        )
                    if not self._apply_pinned(record):
                        break
                    m.pc += 1
                    progress = True
                    fired = True
        return fired

    def _apply_pinned(self, record: tuple) -> bool:
        """Verify one pinned method record and apply its effect.

        Returns False to defer (not this record's interleaving point yet,
        or the retargeted state cannot reproduce it — the quiescence check
        turns a permanent deferral into :class:`ReplayInvalid`).
        """
        _due, construct, fifo_index, outcome, date_fs = record
        f = self.fifos[fifo_index]
        if construct >= BR_REG_NB_WRITE:
            occ = f.occupancy
            if occ != outcome:
                return False
            depth = f.depth
            anchor = f.anchor_depth
            if construct == BR_REG_NB_WRITE:
                # occ == outcome, so this reduces to the depth envelope:
                # the anchor's accept/refuse must hold at the new depth.
                if (occ < depth) != (outcome < anchor):
                    return False
                if outcome < anchor:
                    f.occupancy = occ + 1
                    f.total_written += 1
                    ev = f.data_written
                    if not ev.pending:
                        ev.pending = True
                        self.delta_events.append(ev)
            elif construct == BR_REG_NB_READ:
                if occ > 0:
                    f.occupancy = occ - 1
                    f.total_read += 1
                    ev = f.data_read
                    if not ev.pending:
                        ev.pending = True
                        self.delta_events.append(ev)
            elif construct == BR_REG_IS_FULL:
                if (occ >= depth) != (outcome >= anchor):
                    return False
            # IS_EMPTY / PEEK / SIZE need only the exact-occupancy match.
            return True
        # Smart FIFO probe, pinned to its recorded local date.  The ring
        # is anchor-identical by induction, so the probe must reproduce at
        # the anchor depth (else: wrong interleaving point, defer) and —
        # when retargeted — at the replayed depth with the same armed
        # notification date (else the method's own invocation schedule
        # would change, which the pinned stream cannot represent).
        psize = f.packet_size
        anchor_outcome, anchor_armed = _smart_probe(
            f, f.anchor_depth, construct, date_fs, psize
        )
        if anchor_outcome != outcome:
            return False
        if f.depth != f.anchor_depth:
            replay_outcome, replay_armed = _smart_probe(
                f, f.depth, construct, date_fs, psize
            )
            if replay_outcome != outcome or replay_armed != anchor_armed:
                return False
        if construct == BR_NB_WRITE and outcome:
            f.wdates.append(date_fs)
            f.nw += 1
            if f.blocked_readers:
                ev = f.cell_filled
                if not ev.pending:
                    ev.pending = True
                    self.delta_events.append(ev)
        elif construct == BR_NB_READ and outcome:
            f.rdates.append(date_fs)
            f.nr += 1
            if f.blocked_writers:
                ev = f.cell_freed
                if not ev.pending:
                    ev.pending = True
                    self.delta_events.append(ev)
        return True

    def _finish_strict(self) -> ReplayResult:
        """Verify the pinned replay reproduced the anchor, then adopt it.

        In strict mode every method effect was applied at its recorded
        date and every thread date was checked, so a fully verified replay
        reproduces the anchor's *observables*: all per-access dates, all
        traffic totals, the end date and the final local times.  Blocking
        waits are honestly recomputed at the replayed depth (blocking
        preserves dates, so more or fewer waits stay inside the envelope);
        the kernel activity counters (activations, delta cycles, timed
        phases, method invocations) are adopted from the anchor and may
        drift sub-observably in a fresh run — external notification
        arming is depth-dependent scheduling noise the recorded behaviour
        does not see.  Any *date* or traffic discrepancy means the
        retarget changed behaviour the pinned streams cannot follow.
        """
        spool = self.engine.spool
        for m in self.methods:
            if m.pc < m.length:
                record = m.records[m.pc]
                self._invalid(
                    m.name, self.fifos[record[2]].name, record[1],
                    f"{m.length - m.pc} pinned records never became "
                    f"applicable",
                )
        if self.mismatches:
            name, pc, op, expected, got = self.mismatches[0]
            raise ReplayInvalid(
                f"replay outside validity envelope: {name} op#{pc} "
                f"{_OP_NAMES[op]} recorded {expected} fs, replayed "
                f"{got} fs ({len(self.mismatches)} divergences)",
                process=name,
            )
        for proc in self.procs:
            if not proc.terminated:
                raise ReplayInvalid(
                    f"replay outside validity envelope: {proc.name} "
                    f"deadlocked at op #{proc.pc}/{proc.length}",
                    process=proc.name,
                )
        for meta, state in zip(spool.fifos, self.fifos):
            for key in ("total_written", "total_read"):
                got = getattr(state, key)
                if meta[key] != got:
                    raise ReplayInvalid(
                        f"replay outside validity envelope: "
                        f"{meta['name']}.{key} recorded {meta[key]}, "
                        f"replayed {got}",
                        fifo=meta["name"],
                    )
        for proc in self.procs:
            expected = spool.process_local_fs.get(proc.pid)
            if expected is not None and expected != proc.stored:
                raise ReplayInvalid(
                    f"replay outside validity envelope: {proc.name} final "
                    f"local date recorded {expected} fs, replayed "
                    f"{proc.stored} fs",
                    process=proc.name,
                )
        stats = spool.stats
        return ReplayResult(
            sim_end_fs=spool.sim_end_fs,
            quantum_fs=self.quantum_fs,
            depths=self.depths,
            thread_activations=stats.get("thread_activations", 0),
            delta_cycles=stats.get("delta_cycles", 0),
            timed_phases=stats.get("timed_phases", 0),
            fifo_stats=self._fifo_stats(),
            process_local_fs=dict(spool.process_local_fs),
            all_terminated=True,
            mismatches=[],
            method_invocations=stats.get("method_invocations", 0),
            fifo_dates=self._fifo_dates(),
        )
