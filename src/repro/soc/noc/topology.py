"""Mesh topology builder.

Builds a W x H mesh of :class:`~repro.soc.noc.router.Router` modules and
wires the neighbouring links (each router's north/south/east/west output is
connected to the corresponding input queue of its neighbour).  Local ports
are left to the platform, which attaches network interfaces to them.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ...kernel.errors import SimulationError
from ...kernel.module import Module
from ...kernel.simtime import SimTime, ns
from ...kernel.simulator import Simulator
from .router import Link, Router


class Mesh(Module):
    """A rectangular mesh of routers with XY routing."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        width: int = 2,
        height: int = 2,
        queue_depth: int = 4,
        cycle_time: SimTime = ns(2),
    ):
        super().__init__(parent, name)
        if width <= 0 or height <= 0:
            raise SimulationError(f"mesh dimensions must be positive: {width}x{height}")
        self.width = width
        self.height = height
        self.routers: Dict[Tuple[int, int], Router] = {}
        for x in range(width):
            for y in range(height):
                self.routers[(x, y)] = Router(
                    self,
                    f"router_{x}_{y}",
                    coords=(x, y),
                    queue_depth=queue_depth,
                    cycle_time=cycle_time,
                )
        self._wire_neighbours()

    # ------------------------------------------------------------------
    def _wire_neighbours(self) -> None:
        for (x, y), router in self.routers.items():
            if x + 1 < self.width:
                east = self.routers[(x + 1, y)]
                router.connect_output("east", east.input_link("west"))
            if x - 1 >= 0:
                west = self.routers[(x - 1, y)]
                router.connect_output("west", west.input_link("east"))
            if y + 1 < self.height:
                south = self.routers[(x, y + 1)]
                router.connect_output("south", south.input_link("north"))
            if y - 1 >= 0:
                north = self.routers[(x, y - 1)]
                router.connect_output("north", north.input_link("south"))

    # ------------------------------------------------------------------
    def router_at(self, coords: Tuple[int, int]) -> Router:
        if coords not in self.routers:
            raise SimulationError(f"no router at {coords} in a {self.width}x{self.height} mesh")
        return self.routers[coords]

    def attach_local_sink(self, coords: Tuple[int, int], link: Link) -> None:
        """Connect the local output port of a router (packets leaving the NoC)."""
        self.router_at(coords).connect_output("local", link)

    def injection_link(self, coords: Tuple[int, int]) -> Link:
        """The link a source network interface injects packets into."""
        return self.router_at(coords).input_link("local")

    # ------------------------------------------------------------------
    @property
    def total_packets_routed(self) -> int:
        return sum(router.packets_routed for router in self.routers.values())

    @property
    def total_flits_routed(self) -> int:
        return sum(router.flits_routed for router in self.routers.values())
