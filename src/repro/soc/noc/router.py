"""NoC routers.

Section IV-C: *"For the NoC itself, where a lot of arbitration has to be
done, we decided to model the routers using only non-decoupled SC_METHODs;
thus NoC routers continue to use regular FIFOs."*

:class:`Router` follows that modelling style: one method process per
router, regular (packet-granularity) FIFOs on every input port, fixed
priority arbitration, XY routing and a per-output ``busy_until`` date that
models the link occupation (one packet of ``n`` flits keeps the link busy
``n`` router cycles).  The method re-arms itself with a *kick* event when
it has to wait for a link to free up; it never suspends, so routers cost no
context switch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ...fifo.regular_fifo import RegularFifo
from ...kernel.errors import SimulationError
from ...kernel.module import Module
from ...kernel.simtime import SimTime, ZERO_TIME, ns
from ...kernel.simulator import Simulator
from .packet import Packet

#: Port identifiers, in fixed arbitration priority order.
PORTS = ("local", "north", "south", "east", "west")


class Link:
    """Downstream side of an output port: a packet FIFO plus its drain event."""

    def __init__(self, fifo: RegularFifo):
        self.fifo = fifo

    def can_accept(self) -> bool:
        return not self.fifo.is_full()

    def accept(self, packet: Packet) -> None:
        if not self.fifo.nb_write(packet):  # pragma: no cover - guarded
            raise SimulationError("link accepted a packet while full")

    @property
    def drained_event(self):
        return self.fifo.not_full_event


class Router(Module):
    """One mesh router modelled with a single non-decoupled method process."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        coords: Tuple[int, int],
        queue_depth: int = 4,
        cycle_time: SimTime = ns(2),
    ):
        super().__init__(parent, name)
        self.coords = coords
        self.cycle_time = cycle_time
        #: Input queue per port (filled by neighbours or the local NI).
        self.inputs: Dict[str, RegularFifo] = {
            port: RegularFifo(self, f"in_{port}", depth=queue_depth) for port in PORTS
        }
        #: Downstream link per output port, wired by the topology builder.
        self.outputs: Dict[str, Optional[Link]] = {port: None for port in PORTS}
        self._busy_until_fs: Dict[str, int] = {port: 0 for port in PORTS}
        self._kick = self.create_event("kick")
        self.packets_routed = 0
        self.flits_routed = 0
        self._process = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect_output(self, port: str, link: Link) -> None:
        if port not in self.outputs:
            raise SimulationError(f"router {self.full_name}: unknown port {port!r}")
        self.outputs[port] = link

    def input_link(self, port: str) -> Link:
        """Expose one of our input queues as a link for an upstream device."""
        return Link(self.inputs[port])

    def end_of_elaboration(self) -> None:
        """Create the routing method once all links are known."""
        sensitivity = [self._kick]
        sensitivity.extend(fifo.not_empty_event for fifo in self.inputs.values())
        for link in self.outputs.values():
            if link is not None:
                sensitivity.append(link.drained_event)
        self._process = self.create_method(
            self._route, name="route", sensitivity=sensitivity
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def output_port_for(self, dest: Tuple[int, int]) -> str:
        """Deterministic XY routing: move along X first, then Y."""
        x, y = self.coords
        dx, dy = dest
        if dx > x:
            return "east"
        if dx < x:
            return "west"
        if dy > y:
            return "south"
        if dy < y:
            return "north"
        return "local"

    def _hop_delay_fs(self, packet: Packet) -> int:
        return self.cycle_time.femtoseconds * packet.flit_count

    def _route(self) -> None:
        now_fs = self.sim.now_fs
        next_kick_fs: Optional[int] = None
        for port in PORTS:
            fifo = self.inputs[port]
            while not fifo.is_empty():
                packet = fifo.peek()
                out_port = self.output_port_for(packet.dest)
                link = self.outputs[out_port]
                if link is None:
                    raise SimulationError(
                        f"router {self.full_name}: no link on port {out_port!r} "
                        f"for destination {packet.dest}"
                    )
                busy_until = self._busy_until_fs[out_port]
                if busy_until > now_fs:
                    if next_kick_fs is None or busy_until < next_kick_fs:
                        next_kick_fs = busy_until
                    break
                if not link.can_accept():
                    # The method is statically sensitive to the downstream
                    # drain event, so it re-runs when room appears.
                    break
                fifo.nb_read()
                link.accept(packet)
                self.packets_routed += 1
                self.flits_routed += packet.flit_count
                self._busy_until_fs[out_port] = now_fs + self._hop_delay_fs(packet)
        if next_kick_fs is not None:
            self._kick.notify_fs(next_kick_fs - now_fs)


ZERO_TIME  # re-exported convenience
