"""NoC packets.

The stream NoC of the case-study SoC moves fixed-size packets: a header
flit carrying the destination plus ``packet_size`` payload words produced
by the source network interface.  Packets are plain value objects; routers
never look at the payload, only at the destination coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Packet:
    """One NoC packet (header + payload words)."""

    #: Destination router coordinates (x, y).
    dest: Tuple[int, int]
    #: Identifier of the destination network interface local port.
    dest_ni: str
    #: Identifier of the producing stream (accelerator name).
    source: str
    #: Sequence number within the stream (for in-order checking).
    sequence: int
    #: Payload words.
    words: Tuple[int, ...]

    @property
    def flit_count(self) -> int:
        """Header flit plus one flit per payload word."""
        return 1 + len(self.words)

    def __len__(self) -> int:
        return len(self.words)
