"""Network interfaces.

Section IV-C: *"Accelerators and the NoC are connected through network
interfaces.  A network interface is in charge of packetizing data and
arbitration among the incoming streams.  Thanks to the possibility to use
inc() in a SC_METHOD, we succeeded to model this module without any
SC_THREAD.  This module is connected to the accelerators using one FIFO per
accelerator, and because accelerators are decoupled, we have to use a Smart
FIFO here, which had to be slightly extended to manage efficiently the
packetization."*

Two modules implement that description:

* :class:`SourceNetworkInterface` — accelerator(s) → NoC.  One
  :class:`~repro.fifo.packet_fifo.PacketSmartFifo` per incoming stream; a
  single method process arbitrates among the streams (fixed priority), pops
  complete packets with the packet-aware non-blocking interface, and
  injects them into the attached router, keeping a per-interface
  ``busy_until`` date for the injection link.
* :class:`DestNetworkInterface` — NoC → accelerator.  A method process
  de-packetizes arriving packets and delivers the words into the egress
  Smart FIFO; the per-word delivery rate is modelled with ``inc()`` inside
  the method, so the insertion dates seen by the (decoupled) consumer
  accelerator are exact without any thread.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ...fifo.packet_fifo import PacketSmartFifo
from ...fifo.regular_fifo import RegularFifo
from ...kernel.errors import SimulationError
from ...kernel.module import Module
from ...kernel.simtime import SimTime, ZERO_TIME, ns
from ...kernel.simulator import Simulator
from ...td.decoupling import DecoupledMixin
from ...td.local_time import get_local_time_manager
from .packet import Packet
from .router import Link


class SourceNetworkInterface(DecoupledMixin, Module):
    """Packetizes accelerator streams and injects them into the NoC."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        packet_size: int = 4,
        injection_cycle: SimTime = ns(2),
    ):
        super().__init__(parent, name)
        self.packet_size = packet_size
        self.injection_cycle = injection_cycle
        #: stream name -> (ingress fifo, destination coords, destination NI).
        self._streams: Dict[str, Tuple[PacketSmartFifo, Tuple[int, int], str]] = {}
        self._sequence: Dict[str, int] = {}
        self._router_link: Optional[Link] = None
        self._busy_until_fs = 0
        self._kick = self.create_event("kick")
        self.packets_injected = 0
        self._process = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_stream(
        self,
        name: str,
        ingress_fifo: PacketSmartFifo,
        dest: Tuple[int, int],
        dest_ni: str,
    ) -> None:
        """Register one incoming accelerator stream."""
        self._streams[name] = (ingress_fifo, dest, dest_ni)
        self._sequence[name] = 0

    def connect_router(self, link: Link) -> None:
        self._router_link = link

    def end_of_elaboration(self) -> None:
        sensitivity = [self._kick]
        for fifo, _dest, _ni in self._streams.values():
            sensitivity.append(fifo.not_empty_event)
        if self._router_link is not None:
            sensitivity.append(self._router_link.drained_event)
        self._process = self.create_method(
            self._packetize, name="packetize", sensitivity=sensitivity
        )

    # ------------------------------------------------------------------
    # Behaviour (one SC_METHOD, no thread)
    # ------------------------------------------------------------------
    def _injection_delay_fs(self) -> int:
        return self.injection_cycle.femtoseconds * (self.packet_size + 1)

    def _packetize(self) -> None:
        now_fs = self.sim.now_fs
        if self._router_link is None:
            return
        # Fixed-priority arbitration among the incoming streams.
        for name, (fifo, dest, dest_ni) in self._streams.items():
            while fifo.packet_available():
                if self._busy_until_fs > now_fs:
                    self._kick.notify_fs(self._busy_until_fs - now_fs)
                    return
                if not self._router_link.can_accept():
                    # Re-triggered by the router drain event.
                    return
                words = tuple(fifo.nb_read_packet())
                packet = Packet(
                    dest=dest,
                    dest_ni=dest_ni,
                    source=name,
                    sequence=self._sequence[name],
                    words=words,
                )
                self._sequence[name] += 1
                self._router_link.accept(packet)
                self.packets_injected += 1
                self._busy_until_fs = now_fs + self._injection_delay_fs()


class DestNetworkInterface(DecoupledMixin, Module):
    """De-packetizes NoC traffic towards (decoupled) consumer accelerators.

    One interface can serve several egress streams (several consumers behind
    the same router): packets carry the identifier of their egress stream
    (``Packet.dest_ni``) and are demultiplexed onto the matching Smart FIFO.
    """

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        arrival_queue_depth: int = 8,
        word_delivery_time: SimTime = ns(2),
    ):
        super().__init__(parent, name)
        #: Packets delivered by the local port of the attached router.
        self.arrival_fifo = RegularFifo(self, "arrivals", depth=arrival_queue_depth)
        self.word_delivery_time = word_delivery_time
        # Hot-path caches for the per-word delivery annotation.
        self._delivery_fs = word_delivery_time.femtoseconds
        self._ltm = get_local_time_manager(self.sim)
        self._scheduler = self.sim.scheduler
        self._egress: Dict[str, PacketSmartFifo] = {}
        #: Words whose delivery was refused (egress externally full), kept
        #: with their stream identifier until the egress drains.
        self._pending_words: Deque[Tuple[str, int]] = deque()
        self._kick = self.create_event("kick")
        self.packets_received = 0
        self.words_delivered = 0
        self.sequences: Dict[str, List[int]] = {}
        self._process = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect_egress(self, stream: str, fifo: PacketSmartFifo) -> None:
        """Register the Smart FIFO serving egress ``stream``."""
        self._egress[stream] = fifo

    def arrival_link(self) -> Link:
        """The link a router's local output port should be connected to."""
        return Link(self.arrival_fifo)

    def end_of_elaboration(self) -> None:
        sensitivity = [self._kick, self.arrival_fifo.not_empty_event]
        for fifo in self._egress.values():
            sensitivity.append(fifo.not_full_event)
        self._process = self.create_method(
            self._deliver, name="deliver", sensitivity=sensitivity
        )

    # ------------------------------------------------------------------
    # Behaviour (one SC_METHOD using inc() for the delivery rate)
    # ------------------------------------------------------------------
    def _egress_for(self, stream: str) -> PacketSmartFifo:
        try:
            return self._egress[stream]
        except KeyError:
            raise SimulationError(
                f"network interface {self.full_name}: no egress registered "
                f"for stream {stream!r}"
            ) from None

    def _deliver(self) -> None:
        ltm = self._ltm
        process = self._scheduler.current_process
        delivery_fs = self._delivery_fs
        # First flush words left over from a previous activation.
        while self._pending_words:
            stream, word = self._pending_words[0]
            if not self._egress_for(stream).nb_write(word):
                return  # re-triggered by the egress not_full event
            self._pending_words.popleft()
            self.words_delivered += 1
            ltm.advance_fs(process, delivery_fs)
        # Then unpack newly arrived packets.
        while not self.arrival_fifo.is_empty():
            packet: Packet = self.arrival_fifo.nb_read()
            self.packets_received += 1
            self.sequences.setdefault(packet.source, []).append(packet.sequence)
            egress = self._egress_for(packet.dest_ni)
            for index, word in enumerate(packet.words):
                if not egress.nb_write(word):
                    self._pending_words.extend(
                        (packet.dest_ni, late) for late in packet.words[index:]
                    )
                    return
                self.words_delivered += 1
                ltm.advance_fs(process, delivery_fs)


ZERO_TIME  # convenience re-export
