"""Stream-based network-on-chip of the case-study SoC.

Routers are non-decoupled ``SC_METHOD`` models with regular FIFOs; network
interfaces bridge the decoupled accelerator world (Smart FIFOs) and the
NoC world (packets at kernel dates), as described in Section IV-C.
"""

from .network_interface import DestNetworkInterface, SourceNetworkInterface
from .packet import Packet
from .router import Link, PORTS, Router
from .topology import Mesh

__all__ = [
    "DestNetworkInterface",
    "Link",
    "Mesh",
    "PORTS",
    "Packet",
    "Router",
    "SourceNetworkInterface",
]
