"""Hardware-side FIFO monitoring.

The monitor interface of the Smart FIFO exists because the embedded
software "must be able to monitor the accelerators and their FIFO; knowing
the FIFO filling levels can be used for debug and dynamic performance
tuning" (Section III).  Besides the software path (register reads issued by
the control core), it is convenient to have a hardware-style probe for
tests, examples and the validation methodology: :class:`FifoLevelProbe`
samples ``get_size`` on a list of FIFOs at a fixed (low) rate and keeps the
history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..kernel.module import Module
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from ..td.decoupling import DecoupledMixin


@dataclass(frozen=True)
class LevelSample:
    """One sample of one FIFO's real filling level."""

    date: SimTime
    fifo: str
    level: int


class FifoLevelProbe(DecoupledMixin, Module):
    """Periodically samples the monitor interface of several FIFOs."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        fifos: Sequence,
        period: SimTime = ns(500),
        samples: int = 10,
        start_offset: SimTime = ns(1),
    ):
        super().__init__(parent, name)
        self.fifos = list(fifos)
        self.period = period
        self.sample_count = samples
        self.start_offset = start_offset
        self.samples: List[LevelSample] = []
        self.create_thread(self.run)

    def run(self):
        yield self.wait(self.start_offset.to(TimeUnit.NS))
        for _ in range(self.sample_count):
            for fifo in self.fifos:
                level = yield from fifo.get_size()
                # Stamp the *local* date of the sampling process, not the
                # global date: the validation methodology compares locally
                # timestamped observations between the reference and the
                # decoupled run (cf. the 500 ps offset convention in
                # workloads/random_traffic.py), and the two only agree when
                # the sample carries the date at which the probe really
                # observed the level.
                self.samples.append(
                    LevelSample(
                        self.local_time_stamp(),
                        getattr(fifo, "full_name", str(fifo)),
                        level,
                    )
                )
            yield self.wait(self.period.to(TimeUnit.NS))

    # ------------------------------------------------------------------
    def history_for(self, fifo_name: str) -> List[Tuple[SimTime, int]]:
        return [
            (sample.date, sample.level)
            for sample in self.samples
            if sample.fifo == fifo_name
        ]

    def max_levels(self) -> Dict[str, int]:
        """Peak observed level per FIFO (useful for sizing studies)."""
        peaks: Dict[str, int] = {}
        for sample in self.samples:
            peaks[sample.fifo] = max(peaks.get(sample.fifo, 0), sample.level)
        return peaks

    def to_vcd(self, stream) -> None:
        """Dump the sampled filling levels as a VCD waveform.

        This is the debug/performance-tuning usage the paper motivates the
        monitor interface with: the waveform can be opened in any VCD viewer
        to inspect how the FIFO levels evolve and to size the hardware FIFOs.
        """
        from ..kernel.tracing import VcdWriter

        writer = VcdWriter(stream, top=self.full_name.replace(".", "_"))
        names = []
        for fifo in self.fifos:
            name = getattr(fifo, "full_name", str(fifo)).replace(".", "_")
            names.append((getattr(fifo, "full_name", str(fifo)), name))
            writer.add_variable(name)
        writer.write_header()
        for sample in sorted(self.samples, key=lambda s: s.date.femtoseconds):
            for original, vcd_name in names:
                if sample.fifo == original:
                    writer.change(sample.date.femtoseconds, vcd_name, sample.level)
