"""The heterogeneous many-core case-study platform (Section IV-C).

The platform reproduces the *structure* of the industrial SoC described in
the paper:

* a **control core** running embedded software: it configures and starts
  the accelerators over a memory-mapped bus, monitors their FIFO filling
  levels, and waits for their completion interrupts (all of this traffic is
  temporally decoupled with the standard quantum-keeper method);
* several **accelerator chains**: a producer accelerator, a configurable
  number of worker accelerators and a consumer accelerator, each modelled
  by a temporally decoupled thread;
* a **stream NoC**: a mesh of non-decoupled ``SC_METHOD`` routers with
  regular FIFOs, fed through source/destination network interfaces that
  packetize the streams;
* **FIFOs** between decoupled accelerators and towards the network
  interfaces, built either as Smart FIFOs (:attr:`FifoPolicy.SMART`) or as
  FIFOs that synchronize the caller at every access
  (:attr:`FifoPolicy.SYNC_PER_ACCESS`) — the two flavours compared by the
  paper's case-study benchmark.  Both flavours produce exactly the same
  timing; only the number of context switches (and hence the wall-clock
  simulation speed) differs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fifo.packet_fifo import PacketSmartFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.errors import SimulationError
from ..kernel.simtime import SimTime, ns, us
from ..kernel.simulator import Simulator
from ..tlm.bus import Bus
from ..tlm.memory import Memory
from ..workloads.base import TimingMode
from .accelerator import (
    AcceleratorBase,
    ConsumerAccelerator,
    ProducerAccelerator,
    WorkerAccelerator,
)
from .core import ControlCore
from .firmware import FirmwareBuilder
from .noc import DestNetworkInterface, Mesh, SourceNetworkInterface

#: Register offsets shared by every accelerator register bank.
REGISTER_OFFSETS = {
    "CTRL": 0x00,
    "ITEMS": 0x04,
    "STATUS": 0x08,
    "IN_LEVEL": 0x0C,
    "OUT_LEVEL": 0x10,
    "PROCESSED": 0x14,
}

ACCEL_REG_BASE = 0x1000_0000
ACCEL_REG_STRIDE = 0x1000
MEMORY_BASE = 0x2000_0000
MEMORY_SIZE = 64 * 1024


class FifoPolicy(enum.Enum):
    """How accelerator-facing FIFOs handle temporal decoupling."""

    #: The paper's contribution: Smart FIFOs, almost no context switch.
    SMART = "smart"
    #: The reference: synchronize the caller at every access (same timing,
    #: one context switch per access).
    SYNC_PER_ACCESS = "sync"


@dataclass
class SocConfig:
    """Size and timing parameters of the synthetic platform."""

    n_chains: int = 2
    workers_per_chain: int = 2
    items_per_chain: int = 64
    packet_size: int = 4
    fifo_depth: int = 8
    mesh_width: int = 2
    mesh_height: int = 2
    producer_word_time: SimTime = field(default_factory=lambda: ns(8))
    worker_word_time: SimTime = field(default_factory=lambda: ns(10))
    consumer_word_time: SimTime = field(default_factory=lambda: ns(12))
    noc_cycle_time: SimTime = field(default_factory=lambda: ns(2))
    #: Number of FIFO-level monitoring rounds performed by the software.
    monitor_repetitions: int = 4
    monitor_period_ns: int = 2000
    #: Global quantum used by the control core for its memory-mapped traffic.
    core_quantum: SimTime = field(default_factory=lambda: us(1))

    def validate(self) -> None:
        if self.items_per_chain % self.packet_size != 0:
            raise SimulationError(
                "items_per_chain must be a multiple of packet_size "
                f"({self.items_per_chain} % {self.packet_size} != 0)"
            )
        if self.packet_size > self.fifo_depth:
            raise SimulationError("packet_size cannot exceed fifo_depth")
        if self.n_chains <= 0:
            raise SimulationError("n_chains must be positive")

    @classmethod
    def small(cls) -> "SocConfig":
        """A configuration small enough for unit tests."""
        return cls(n_chains=1, workers_per_chain=1, items_per_chain=16,
                   monitor_repetitions=2, monitor_period_ns=500)

    @classmethod
    def benchmark(cls, n_chains: int = 4, items_per_chain: int = 512) -> "SocConfig":
        """The configuration used by the case-study benchmark (EXP-CASE)."""
        return cls(
            n_chains=n_chains,
            workers_per_chain=3,
            items_per_chain=items_per_chain,
            mesh_width=2,
            mesh_height=max(2, (n_chains + 1) // 2),
            monitor_repetitions=8,
        )


@dataclass
class Chain:
    """The modules of one accelerator chain."""

    index: int
    producer: ProducerAccelerator
    workers: List[WorkerAccelerator]
    consumer: ConsumerAccelerator
    fifos: List[SmartFifo]
    ingress: PacketSmartFifo
    egress: PacketSmartFifo

    @property
    def accelerators(self) -> List[AcceleratorBase]:
        return [self.producer, *self.workers, self.consumer]


class SocPlatform:
    """Builds and runs one instance of the case-study SoC."""

    def __init__(
        self,
        sim: Simulator,
        policy: FifoPolicy = FifoPolicy.SMART,
        config: Optional[SocConfig] = None,
    ):
        self.sim = sim
        self.policy = policy
        self.config = config or SocConfig()
        self.config.validate()
        self._sync_on_access = policy is FifoPolicy.SYNC_PER_ACCESS

        self.mesh = Mesh(
            sim,
            "noc",
            width=self.config.mesh_width,
            height=self.config.mesh_height,
            cycle_time=self.config.noc_cycle_time,
        )
        self.bus = Bus(sim, "bus")
        self.memory = Memory(sim, "memory", MEMORY_SIZE)
        self.bus.map_target(self.memory.socket, MEMORY_BASE, MEMORY_SIZE, "memory")

        self.chains: List[Chain] = []
        self._source_nis: Dict[Tuple[int, int], SourceNetworkInterface] = {}
        self._dest_nis: Dict[Tuple[int, int], DestNetworkInterface] = {}
        self._accelerators: Dict[str, AcceleratorBase] = {}
        for index in range(self.config.n_chains):
            self.chains.append(self._build_chain(index))

        self.core = self._build_core()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_fifo(self, name: str) -> SmartFifo:
        return SmartFifo(
            self.sim,
            name,
            depth=self.config.fifo_depth,
            sync_on_access=self._sync_on_access,
        )

    def _make_packet_fifo(self, name: str) -> PacketSmartFifo:
        return PacketSmartFifo(
            self.sim,
            name,
            depth=self.config.fifo_depth,
            packet_size=self.config.packet_size,
            sync_on_access=self._sync_on_access,
        )

    def _source_ni_at(self, coords: Tuple[int, int]) -> SourceNetworkInterface:
        if coords not in self._source_nis:
            ni = SourceNetworkInterface(
                self.sim,
                f"src_ni_{coords[0]}_{coords[1]}",
                packet_size=self.config.packet_size,
                injection_cycle=self.config.noc_cycle_time,
            )
            ni.connect_router(self.mesh.injection_link(coords))
            self._source_nis[coords] = ni
        return self._source_nis[coords]

    def _dest_ni_at(self, coords: Tuple[int, int]) -> DestNetworkInterface:
        if coords not in self._dest_nis:
            ni = DestNetworkInterface(
                self.sim,
                f"dst_ni_{coords[0]}_{coords[1]}",
                word_delivery_time=self.config.noc_cycle_time,
            )
            self.mesh.attach_local_sink(coords, ni.arrival_link())
            self._dest_nis[coords] = ni
        return self._dest_nis[coords]

    def _register_accelerator(self, accel: AcceleratorBase) -> None:
        index = len(self._accelerators)
        base = ACCEL_REG_BASE + index * ACCEL_REG_STRIDE
        self.bus.map_target(accel.registers.socket, base, ACCEL_REG_STRIDE, accel.name)
        self._accelerators[accel.name] = accel

    def _build_chain(self, index: int) -> Chain:
        cfg = self.config
        row = index % cfg.mesh_height
        src_coords = (0, row)
        dst_coords = (cfg.mesh_width - 1, row)

        producer = ProducerAccelerator(
            self.sim,
            f"chain{index}_producer",
            word_time=cfg.producer_word_time,
            timing=TimingMode.DECOUPLED,
            seed=index * 1000,
        )
        workers = [
            WorkerAccelerator(
                self.sim,
                f"chain{index}_worker{w}",
                word_time=cfg.worker_word_time,
                timing=TimingMode.DECOUPLED,
            )
            for w in range(cfg.workers_per_chain)
        ]
        consumer = ConsumerAccelerator(
            self.sim,
            f"chain{index}_consumer",
            word_time=cfg.consumer_word_time,
            timing=TimingMode.DECOUPLED,
        )

        # Direct (hardwired) FIFOs along the chain.
        fifos: List[SmartFifo] = []
        stages = [producer, *workers]
        for position in range(len(stages) - 1):
            fifo = self._make_fifo(f"chain{index}_fifo{position}")
            fifos.append(fifo)
            stages[position].out_port.bind(fifo)
            stages[position + 1].in_port.bind(fifo)

        # Last stage -> source NI ingress (packetized Smart FIFO).
        ingress = self._make_packet_fifo(f"chain{index}_ingress")
        stages[-1].out_port.bind(ingress)
        stream_id = f"chain{index}"
        source_ni = self._source_ni_at(src_coords)
        source_ni.add_stream(stream_id, ingress, dst_coords, stream_id)

        # Destination NI egress -> consumer.
        egress = self._make_packet_fifo(f"chain{index}_egress")
        dest_ni = self._dest_ni_at(dst_coords)
        dest_ni.connect_egress(stream_id, egress)
        consumer.in_port.bind(egress)

        chain = Chain(index, producer, workers, consumer, fifos, ingress, egress)
        for accel in chain.accelerators:
            self._register_accelerator(accel)
        return chain

    def _build_core(self) -> ControlCore:
        firmware = self._build_firmware()
        core = ControlCore(
            self.sim,
            "core",
            firmware=firmware,
            quantum=self.config.core_quantum,
        )
        core.socket.bind(self.bus)
        core.set_register_offsets(REGISTER_OFFSETS)
        core.memory_base = MEMORY_BASE
        for name in self._accelerators:
            index = list(self._accelerators).index(name)
            core.map_peripheral(name, ACCEL_REG_BASE + index * ACCEL_REG_STRIDE)
        for chain in self.chains:
            core.map_irq(chain.consumer.name, chain.consumer.irq)
        return core

    def _build_firmware(self):
        cfg = self.config
        builder = FirmwareBuilder("case_study_job")
        # Configure item counts (consumers and workers before producers).
        for chain in self.chains:
            for accel in chain.accelerators:
                builder.write_reg(accel.name, "ITEMS", cfg.items_per_chain)
        # Start the pipelines back to front so nobody loses data.
        for chain in self.chains:
            for accel in (chain.consumer, *reversed(chain.workers), chain.producer):
                builder.write_reg(accel.name, "CTRL", 1)
        # Monitor the FIFO filling levels a few times (low-rate accesses).
        monitored = tuple(
            chain.workers[0].name if chain.workers else chain.producer.name
            for chain in self.chains
        )
        if cfg.monitor_repetitions:
            builder.monitor_fifos(
                monitored,
                repetitions=cfg.monitor_repetitions,
                period_ns=cfg.monitor_period_ns,
            )
        # Wait for every consumer to finish, then collect results.
        for chain in self.chains:
            builder.wait_irq(chain.consumer.name)
        for chain in self.chains:
            builder.read_reg(
                chain.consumer.name, "PROCESSED", f"{chain.consumer.name}_processed"
            )
            builder.store_word(chain.index * 4, chain.index)
        builder.barrier()
        return builder.build()

    # ------------------------------------------------------------------
    # Execution and checks
    # ------------------------------------------------------------------
    def run(self) -> None:
        self.sim.run()

    @property
    def accelerators(self) -> Dict[str, AcceleratorBase]:
        return dict(self._accelerators)

    def consumer_finish_times(self) -> Dict[str, SimTime]:
        return {
            chain.consumer.name: chain.consumer.finish_time for chain in self.chains
        }

    def expected_checksum(self, chain: Chain) -> int:
        items = self.config.items_per_chain
        seed = chain.index * 1000
        transform_total = len(chain.workers)
        total = 0
        for i in range(items):
            total = (total + seed + i + transform_total) & 0xFFFFFFFF
        return total

    def verify(self) -> None:
        """Check that every chain completed and data arrived intact."""
        for chain in self.chains:
            consumer = chain.consumer
            if consumer.items_processed != self.config.items_per_chain:
                raise SimulationError(
                    f"{consumer.name} consumed {consumer.items_processed} items, "
                    f"expected {self.config.items_per_chain}"
                )
            if consumer.checksum != self.expected_checksum(chain):
                raise SimulationError(f"{consumer.name} checksum mismatch")
            expected_var = f"{consumer.name}_processed"
            if self.core.variables.get(expected_var) != self.config.items_per_chain:
                raise SimulationError(
                    f"core read back {self.core.variables.get(expected_var)} for "
                    f"{expected_var}, expected {self.config.items_per_chain}"
                )

    def fifo_blocking_waits(self) -> int:
        """Total number of blocking suspensions caused by accelerator FIFOs."""
        total = 0
        for chain in self.chains:
            for fifo in (*chain.fifos, chain.ingress, chain.egress):
                total += fifo.blocking_waits
        return total
