"""Firmware programs for the control core.

The case-study SoC (Section IV-C) is driven by embedded software running on
a control core: it configures the hardware accelerators through their
memory-mapped registers, starts them, monitors their FIFO filling levels
("for debug and dynamic performance tuning", Section III) and waits for
completion interrupts.

Modelling a full instruction-set simulator is unnecessary for the paper's
experiment; what matters is the *traffic pattern* the software generates on
the interconnect and towards the monitor interfaces.  :class:`Firmware`
therefore describes the software as a small program of high-level
operations that the :class:`~repro.soc.core.ControlCore` interprets with
loosely-timed TLM transactions and quantum-keeper decoupling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class OpCode(enum.Enum):
    """Operations the control core can execute."""

    WRITE_REG = "write_reg"
    READ_REG = "read_reg"
    POLL_REG = "poll_reg"
    DELAY = "delay"
    WAIT_IRQ = "wait_irq"
    MONITOR_FIFOS = "monitor_fifos"
    STORE_WORD = "store_word"
    LOAD_WORD = "load_word"
    BARRIER = "barrier"


@dataclass
class Instruction:
    """One firmware operation with its operands."""

    opcode: OpCode
    #: Target peripheral name (accelerator or memory region), when relevant.
    target: Optional[str] = None
    #: Register name / memory offset, when relevant.
    register: Optional[str] = None
    value: int = 0
    #: Extra operands (mask, expected value, period, repetitions...).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Name under which a read result is stored in the core's variable file.
    destination: Optional[str] = None


@dataclass
class Firmware:
    """An ordered list of instructions plus expectations used by tests."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "Firmware":
        self.instructions.append(instruction)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


class FirmwareBuilder:
    """Fluent builder producing :class:`Firmware` programs."""

    def __init__(self, name: str = "firmware"):
        self._firmware = Firmware(name)

    def build(self) -> Firmware:
        return self._firmware

    # ------------------------------------------------------------------
    def write_reg(self, target: str, register: str, value: int) -> "FirmwareBuilder":
        self._firmware.append(
            Instruction(OpCode.WRITE_REG, target=target, register=register, value=value)
        )
        return self

    def read_reg(self, target: str, register: str, destination: str) -> "FirmwareBuilder":
        self._firmware.append(
            Instruction(
                OpCode.READ_REG, target=target, register=register, destination=destination
            )
        )
        return self

    def poll_reg(
        self,
        target: str,
        register: str,
        mask: int,
        expected: int,
        period_ns: int = 200,
        max_polls: int = 100000,
    ) -> "FirmwareBuilder":
        self._firmware.append(
            Instruction(
                OpCode.POLL_REG,
                target=target,
                register=register,
                params={
                    "mask": mask,
                    "expected": expected,
                    "period_ns": period_ns,
                    "max_polls": max_polls,
                },
            )
        )
        return self

    def delay(self, duration_ns: int) -> "FirmwareBuilder":
        self._firmware.append(Instruction(OpCode.DELAY, value=duration_ns))
        return self

    def wait_irq(self, target: str) -> "FirmwareBuilder":
        self._firmware.append(Instruction(OpCode.WAIT_IRQ, target=target))
        return self

    def monitor_fifos(
        self, targets: Tuple[str, ...], repetitions: int = 1, period_ns: int = 500
    ) -> "FirmwareBuilder":
        """Read the FIFO level registers of ``targets`` ``repetitions`` times."""
        self._firmware.append(
            Instruction(
                OpCode.MONITOR_FIFOS,
                params={
                    "targets": tuple(targets),
                    "repetitions": repetitions,
                    "period_ns": period_ns,
                },
            )
        )
        return self

    def store_word(self, address: int, value: int) -> "FirmwareBuilder":
        self._firmware.append(Instruction(OpCode.STORE_WORD, value=value, params={"address": address}))
        return self

    def load_word(self, address: int, destination: str) -> "FirmwareBuilder":
        self._firmware.append(
            Instruction(OpCode.LOAD_WORD, destination=destination, params={"address": address})
        )
        return self

    def barrier(self) -> "FirmwareBuilder":
        """Synchronize the core (flush its local-time offset)."""
        self._firmware.append(Instruction(OpCode.BARRIER))
        return self
