"""Case-study heterogeneous many-core SoC (Section IV-C).

Assembles temporally decoupled hardware accelerators, a stream NoC modelled
with non-decoupled method processes, packetizing network interfaces, a
memory-mapped bus and a control core running firmware, in the two FIFO
policies the paper compares (Smart FIFO vs. sync-per-access FIFO).
"""

from .accelerator import (
    AcceleratorBase,
    ConsumerAccelerator,
    ProducerAccelerator,
    STATUS_BUSY,
    STATUS_DONE,
    STATUS_IDLE,
    WorkerAccelerator,
)
from .core import ControlCore
from .firmware import Firmware, FirmwareBuilder, Instruction, OpCode
from .monitor import FifoLevelProbe, LevelSample
from .noc import DestNetworkInterface, Mesh, Packet, Router, SourceNetworkInterface
from .platform import (
    ACCEL_REG_BASE,
    Chain,
    FifoPolicy,
    MEMORY_BASE,
    REGISTER_OFFSETS,
    SocConfig,
    SocPlatform,
)

__all__ = [
    "ACCEL_REG_BASE",
    "AcceleratorBase",
    "Chain",
    "ConsumerAccelerator",
    "ControlCore",
    "DestNetworkInterface",
    "Firmware",
    "FirmwareBuilder",
    "FifoLevelProbe",
    "FifoPolicy",
    "Instruction",
    "LevelSample",
    "MEMORY_BASE",
    "Mesh",
    "OpCode",
    "Packet",
    "ProducerAccelerator",
    "REGISTER_OFFSETS",
    "Router",
    "STATUS_BUSY",
    "STATUS_DONE",
    "STATUS_IDLE",
    "SocConfig",
    "SocPlatform",
    "SourceNetworkInterface",
    "WorkerAccelerator",
]
