"""The control core.

A loosely-timed model of the embedded processor that runs the control
software of the case-study SoC.  It interprets a
:class:`~repro.soc.firmware.Firmware` program: every instruction generates
memory-mapped transactions (through the TLM bus) towards accelerator
register banks or the shared memory, accumulates timing annotations with a
:class:`~repro.td.quantum.QuantumKeeper`, and synchronizes when the
quantum is exhausted or when an explicit synchronization point is reached
(interrupt waits, barriers).

The memory-mapped part of the platform is temporally decoupled "using
existing methods" (Section IV-C); the core is therefore a standard
quantum-keeper initiator and is identical in the two FIFO policies the
benchmark compares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..kernel.errors import SimulationError
from ..kernel.module import Module
from ..kernel.signal import Signal
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from ..td.decoupling import DecoupledMixin
from ..td.quantum import QuantumKeeper
from ..tlm.payload import GenericPayload
from ..tlm.sockets import InitiatorSocket
from .firmware import Firmware, Instruction, OpCode


class ControlCore(DecoupledMixin, Module):
    """Firmware interpreter with a quantum-keeper LT initiator socket."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        firmware: Optional[Firmware] = None,
        instruction_time: SimTime = ns(5),
        quantum: Optional[SimTime] = None,
    ):
        super().__init__(parent, name)
        self.socket = InitiatorSocket(self, "socket")
        self.firmware = firmware
        #: Base cost of decoding/executing one firmware instruction.
        self.instruction_time = instruction_time
        self.quantum_keeper = QuantumKeeper(self, quantum)
        #: name -> base address of the peripheral's register window.
        self.address_map: Dict[str, int] = {}
        #: register name -> offset, shared by every accelerator register bank.
        self.register_offsets: Dict[str, int] = {}
        #: name -> interrupt signal to wait on.
        self.irq_map: Dict[str, Signal] = {}
        #: Base address of the shared memory window.
        self.memory_base = 0

        #: Results visible to the tests: variable file and monitor samples.
        self.variables: Dict[str, int] = {}
        self.monitor_samples: List[Tuple[str, SimTime, int, int]] = []
        self.instructions_executed = 0
        self.transactions_issued = 0
        self.finish_time: Optional[SimTime] = None

        self.create_thread(self.run)

    # ------------------------------------------------------------------
    # Platform wiring helpers
    # ------------------------------------------------------------------
    def map_peripheral(self, name: str, base_address: int) -> None:
        self.address_map[name] = base_address

    def map_irq(self, name: str, signal: Signal) -> None:
        self.irq_map[name] = signal

    def set_register_offsets(self, offsets: Dict[str, int]) -> None:
        self.register_offsets = dict(offsets)

    # ------------------------------------------------------------------
    # Bus access primitives
    # ------------------------------------------------------------------
    def _transport(self, payload: GenericPayload):
        """Issue one transaction, fold the returned delay into the local time."""
        delay = self.socket.b_transport(payload, SimTime(0))
        payload.check_ok()
        self.transactions_issued += 1
        self.quantum_keeper.inc(delay, TimeUnit.FS)
        yield from self.quantum_keeper.sync_if_needed()

    def _reg_address(self, target: str, register: str) -> int:
        if target not in self.address_map:
            raise SimulationError(f"core {self.full_name}: unmapped peripheral {target!r}")
        if register not in self.register_offsets:
            raise SimulationError(f"core {self.full_name}: unknown register {register!r}")
        return self.address_map[target] + self.register_offsets[register]

    def write_reg(self, target: str, register: str, value: int):
        payload = GenericPayload.make_word_write(self._reg_address(target, register), value)
        yield from self._transport(payload)

    def read_reg(self, target: str, register: str):
        payload = GenericPayload.make_word_read(self._reg_address(target, register))
        yield from self._transport(payload)
        return payload.word_value()

    def store_word(self, address: int, value: int):
        payload = GenericPayload.make_word_write(self.memory_base + address, value)
        yield from self._transport(payload)

    def load_word(self, address: int):
        payload = GenericPayload.make_word_read(self.memory_base + address)
        yield from self._transport(payload)
        return payload.word_value()

    # ------------------------------------------------------------------
    # Firmware interpretation
    # ------------------------------------------------------------------
    def run(self):
        if self.firmware is None:
            return
            yield  # pragma: no cover
        for instruction in self.firmware:
            self.quantum_keeper.inc(self.instruction_time)
            yield from self.quantum_keeper.sync_if_needed()
            yield from self._execute(instruction)
            self.instructions_executed += 1
        yield from self.sync()
        self.finish_time = self.now

    def _execute(self, instruction: Instruction):
        opcode = instruction.opcode
        if opcode is OpCode.WRITE_REG:
            yield from self.write_reg(instruction.target, instruction.register, instruction.value)
        elif opcode is OpCode.READ_REG:
            value = yield from self.read_reg(instruction.target, instruction.register)
            if instruction.destination:
                self.variables[instruction.destination] = value
        elif opcode is OpCode.POLL_REG:
            yield from self._poll(instruction)
        elif opcode is OpCode.DELAY:
            self.quantum_keeper.inc(instruction.value)
            yield from self.quantum_keeper.sync_if_needed()
        elif opcode is OpCode.WAIT_IRQ:
            yield from self._wait_irq(instruction.target)
        elif opcode is OpCode.MONITOR_FIFOS:
            yield from self._monitor_fifos(instruction)
        elif opcode is OpCode.STORE_WORD:
            yield from self.store_word(instruction.params["address"], instruction.value)
        elif opcode is OpCode.LOAD_WORD:
            value = yield from self.load_word(instruction.params["address"])
            if instruction.destination:
                self.variables[instruction.destination] = value
        elif opcode is OpCode.BARRIER:
            yield from self.sync()
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown firmware opcode {opcode}")

    def _poll(self, instruction: Instruction):
        mask = instruction.params["mask"]
        expected = instruction.params["expected"]
        period_ns = instruction.params["period_ns"]
        max_polls = instruction.params["max_polls"]
        for _ in range(max_polls):
            value = yield from self.read_reg(instruction.target, instruction.register)
            if (value & mask) == expected:
                return
            self.quantum_keeper.inc(period_ns)
            yield from self.quantum_keeper.sync()
        raise SimulationError(
            f"core {self.full_name}: poll of {instruction.target}.{instruction.register} "
            f"did not converge after {max_polls} polls"
        )

    def _wait_irq(self, target: str):
        if target not in self.irq_map:
            raise SimulationError(f"core {self.full_name}: no IRQ mapped for {target!r}")
        signal = self.irq_map[target]
        # Waiting for an interrupt is a synchronization point: flush the
        # local-time offset before suspending on the external event.
        yield from self.sync()
        while not signal.read():
            yield self.wait(signal.value_changed)

    def _monitor_fifos(self, instruction: Instruction):
        targets = instruction.params["targets"]
        repetitions = instruction.params["repetitions"]
        period_ns = instruction.params["period_ns"]
        for _ in range(repetitions):
            for target in targets:
                in_level = yield from self.read_reg(target, "IN_LEVEL")
                out_level = yield from self.read_reg(target, "OUT_LEVEL")
                self.monitor_samples.append(
                    (target, self.local_time_stamp(), in_level, out_level)
                )
            self.quantum_keeper.inc(period_ns)
            yield from self.quantum_keeper.sync_if_needed()
