"""Hardware accelerators.

Each accelerator of the case-study SoC is modelled by one temporally
decoupled thread (Section IV-C: "Each hardware accelerator is modeled by a
temporally decoupled thread").  The accelerator is controlled by the
embedded software through a small register bank (start command, number of
items to process, status, FIFO filling levels) and exchanges data with its
neighbours through FIFOs bound to its ports.

Three roles are provided:

* :class:`ProducerAccelerator` — generates a stream (models a DMA engine or
  a bitstream fetch unit reading from memory);
* :class:`WorkerAccelerator` — reads, processes (per-word latency), writes;
* :class:`ConsumerAccelerator` — drains a stream (models a display engine
  or a DMA write-back), records completion.

All roles raise an interrupt line and set their STATUS register when done.
The per-word processing cost and the item count are runtime parameters so
the platform can build heterogeneous chains.
"""

from __future__ import annotations

from typing import Optional, Union

from ..fifo.ports import FifoReadPort, FifoWritePort
from ..kernel.module import Module
from ..kernel.signal import Signal
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from ..tlm.register_bank import RegisterBank
from ..workloads.base import TimingMode, WorkloadModule

#: STATUS register bit meanings.
STATUS_IDLE = 0
STATUS_BUSY = 1
STATUS_DONE = 2


class AcceleratorBase(WorkloadModule):
    """Common control logic: registers, start event, IRQ, status."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        word_time: SimTime = ns(10),
        timing: TimingMode = TimingMode.DECOUPLED,
    ):
        super().__init__(parent, name, timing)
        self.word_time = word_time
        self.registers = RegisterBank(self, "regs")
        self.irq = Signal(self, "irq", initial=0)
        self._start_event = self.create_event("start")

        self.registers.add_register("CTRL", 0x00, on_write=self._on_ctrl_write)
        self.registers.add_register("ITEMS", 0x04)
        self.registers.add_register("STATUS", 0x08, reset=STATUS_IDLE)
        self.registers.add_register("IN_LEVEL", 0x0C, on_read=self._read_in_level)
        self.registers.add_register("OUT_LEVEL", 0x10, on_read=self._read_out_level)
        self.registers.add_register("PROCESSED", 0x14)

        self.create_thread(self.run)

    # ------------------------------------------------------------------
    # Register callbacks
    # ------------------------------------------------------------------
    def _on_ctrl_write(self, value: int) -> None:
        if value & 0x1:
            self._start_event.notify(SimTime(0))

    def _read_in_level(self) -> int:
        fifo = self._monitored_input()
        if fifo is None or not hasattr(fifo, "peek_size"):
            return 0
        return fifo.peek_size()

    def _read_out_level(self) -> int:
        fifo = self._monitored_output()
        if fifo is None or not hasattr(fifo, "peek_size"):
            return 0
        return fifo.peek_size()

    def _monitored_input(self):
        return None

    def _monitored_output(self):
        return None

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def run(self):
        """Wait for a start command, process the stream, signal completion."""
        yield self.wait(self._start_event)
        self.registers.poke("STATUS", STATUS_BUSY)
        item_count = self.registers.peek("ITEMS")
        yield from self.process_stream(item_count)
        # Raising the interrupt is a synchronization point: the software must
        # observe it at the accelerator's local completion date, so the
        # accelerator synchronizes first (Section II-A discussion).
        if self.timing is TimingMode.DECOUPLED:
            yield from self.sync()
        self.mark_finished()
        self.registers.poke("STATUS", STATUS_DONE)
        self.registers.poke("PROCESSED", self.items_processed)
        self.irq.write(1)

    def process_stream(self, item_count: int):
        """Role-specific data handling (generator)."""
        raise NotImplementedError
        yield  # pragma: no cover


class ProducerAccelerator(AcceleratorBase):
    """Generates ``ITEMS`` words into its output FIFO."""

    def __init__(self, parent, name, word_time: SimTime = ns(10), timing=TimingMode.DECOUPLED, seed: int = 0):
        super().__init__(parent, name, word_time, timing)
        self.out_port = FifoWritePort(self, "out_port")
        self.seed = seed

    def _monitored_output(self):
        return self.out_port.get() if self.out_port.bound else None

    def process_stream(self, item_count: int):
        word_ns = self.word_time.to(TimeUnit.NS)
        for index in range(item_count):
            # Model the fetch/generation cost of the word, then push it.
            yield from self.advance(word_ns)
            yield from self.out_port.write((self.seed + index) & 0xFFFFFFFF)
            self.items_processed += 1


class WorkerAccelerator(AcceleratorBase):
    """Reads a word, processes it for ``word_time``, writes the result."""

    def __init__(self, parent, name, word_time: SimTime = ns(10), timing=TimingMode.DECOUPLED, transform: int = 1):
        super().__init__(parent, name, word_time, timing)
        self.in_port = FifoReadPort(self, "in_port")
        self.out_port = FifoWritePort(self, "out_port")
        #: Simple arithmetic transform so functional correctness is checkable.
        self.transform = transform

    def _monitored_input(self):
        return self.in_port.get() if self.in_port.bound else None

    def _monitored_output(self):
        return self.out_port.get() if self.out_port.bound else None

    def process_stream(self, item_count: int):
        word_ns = self.word_time.to(TimeUnit.NS)
        for _ in range(item_count):
            word = yield from self.in_port.read()
            yield from self.advance(word_ns)
            yield from self.out_port.write((word + self.transform) & 0xFFFFFFFF)
            self.items_processed += 1


class ConsumerAccelerator(AcceleratorBase):
    """Drains its input FIFO; keeps a checksum and completion date."""

    def __init__(self, parent, name, word_time: SimTime = ns(10), timing=TimingMode.DECOUPLED):
        super().__init__(parent, name, word_time, timing)
        self.in_port = FifoReadPort(self, "in_port")
        self.checksum = 0
        self.last_word: Optional[int] = None

    def _monitored_input(self):
        return self.in_port.get() if self.in_port.bound else None

    def process_stream(self, item_count: int):
        word_ns = self.word_time.to(TimeUnit.NS)
        for _ in range(item_count):
            word = yield from self.in_port.read()
            self.checksum = (self.checksum + word) & 0xFFFFFFFF
            self.last_word = word
            self.items_processed += 1
            yield from self.advance(word_ns)
