"""Register banks.

Hardware accelerators of the case study are controlled by the embedded
software through memory-mapped registers (start/stop commands, block
counts, status, FIFO filling levels...).  :class:`RegisterBank` models a
bank of 32-bit registers served over ``b_transport``, with optional
callbacks on reads and writes so the owning module can react (start a job,
compute a status value on the fly, expose a Smart FIFO level through the
monitor interface...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from ..kernel.errors import TlmError
from ..kernel.module import Module
from ..kernel.simtime import SimTime, ns
from ..kernel.simulator import Simulator
from .payload import GenericPayload, TlmCommand, TlmResponse
from .sockets import TargetSocket

WORD_SIZE = 4


@dataclass
class Register:
    """One 32-bit register."""

    name: str
    offset: int
    value: int = 0
    #: Called as ``on_write(new_value)`` after the value is stored.
    on_write: Optional[Callable[[int], None]] = None
    #: Called as ``on_read() -> int`` to produce the value returned to the
    #: initiator (the stored value is returned when absent).
    on_read: Optional[Callable[[], int]] = None
    read_count: int = 0
    write_count: int = 0


class RegisterBank(Module):
    """A word-addressed bank of registers with access callbacks."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        access_latency: SimTime = ns(2),
    ):
        super().__init__(parent, name)
        self.access_latency = access_latency
        self._by_offset: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}
        self.socket = TargetSocket(self, "socket", self._b_transport)

    # ------------------------------------------------------------------
    def add_register(
        self,
        name: str,
        offset: int,
        reset: int = 0,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
    ) -> Register:
        if offset % WORD_SIZE != 0:
            raise TlmError(f"register {name!r}: offset 0x{offset:x} is not word aligned")
        if offset in self._by_offset:
            raise TlmError(f"register offset 0x{offset:x} already used")
        if name in self._by_name:
            raise TlmError(f"register name {name!r} already used")
        register = Register(name, offset, reset, on_write, on_read)
        self._by_offset[offset] = register
        self._by_name[name] = register
        return register

    def __getitem__(self, name: str) -> Register:
        return self._by_name[name]

    def registers(self):
        return tuple(self._by_name.values())

    @property
    def size(self) -> int:
        """Size of the address window covering every register."""
        if not self._by_offset:
            return WORD_SIZE
        return max(self._by_offset) + WORD_SIZE

    # ------------------------------------------------------------------
    # Local (software-free) accesses used by the owning hardware model
    # ------------------------------------------------------------------
    def peek(self, name: str) -> int:
        return self._by_name[name].value

    def poke(self, name: str, value: int) -> None:
        self._by_name[name].value = value & 0xFFFFFFFF

    # ------------------------------------------------------------------
    def _b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        if payload.length != WORD_SIZE or payload.address % WORD_SIZE != 0:
            payload.response = TlmResponse.GENERIC_ERROR
            return delay + self.access_latency
        register = self._by_offset.get(payload.address)
        if register is None:
            payload.response = TlmResponse.ADDRESS_ERROR
            return delay + self.access_latency
        if payload.command is TlmCommand.READ:
            value = register.on_read() if register.on_read else register.value
            payload.set_word_value(value & 0xFFFFFFFF)
            register.read_count += 1
            payload.response = TlmResponse.OK
        elif payload.command is TlmCommand.WRITE:
            register.value = payload.word_value() & 0xFFFFFFFF
            register.write_count += 1
            if register.on_write:
                register.on_write(register.value)
            payload.response = TlmResponse.OK
        else:
            payload.response = TlmResponse.COMMAND_ERROR
        return delay + self.access_latency


field  # keep dataclasses import explicit for future extensions
