"""Memory-mapped interconnect.

:class:`Bus` is a simple address-decoding router: target sockets are mapped
on address ranges, every transaction pays a configurable bus latency, and
the payload address is translated to an offset local to the target (the
usual TLM convention for reusable peripherals).  Statistics per target are
kept for the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from ..kernel.errors import TlmError
from ..kernel.module import Module
from ..kernel.simtime import SimTime, ZERO_TIME, ns
from ..kernel.simulator import Simulator
from .payload import GenericPayload, TlmResponse
from .sockets import TransportInterface


@dataclass(frozen=True)
class AddressRange:
    """A [base, base+size) address window routed to one target."""

    base: int
    size: int
    name: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end


class Bus(Module, TransportInterface):
    """An address-decoding, latency-annotating interconnect."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        latency: SimTime = ns(5),
    ):
        super().__init__(parent, name)
        self.latency = latency
        self._ranges: List[AddressRange] = []
        self._targets: Dict[str, TransportInterface] = {}
        #: Per-target transaction counters (for the evaluation harness).
        self.accesses: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def map_target(self, target: TransportInterface, base: int, size: int, name: str) -> None:
        """Route [base, base+size) to ``target``; ranges must not overlap."""
        if not hasattr(target, "b_transport"):
            raise TlmError(f"bus target {name!r} has no b_transport method")
        new_range = AddressRange(base, size, name)
        for existing in self._ranges:
            if existing.overlaps(new_range):
                raise TlmError(
                    f"address range {name!r} [0x{base:x}, 0x{new_range.end:x}) "
                    f"overlaps {existing.name!r}"
                )
        self._ranges.append(new_range)
        self._targets[name] = target
        self.accesses[name] = 0

    def decode(self, address: int) -> AddressRange:
        for window in self._ranges:
            if window.contains(address):
                return window
        raise TlmError(f"bus {self.full_name}: no target mapped at 0x{address:08x}")

    @property
    def mapped_ranges(self):
        return tuple(self._ranges)

    # ------------------------------------------------------------------
    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        """Decode, annotate the bus latency, and forward to the target."""
        try:
            window = self.decode(payload.address)
        except TlmError:
            payload.response = TlmResponse.ADDRESS_ERROR
            return delay + self.latency
        self.accesses[window.name] += 1
        original_address = payload.address
        payload.address = original_address - window.base
        try:
            new_delay = self._targets[window.name].b_transport(
                payload, delay + self.latency
            )
        finally:
            payload.address = original_address
        return new_delay

    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bus({self.full_name!r}, targets={[r.name for r in self._ranges]})"


ZERO_TIME  # re-exported for convenience in user code importing from tlm.bus
