"""Loosely-timed memory-mapped TLM substrate.

Provides the generic payload, initiator/target sockets, an
address-decoding bus, a RAM target, register banks and DMI.  Temporal
decoupling of the memory-mapped traffic uses the quantum keeper of
:mod:`repro.td.quantum`, following the existing (prior-art) methods the
paper builds upon for the non-FIFO part of the case-study SoC.
"""

from ..td.quantum import GlobalQuantum, QuantumKeeper
from .bus import AddressRange, Bus
from .dmi import DmiAllower, DmiRegion
from .memory import Memory
from .payload import GenericPayload, TlmCommand, TlmResponse
from .register_bank import Register, RegisterBank, WORD_SIZE
from .sockets import InitiatorSocket, TargetSocket, TransportInterface

__all__ = [
    "AddressRange",
    "Bus",
    "DmiAllower",
    "DmiRegion",
    "GenericPayload",
    "GlobalQuantum",
    "InitiatorSocket",
    "Memory",
    "QuantumKeeper",
    "Register",
    "RegisterBank",
    "TargetSocket",
    "TlmCommand",
    "TlmResponse",
    "TransportInterface",
    "WORD_SIZE",
]
