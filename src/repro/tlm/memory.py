"""Memory target.

A byte-addressable RAM with per-access latency, served through the
loosely-timed ``b_transport`` convention.  Used as the shared memory of the
case-study SoC and by the TLM unit tests.
"""

from __future__ import annotations

from typing import Union

from ..kernel.errors import TlmError
from ..kernel.module import Module
from ..kernel.simtime import SimTime, ns
from ..kernel.simulator import Simulator
from .payload import GenericPayload, TlmCommand, TlmResponse
from .sockets import TargetSocket


class Memory(Module):
    """A simple RAM model."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        size: int,
        read_latency: SimTime = ns(10),
        write_latency: SimTime = ns(10),
    ):
        super().__init__(parent, name)
        if size <= 0:
            raise TlmError(f"memory size must be positive, got {size}")
        self.size = size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._storage = bytearray(size)
        self.socket = TargetSocket(self, "socket", self._b_transport)
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Debug (non-timed) access
    # ------------------------------------------------------------------
    def load(self, address: int, data: bytes) -> None:
        """Backdoor initialisation (no timing, no transaction)."""
        if address < 0 or address + len(data) > self.size:
            raise TlmError(
                f"memory load out of range: [{address}, {address + len(data)})"
            )
        self._storage[address : address + len(data)] = data

    def dump(self, address: int, length: int) -> bytes:
        """Backdoor read (no timing, no transaction)."""
        if address < 0 or address + length > self.size:
            raise TlmError(f"memory dump out of range: [{address}, {address + length})")
        return bytes(self._storage[address : address + length])

    # ------------------------------------------------------------------
    def _b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        start = payload.address
        end = start + payload.length
        if start < 0 or end > self.size:
            payload.response = TlmResponse.ADDRESS_ERROR
            return delay
        if payload.command is TlmCommand.READ:
            payload.data[: payload.length] = self._storage[start:end]
            payload.response = TlmResponse.OK
            self.reads += 1
            return delay + self.read_latency
        if payload.command is TlmCommand.WRITE:
            self._storage[start:end] = payload.data[: payload.length]
            payload.response = TlmResponse.OK
            self.writes += 1
            return delay + self.write_latency
        payload.response = TlmResponse.COMMAND_ERROR
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Memory({self.full_name!r}, size={self.size})"
