"""Initiator and target sockets for the loosely-timed transport.

The blocking transport convention used throughout the library is the
TLM-2.0 loosely-timed one, adapted to Python:

``new_delay = target.b_transport(payload, delay)``

The *delay* argument is the timing annotation accumulated by the initiator
(its local-time offset); targets add their own latency and return the new
annotation.  The initiator is then free to keep running ahead (temporal
decoupling with a quantum keeper) or to synchronize.

Targets are any object exposing ``b_transport``; :class:`TargetSocket`
wraps a callback, :class:`InitiatorSocket` is the port the initiator binds
to the interconnect or directly to a target.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.errors import TlmError
from ..kernel.module import Module
from ..kernel.port import Port
from ..kernel.simtime import SimTime
from .payload import GenericPayload


class TransportInterface:
    """Anything that can serve a blocking transport call."""

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        raise NotImplementedError


class TargetSocket(TransportInterface):
    """Target-side socket: forwards ``b_transport`` to a module callback."""

    def __init__(self, owner: Module, name: str, callback: Optional[Callable] = None):
        self.owner = owner
        self.name = name
        self.full_name = f"{owner.full_name}.{name}"
        self._callback = callback

    def register_b_transport(self, callback: Callable) -> None:
        self._callback = callback

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        if self._callback is None:
            raise TlmError(f"target socket {self.full_name} has no b_transport callback")
        result = self._callback(payload, delay)
        if not isinstance(result, SimTime):
            raise TlmError(
                f"b_transport callback of {self.full_name} must return the "
                f"updated delay (SimTime), got {result!r}"
            )
        return result


class InitiatorSocket(Port):
    """Initiator-side socket: a port bound to a :class:`TransportInterface`."""

    def __init__(self, owner: Module, name: str, optional: bool = False):
        super().__init__(owner, name, None, optional=optional)
        self.transactions_sent = 0

    def bind(self, interface) -> None:
        if not hasattr(interface, "b_transport"):
            raise TlmError(
                f"initiator socket {self.full_name} must be bound to an object "
                f"with a b_transport method"
            )
        super().bind(interface)

    __call__ = bind

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        """Forward the transaction to the bound target/interconnect."""
        self.transactions_sent += 1
        return self.get().b_transport(payload, delay)
