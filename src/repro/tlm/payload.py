"""Generic payload for memory-mapped transactions.

A reduced but faithful version of the TLM-2.0 generic payload: command,
address, data, byte length, response status and an extension mechanism.
The case-study control core uses it to program accelerator register banks
and to access the shared memory over the interconnect.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from ..kernel.errors import TlmError


class TlmCommand(enum.Enum):
    """Transaction direction."""

    READ = "read"
    WRITE = "write"
    IGNORE = "ignore"


class TlmResponse(enum.Enum):
    """Completion status set by the target."""

    INCOMPLETE = "incomplete"
    OK = "ok"
    ADDRESS_ERROR = "address_error"
    COMMAND_ERROR = "command_error"
    GENERIC_ERROR = "generic_error"


class GenericPayload:
    """One memory-mapped transaction."""

    __slots__ = ("command", "address", "data", "length", "response", "extensions")

    def __init__(
        self,
        command: TlmCommand = TlmCommand.IGNORE,
        address: int = 0,
        data: Optional[bytearray] = None,
        length: Optional[int] = None,
    ):
        self.command = command
        self.address = address
        self.data = data if data is not None else bytearray()
        self.length = length if length is not None else len(self.data)
        self.response = TlmResponse.INCOMPLETE
        self.extensions: Dict[str, Any] = {}

    # -- constructors ----------------------------------------------------
    @classmethod
    def make_read(cls, address: int, length: int) -> "GenericPayload":
        """Build a read transaction of ``length`` bytes at ``address``."""
        return cls(TlmCommand.READ, address, bytearray(length), length)

    @classmethod
    def make_write(cls, address: int, data: bytes) -> "GenericPayload":
        """Build a write transaction carrying ``data`` at ``address``."""
        return cls(TlmCommand.WRITE, address, bytearray(data), len(data))

    @classmethod
    def make_word_read(cls, address: int) -> "GenericPayload":
        return cls.make_read(address, 4)

    @classmethod
    def make_word_write(cls, address: int, value: int) -> "GenericPayload":
        return cls.make_write(address, int(value).to_bytes(4, "little", signed=False))

    # -- data accessors --------------------------------------------------
    def word_value(self) -> int:
        """Interpret the payload data as a little-endian 32-bit word."""
        if len(self.data) < 4:
            raise TlmError(f"payload data too short for a word: {len(self.data)} bytes")
        return int.from_bytes(self.data[:4], "little", signed=False)

    def set_word_value(self, value: int) -> None:
        self.data[:4] = int(value).to_bytes(4, "little", signed=False)

    # -- status ----------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.command is TlmCommand.READ

    @property
    def is_write(self) -> bool:
        return self.command is TlmCommand.WRITE

    @property
    def ok(self) -> bool:
        return self.response is TlmResponse.OK

    def check_ok(self) -> None:
        """Raise :class:`TlmError` unless the target answered OK."""
        if self.response is not TlmResponse.OK:
            raise TlmError(
                f"transaction at 0x{self.address:08x} failed: {self.response.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GenericPayload({self.command.value}, addr=0x{self.address:08x}, "
            f"len={self.length}, resp={self.response.value})"
        )
