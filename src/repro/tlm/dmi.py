"""Direct memory interface (DMI).

Loosely-timed initiators that access the same memory region over and over
(the control core polling a job descriptor, for instance) can bypass the
transaction path entirely once a target granted them a direct pointer.
This mirrors the TLM-2.0 DMI mechanism: the initiator asks for a
:class:`DmiRegion`, then reads/writes the underlying buffer directly while
accounting for the advertised per-access latency with ``inc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernel.errors import TlmError
from ..kernel.simtime import SimTime, ZERO_TIME
from .memory import Memory


@dataclass
class DmiRegion:
    """A direct-access grant on a memory range."""

    base: int
    size: int
    read_latency: SimTime
    write_latency: SimTime
    memory: Memory
    allow_read: bool = True
    allow_write: bool = True

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.base + self.size

    def read(self, address: int, length: int) -> bytes:
        if not self.allow_read:
            raise TlmError("DMI region does not allow reads")
        if not self.contains(address, length):
            raise TlmError(f"DMI read out of granted range at 0x{address:x}")
        return self.memory.dump(address - self.base, length)

    def write(self, address: int, data: bytes) -> None:
        if not self.allow_write:
            raise TlmError("DMI region does not allow writes")
        if not self.contains(address, len(data)):
            raise TlmError(f"DMI write out of granted range at 0x{address:x}")
        self.memory.load(address - self.base, data)


class DmiAllower:
    """Grants DMI regions on a :class:`Memory` mapped at a base address."""

    def __init__(self, memory: Memory, base: int, enabled: bool = True):
        self.memory = memory
        self.base = base
        self.enabled = enabled
        self.grants = 0
        self.invalidations = 0
        self._granted: Optional[DmiRegion] = None

    def get_dmi(self, address: int) -> Optional[DmiRegion]:
        """Return a grant covering ``address``, or None when DMI is disabled."""
        if not self.enabled:
            return None
        if not (self.base <= address < self.base + self.memory.size):
            return None
        self.grants += 1
        self._granted = DmiRegion(
            base=self.base,
            size=self.memory.size,
            read_latency=self.memory.read_latency,
            write_latency=self.memory.write_latency,
            memory=self.memory,
        )
        return self._granted

    def invalidate(self) -> None:
        """Withdraw the grant (models remapping / protection changes)."""
        if self._granted is not None:
            self._granted.allow_read = False
            self._granted.allow_write = False
            self._granted = None
            self.invalidations += 1


ZERO_TIME  # re-export convenience
