"""Multi-writer / multi-reader arbiter contention scenario.

Section III of the paper: the Smart FIFO assumes each side is accessed by a
single process; when several processes share a side, an arbiter must keep
the per-side access dates monotonic.  This workload builds exactly that
design: ``n_writers`` decoupled writers funnel into one Smart FIFO through
a :class:`~repro.fifo.arbiter.WriteArbiter`, and ``n_readers`` decoupled
readers drain it through a :class:`~repro.fifo.arbiter.ReadArbiter`.

Because temporal decoupling runs each writer far ahead before the next one
gets scheduled, later writers arrive at the arbiter with *earlier* local
dates and must be delayed — so the scenario genuinely exercises the
arbitration path (``arbitrated_accesses > 0``), unlike the single-process
workloads.

The arbitration delays are a property of the decoupled schedule, so this
scenario has no regular-FIFO twin producing identical traces; its oracle is
:meth:`ArbiterContentionScenario.verify` — the same invariants checked by
``tests/unit/fifo/test_arbiter_ports.py`` — namely:

* per-side date monotonicity (``grant_dates_fs`` never decreases);
* complete accounting (``total_accesses`` equals the item count on each
  side);
* conservation: every written ``(writer, sequence)`` token is read exactly
  once and each writer's tokens are seen in order.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fifo.arbiter import ReadArbiter, WriteArbiter
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simtime import ns
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule, _to_fs


@dataclass
class ContentionConfig:
    """Parameters of one contention scenario (all timing in integer ns)."""

    seed: int = 1
    n_writers: int = 3
    n_readers: int = 3
    items_per_writer: int = 20
    fifo_depth: int = 8
    #: Arbitration/transfer cycle of the shared port (see _SideArbiter).
    access_time_ns: int = 2
    max_writer_gap_ns: int = 15
    max_reader_gap_ns: int = 9

    def __post_init__(self) -> None:
        for name in ("n_writers", "n_readers", "items_per_writer",
                     "fifo_depth", "max_writer_gap_ns", "max_reader_gap_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"ContentionConfig.{name} must be positive, "
                    f"got {getattr(self, name)}"
                )
        if self.access_time_ns < 0:
            raise ValueError("ContentionConfig.access_time_ns must be >= 0")

    @property
    def total_items(self) -> int:
        return self.n_writers * self.items_per_writer

    def reader_shares(self) -> List[int]:
        """How many items each reader drains (they sum to total_items)."""
        base, remainder = divmod(self.total_items, self.n_readers)
        return [base + (1 if i < remainder else 0) for i in range(self.n_readers)]


class ContentionWriter(WorkloadModule):
    """Writes ``(writer_id, seq)`` tokens through the shared write arbiter."""

    def __init__(self, parent, name, arbiter, writer_id: int,
                 config: ContentionConfig, burst: bool = False):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.arbiter = arbiter
        self.writer_id = writer_id
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 31337 + writer_id)
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        if self.burst:
            # Arbiters are not Smart FIFOs, so the base burst helpers do not
            # apply; call the arbiter's flattened burst directly.  The gaps
            # are pre-drawn in the same order the word loop draws them (the
            # rng serves nothing else), so the schedule is bit-identical.
            n = cfg.items_per_writer
            words = [(self.writer_id, seq) for seq in range(n)]
            gaps_fs = [
                _to_fs(self.rng.randint(1, cfg.max_writer_gap_ns))
                for _ in range(n)
            ]
            yield from self.arbiter.write_burst(words, gaps_fs)
            self.items_processed += n
            self.mark_finished()
            return
        for seq in range(cfg.items_per_writer):
            yield from self.arbiter.write((self.writer_id, seq))
            self.items_processed += 1
            yield from self.advance(
                self.rng.randint(1, cfg.max_writer_gap_ns)
            )
        self.mark_finished()


class ContentionReader(WorkloadModule):
    """Reads its share of tokens through the shared read arbiter."""

    def __init__(self, parent, name, arbiter, count: int,
                 reader_id: int, config: ContentionConfig,
                 burst: bool = False):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.arbiter = arbiter
        self.count = count
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 27644437 + reader_id)
        self.tokens: List[Tuple[int, int]] = []
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        if self.burst:
            # See ContentionWriter.run: direct arbiter burst, gaps pre-drawn
            # in word-loop order.
            gaps_fs = [
                _to_fs(self.rng.randint(1, cfg.max_reader_gap_ns))
                for _ in range(self.count)
            ]
            tokens = yield from self.arbiter.read_burst(self.count, gaps_fs)
            self.tokens.extend(tokens)
            self.items_processed += self.count
            self.mark_finished()
            return
        for _ in range(self.count):
            token = yield from self.arbiter.read()
            self.tokens.append(token)
            self.items_processed += 1
            yield from self.advance(
                self.rng.randint(1, cfg.max_reader_gap_ns)
            )
        self.mark_finished()


class ArbiterContentionScenario:
    """N writers -> WriteArbiter -> Smart FIFO -> ReadArbiter -> M readers."""

    def __init__(self, sim: Simulator, config: Optional[ContentionConfig] = None,
                 burst: bool = False):
        self.sim = sim
        self.config = config or ContentionConfig()
        self.burst = burst
        cfg = self.config
        self.fifo = SmartFifo(sim, "fifo", depth=cfg.fifo_depth)
        # record_grants: this scenario IS the grant-date oracle, so it keeps
        # the (bounded) full history for the monotonicity assertions.
        self.write_arbiter = WriteArbiter(
            sim, "write_arbiter", self.fifo,
            access_duration=ns(cfg.access_time_ns), record_grants=True,
        )
        self.read_arbiter = ReadArbiter(
            sim, "read_arbiter", self.fifo,
            access_duration=ns(cfg.access_time_ns), record_grants=True,
        )
        self.writers = [
            ContentionWriter(sim, f"writer{i}", self.write_arbiter, i, cfg,
                             burst=burst)
            for i in range(cfg.n_writers)
        ]
        self.readers = [
            ContentionReader(sim, f"reader{i}", self.read_arbiter, share, i,
                             cfg, burst=burst)
            for i, share in enumerate(cfg.reader_shares())
        ]

    def run(self) -> None:
        self.sim.run()

    # ------------------------------------------------------------------
    def all_tokens(self) -> List[Tuple[int, int]]:
        return [token for reader in self.readers for token in reader.tokens]

    def verify(self) -> None:
        """The arbiter-contention oracle (see the module docstring)."""
        cfg = self.config
        total = cfg.total_items
        # Complete accounting on both shared ports.
        assert self.write_arbiter.total_accesses == total
        assert self.read_arbiter.total_accesses == total
        assert self.fifo.total_written == total and self.fifo.total_read == total
        # Per-side date monotonicity — the invariant the arbiter enforces.
        assert self.write_arbiter.grants_monotonic(), "write dates went backwards"
        assert self.read_arbiter.grants_monotonic(), "read dates went backwards"
        # Conservation: every token read exactly once (this also implies
        # each writer contributed exactly items_per_writer tokens)...
        tokens = self.all_tokens()
        expected = Counter(
            (writer, seq)
            for writer in range(cfg.n_writers)
            for seq in range(cfg.items_per_writer)
        )
        assert Counter(tokens) == expected
        # ... and per-writer FIFO order as observed by each reader: tokens
        # interleave across readers, so the strongest order guarantee is
        # that within one reader's stream every writer's sequence numbers
        # increase (the FIFO preserves each writer's order globally, and a
        # single reader drains a subsequence of that global order).
        for reader in self.readers:
            seen: Dict[int, int] = {}
            for writer, seq in reader.tokens:
                assert seen.get(writer, -1) < seq, (
                    f"reader saw writer {writer} tokens out of order"
                )
                seen[writer] = seq

    @property
    def arbitration_happened(self) -> bool:
        """True when at least one access was actually delayed (the scenario
        is only interesting when contention really occurred)."""
        return (
            self.write_arbiter.arbitrated_accesses > 0
            or self.read_arbiter.arbitrated_accesses > 0
        )
