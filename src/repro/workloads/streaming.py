"""Streaming pipeline workloads.

This module contains the two workloads used by the paper's evaluation:

* :class:`WriterReaderExample` — the didactic two-process example of
  Fig. 1/2/3: a writer produces three values spaced by 20 ns, a reader
  consumes them with 15 ns of processing per value.  Running it in the
  three modes (reference, naively decoupled, Smart FIFO) reproduces the
  execution traces of Fig. 2 and Fig. 3 and demonstrates that the Smart
  FIFO restores the reference dates.

* :class:`StreamingPipeline` — the performance benchmark of Fig. 5: a
  ``source -> transmitter -> sink`` chain connected by two FIFOs,
  transferring ``n_blocks`` blocks of ``words_per_block`` words with
  configurable data rates, in the three implementations compared by the
  paper (*untimed*, *TDless*, *TDfull*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..fifo.sync_fifo import SyncFifo
from ..kernel.module import Module
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


# ---------------------------------------------------------------------------
# Fig. 1 / 2 / 3 — writer/reader example
# ---------------------------------------------------------------------------
class ExampleMode(enum.Enum):
    """The three executions discussed in Sections II-B and III."""

    #: Regular FIFO, plain ``wait`` annotations — the timing reference (Fig. 2).
    REFERENCE = "reference"
    #: Regular FIFO, ``inc`` annotations but no synchronization — the broken
    #: execution of Fig. 3 (all FIFO accesses happen at t = 0).
    DECOUPLED_NO_SYNC = "decoupled_no_sync"
    #: Smart FIFO with ``inc`` annotations — must reproduce the Fig. 2 dates.
    SMART = "smart"


class _ExampleWriter(WorkloadModule):
    """Writes ``values`` spaced by ``period`` (20 ns in the paper)."""

    def __init__(self, parent, name, fifo, values, period: SimTime, timing: TimingMode):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.values = list(values)
        self.period = period
        self.write_dates: List[Tuple[int, SimTime]] = []
        self.create_thread(self.run)

    def run(self):
        for value in self.values:
            yield from self.fifo.write(value)
            date = (
                self.local_time_stamp()
                if self.timing is TimingMode.DECOUPLED
                else self.now
            )
            self.write_dates.append((value, date))
            self.checkpoint(f"wr {value}")
            yield from self.advance(self.period.to(TimeUnit.NS))
        self.mark_finished()


class _ExampleReader(WorkloadModule):
    """Reads ``count`` values, spending ``period`` (15 ns) after each read."""

    def __init__(self, parent, name, fifo, count: int, period: SimTime, timing: TimingMode):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.count = count
        self.period = period
        self.read_dates: List[Tuple[int, SimTime]] = []
        self.values_read: List[int] = []
        self.create_thread(self.run)

    def run(self):
        for _ in range(self.count):
            value = yield from self.fifo.read()
            date = (
                self.local_time_stamp()
                if self.timing is TimingMode.DECOUPLED
                else self.now
            )
            self.values_read.append(value)
            self.read_dates.append((value, date))
            self.checkpoint(f"rd {value}")
            yield from self.advance(self.period.to(TimeUnit.NS))
        self.mark_finished()


class WriterReaderExample:
    """The complete Fig. 1 model, in a selectable execution mode."""

    def __init__(
        self,
        sim: Simulator,
        mode: ExampleMode = ExampleMode.REFERENCE,
        fifo_depth: int = 4,
        values: Tuple[int, ...] = (1, 2, 3),
        write_period: SimTime = ns(20),
        read_period: SimTime = ns(15),
    ):
        self.sim = sim
        self.mode = mode
        if mode is ExampleMode.REFERENCE:
            fifo: FifoInterface = RegularFifo(sim, "fifo", depth=fifo_depth)
            timing = TimingMode.TIMED_WAIT
        elif mode is ExampleMode.DECOUPLED_NO_SYNC:
            fifo = RegularFifo(sim, "fifo", depth=fifo_depth)
            timing = TimingMode.DECOUPLED
        else:
            fifo = SmartFifo(sim, "fifo", depth=fifo_depth)
            timing = TimingMode.DECOUPLED
        self.fifo = fifo
        self.writer = _ExampleWriter(sim, "writer", fifo, values, write_period, timing)
        self.reader = _ExampleReader(
            sim, "reader", fifo, len(values), read_period, timing
        )

    def run(self) -> None:
        self.sim.run()

    @property
    def write_dates(self):
        return list(self.writer.write_dates)

    @property
    def read_dates(self):
        return list(self.reader.read_dates)

    def dates_ns(self):
        """(value, write ns, read ns) triples, convenient for assertions."""
        writes = {value: date.to(TimeUnit.NS) for value, date in self.writer.write_dates}
        reads = {value: date.to(TimeUnit.NS) for value, date in self.reader.read_dates}
        return [
            (value, writes[value], reads[value]) for value in self.reader.values_read
        ]


# ---------------------------------------------------------------------------
# Fig. 5 — source / transmitter / sink pipeline
# ---------------------------------------------------------------------------
class PipelineModel(enum.Enum):
    """The implementations compared by Fig. 5 (plus the quantum ablation)."""

    UNTIMED = "untimed"
    TDLESS = "tdless"
    TDFULL = "tdfull"
    #: Ablation (EXP-QUANTUM): global-quantum decoupling with regular FIFOs.
    #: Fast, but the timing is only approximate (error bounded by the quantum).
    QUANTUM = "quantum"


@dataclass
class StreamingConfig:
    """Parameters of the Fig. 5 benchmark.

    The paper transfers 1000 blocks of 1000 words; the default here is a
    scaled-down run that keeps the same shape in seconds-long Python
    simulations.  Use :meth:`paper_scale` for the full-size configuration.
    """

    n_blocks: int = 50
    words_per_block: int = 100
    fifo_depth: int = 16
    #: Per-word production / transmission / consumption times (data rates).
    source_word_time: SimTime = field(default_factory=lambda: ns(10))
    transmitter_word_time: SimTime = field(default_factory=lambda: ns(8))
    sink_word_time: SimTime = field(default_factory=lambda: ns(12))
    #: Fixed overhead per block in the transmitter (header processing...).
    block_overhead: SimTime = field(default_factory=lambda: ns(50))

    @classmethod
    def paper_scale(cls, fifo_depth: int = 16) -> "StreamingConfig":
        """The full 1000 x 1000 configuration used in the paper."""
        return cls(n_blocks=1000, words_per_block=1000, fifo_depth=fifo_depth)

    @property
    def total_words(self) -> int:
        return self.n_blocks * self.words_per_block


class Source(WorkloadModule):
    """Produces ``n_blocks`` blocks of ``words_per_block`` increasing words."""

    def __init__(self, parent, name, out_fifo, config: StreamingConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.out_fifo = out_fifo
        self.config = config
        self.burst = burst
        self.create_thread(self.run)

    def run(self):
        word_time_ns = self.config.source_word_time.to(TimeUnit.NS)
        value = 0
        if self.burst:
            per_block = self.config.words_per_block
            for _block in range(self.config.n_blocks):
                block = list(range(value, value + per_block))
                value += per_block
                yield from self.burst_write(self.out_fifo, block, word_time_ns)
            self.mark_finished()
            return
        for _block in range(self.config.n_blocks):
            for _ in range(self.config.words_per_block):
                yield from self.out_fifo.write(value)
                self.items_processed += 1
                value += 1
                yield from self.advance(word_time_ns)
        self.mark_finished()


class Transmitter(WorkloadModule):
    """Forwards words from the input FIFO to the output FIFO."""

    def __init__(self, parent, name, in_fifo, out_fifo, config: StreamingConfig, timing: TimingMode):
        super().__init__(parent, name, timing)
        self.in_fifo = in_fifo
        self.out_fifo = out_fifo
        self.config = config
        self.create_thread(self.run)

    def run(self):
        word_time_ns = self.config.transmitter_word_time.to(TimeUnit.NS)
        block_overhead_ns = self.config.block_overhead.to(TimeUnit.NS)
        for _block in range(self.config.n_blocks):
            if block_overhead_ns:
                yield from self.advance(block_overhead_ns)
            for _ in range(self.config.words_per_block):
                word = yield from self.in_fifo.read()
                yield from self.advance(word_time_ns)
                yield from self.out_fifo.write(word)
                self.items_processed += 1
        self.mark_finished()


class Sink(WorkloadModule):
    """Consumes every word, keeping a checksum for functional validation."""

    def __init__(self, parent, name, in_fifo, config: StreamingConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.in_fifo = in_fifo
        self.config = config
        self.burst = burst
        self.checksum = 0
        self.create_thread(self.run)

    def run(self):
        word_time_ns = self.config.sink_word_time.to(TimeUnit.NS)
        if self.burst:
            chunk = self.config.words_per_block
            remaining = self.config.total_words
            while remaining:
                count = min(chunk, remaining)
                words = yield from self.burst_read(self.in_fifo, count, word_time_ns)
                self.checksum = (self.checksum + sum(words)) % (1 << 32)
                remaining -= count
            self.mark_finished()
            return
        for _ in range(self.config.total_words):
            word = yield from self.in_fifo.read()
            self.checksum = (self.checksum + word) % (1 << 32)
            self.items_processed += 1
            yield from self.advance(word_time_ns)
        self.mark_finished()


class StreamingPipeline:
    """source -> fifo1 -> transmitter -> fifo2 -> sink, in a given model."""

    def __init__(
        self,
        sim: Simulator,
        model: PipelineModel,
        config: Optional[StreamingConfig] = None,
        burst: bool = False,
    ):
        self.sim = sim
        self.model = model
        self.config = config or StreamingConfig()
        depth = self.config.fifo_depth

        if model is PipelineModel.TDFULL:
            self.fifo1: FifoInterface = SmartFifo(sim, "fifo1", depth=depth)
            self.fifo2: FifoInterface = SmartFifo(sim, "fifo2", depth=depth)
            timing = TimingMode.DECOUPLED
        else:
            self.fifo1 = RegularFifo(sim, "fifo1", depth=depth)
            self.fifo2 = RegularFifo(sim, "fifo2", depth=depth)
            if model is PipelineModel.UNTIMED:
                timing = TimingMode.UNTIMED
            elif model is PipelineModel.QUANTUM:
                timing = TimingMode.QUANTUM
            else:
                timing = TimingMode.TIMED_WAIT

        self.source = Source(sim, "source", self.fifo1, self.config, timing, burst=burst)
        self.transmitter = Transmitter(
            sim, "transmitter", self.fifo1, self.fifo2, self.config, timing
        )
        self.sink = Sink(sim, "sink", self.fifo2, self.config, timing, burst=burst)

    def run(self) -> None:
        self.sim.run()

    # ------------------------------------------------------------------
    @property
    def completion_time(self) -> Optional[SimTime]:
        """Date at which the sink consumed the last word (local date for
        the decoupled model, kernel date otherwise)."""
        return self.sink.finish_time

    @property
    def checksum(self) -> int:
        return self.sink.checksum

    def expected_checksum(self) -> int:
        total = self.config.total_words
        return (total * (total - 1) // 2) % (1 << 32)

    def verify(self) -> None:
        """Check functional completion (every word arrived, in order)."""
        assert self.sink.items_processed == self.config.total_words, (
            self.sink.items_processed,
            self.config.total_words,
        )
        assert self.checksum == self.expected_checksum()
