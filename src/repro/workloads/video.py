"""A video-decoder-like accelerator chain.

The introduction of the paper motivates the work with stream-processing
hardware accelerators (e.g. video decoding) connected by FIFOs.  This
workload models such a chain: a bitstream parser producing bursts of
macroblock data, followed by compute stages with different per-item costs
(inverse transform, motion compensation, deblocking), ending in a display
sink with a strict consumption rate.

Every stage is written once and runs in the three timing modes; the chain
can be built with regular FIFOs (reference), Smart FIFOs (decoupled) or any
mix, which makes it a good integration scenario for the trace-equivalence
validation and a realistic example application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simtime import SimTime, TimeUnit, ns
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class VideoConfig:
    """Parameters of the synthetic video pipeline."""

    n_frames: int = 4
    macroblocks_per_frame: int = 24
    fifo_depth: int = 8
    #: Parser emits a burst of macroblocks, then pauses (bitstream refill).
    parser_burst: int = 6
    parser_item_time: SimTime = field(default_factory=lambda: ns(4))
    parser_refill_time: SimTime = field(default_factory=lambda: ns(60))
    #: Per-macroblock compute times of the middle stages.
    stage_item_times: Sequence[SimTime] = field(
        default_factory=lambda: (ns(9), ns(7), ns(5))
    )
    #: Display consumes at a fixed rate.
    display_item_time: SimTime = field(default_factory=lambda: ns(11))

    @property
    def total_items(self) -> int:
        return self.n_frames * self.macroblocks_per_frame


class BitstreamParser(WorkloadModule):
    """Produces macroblock tokens in bursts."""

    def __init__(self, parent, name, out_fifo, config: VideoConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.out_fifo = out_fifo
        self.config = config
        self.burst = burst
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        item_ns = cfg.parser_item_time.to(TimeUnit.NS)
        refill_ns = cfg.parser_refill_time.to(TimeUnit.NS)
        emitted = 0
        if self.burst:
            while emitted < cfg.total_items:
                burst = min(cfg.parser_burst, cfg.total_items - emitted)
                tokens = list(range(emitted, emitted + burst))
                emitted += burst
                yield from self.burst_write(self.out_fifo, tokens, item_ns)
                yield from self.advance(refill_ns)
            self.mark_finished()
            return
        while emitted < cfg.total_items:
            burst = min(cfg.parser_burst, cfg.total_items - emitted)
            for _ in range(burst):
                yield from self.out_fifo.write(emitted)
                emitted += 1
                self.items_processed += 1
                yield from self.advance(item_ns)
            yield from self.advance(refill_ns)
        self.mark_finished()


class ComputeStage(WorkloadModule):
    """A macroblock-processing stage with a fixed per-item cost."""

    def __init__(
        self,
        parent,
        name,
        in_fifo,
        out_fifo,
        item_time: SimTime,
        total_items: int,
        timing: TimingMode,
    ):
        super().__init__(parent, name, timing)
        self.in_fifo = in_fifo
        self.out_fifo = out_fifo
        self.item_time = item_time
        self.total_items = total_items
        self.create_thread(self.run)

    def run(self):
        item_ns = self.item_time.to(TimeUnit.NS)
        for _ in range(self.total_items):
            token = yield from self.in_fifo.read()
            yield from self.advance(item_ns)
            yield from self.out_fifo.write(token)
            self.items_processed += 1
        self.mark_finished()


class Display(WorkloadModule):
    """Consumes macroblocks at a fixed rate; records per-item completion dates."""

    def __init__(self, parent, name, in_fifo, config: VideoConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.in_fifo = in_fifo
        self.config = config
        self.burst = burst
        self.completion_dates: List[SimTime] = []
        self.create_thread(self.run)

    def run(self):
        item_ns = self.config.display_item_time.to(TimeUnit.NS)
        if self.burst:
            per_frame = self.config.macroblocks_per_frame
            remaining = self.config.total_items
            while remaining:
                count = min(per_frame, remaining)
                dates: List[int] = []
                yield from self.burst_read(
                    self.in_fifo, count, item_ns, dates_out=dates
                )
                self.completion_dates.extend(
                    SimTime.from_femtoseconds(date) for date in dates
                )
                remaining -= count
            self.mark_finished()
            return
        for _ in range(self.config.total_items):
            token = yield from self.in_fifo.read()
            date = (
                self.local_time_stamp()
                if self.timing is TimingMode.DECOUPLED
                else self.now
            )
            self.completion_dates.append(date)
            self.items_processed += 1
            del token
            yield from self.advance(item_ns)
        self.mark_finished()


class VideoPipeline:
    """parser -> stage_1 -> ... -> stage_k -> display."""

    def __init__(
        self,
        sim: Simulator,
        decoupled: bool,
        config: Optional[VideoConfig] = None,
        burst: bool = False,
    ):
        self.sim = sim
        self.config = config or VideoConfig()
        self.decoupled = decoupled
        cfg = self.config
        timing = TimingMode.DECOUPLED if decoupled else TimingMode.TIMED_WAIT

        def make_fifo(name: str) -> FifoInterface:
            if decoupled:
                return SmartFifo(sim, name, depth=cfg.fifo_depth)
            return RegularFifo(sim, name, depth=cfg.fifo_depth)

        n_stages = len(cfg.stage_item_times)
        self.fifos = [make_fifo(f"fifo{i}") for i in range(n_stages + 1)]
        self.parser = BitstreamParser(sim, "parser", self.fifos[0], cfg, timing, burst=burst)
        self.stages = [
            ComputeStage(
                sim,
                f"stage{i}",
                self.fifos[i],
                self.fifos[i + 1],
                item_time,
                cfg.total_items,
                timing,
            )
            for i, item_time in enumerate(cfg.stage_item_times)
        ]
        self.display = Display(sim, "display", self.fifos[-1], cfg, timing, burst=burst)

    def run(self) -> None:
        self.sim.run()

    @property
    def frame_dates(self) -> List[SimTime]:
        """Completion date of the last macroblock of each frame."""
        per_frame = self.config.macroblocks_per_frame
        dates = self.display.completion_dates
        return [
            dates[(i + 1) * per_frame - 1]
            for i in range(self.config.n_frames)
            if (i + 1) * per_frame - 1 < len(dates)
        ]

    @property
    def completion_time(self) -> Optional[SimTime]:
        return self.display.finish_time


Union  # typing import kept for signature extensions
