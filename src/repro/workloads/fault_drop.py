"""Seeded fault-injection workload: a dropped packet the pair diff must catch.

Every other pairable workload demonstrates *equivalence* — the Smart FIFO
run reproduces the reference traces exactly.  This one demonstrates the
other half of the Section IV-A methodology: that the reorder-and-compare
check actually **detects** a behavioural divergence when one exists.  A
faulty relay sits between producer and consumer; in the decoupled (smart)
run it silently drops one value — which one is derived from the seed — so
the consumer trace loses a line and shifts the dates of every later one.
The paired campaign must therefore report the pair as *not* equivalent,
with the dropped value visible in the full line-level diff, and the
consumed-checksum extras must disagree as well.

The per-run oracle (:meth:`FaultDropScenario.verify`) deliberately passes
in both modes — each run is internally consistent — because the fault is
only observable *across* the pair, exactly like a real model bug that
temporal decoupling would introduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class FaultDropConfig:
    """Parameters of the fault-injection scenario."""

    seed: int = 1
    item_count: int = 24
    fifo_depth: int = 4
    producer_period_ns: int = 10
    consumer_period_ns: int = 15

    @property
    def dropped_index(self) -> int:
        """Index of the value the faulty relay swallows (seed-derived)."""
        return random.Random(self.seed * 6151 + 3).randrange(self.item_count)


class FaultProducer(WorkloadModule):
    """Writes ``item_count`` sequential values at a fixed cadence."""

    def __init__(self, parent, name, fifo, config: FaultDropConfig, timing: TimingMode,
                 burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        if self.burst:
            yield from self.burst_write(
                self.fifo,
                list(range(cfg.item_count)),
                cfg.producer_period_ns,
                message_fn=lambda index, _word: f"sent {index}",
            )
            self.mark_finished()
            self.checkpoint("producer done")
            return
        for index in range(cfg.item_count):
            yield from self.fifo.write(index)
            self.items_processed += 1
            self.checkpoint(f"sent {index}")
            yield from self.advance(cfg.producer_period_ns)
        self.mark_finished()
        self.checkpoint("producer done")


class FaultyRelay(WorkloadModule):
    """Forwards values downstream; drops one when the fault is armed.

    The relay is trace-silent (it adds no lines of its own), so the only
    observable difference between the healthy and the faulty run is the
    consumer behaviour — the shape of a genuine model bug.
    """

    def __init__(
        self,
        parent,
        name,
        fifo_in,
        fifo_out,
        config: FaultDropConfig,
        timing: TimingMode,
        faulty: bool,
    ):
        super().__init__(parent, name, timing)
        self.fifo_in = fifo_in
        self.fifo_out = fifo_out
        self.config = config
        self.faulty = faulty
        self.dropped_value: Optional[int] = None
        self.create_thread(self.run)

    def run(self):
        drop_at = self.config.dropped_index if self.faulty else -1
        for index in range(self.config.item_count):
            value = yield from self.fifo_in.read()
            if index == drop_at:
                self.dropped_value = value
                continue
            yield from self.fifo_out.write(value)
        self.mark_finished()


class FaultConsumer(WorkloadModule):
    """Reads the forwarded values and checkpoints every one."""

    def __init__(self, parent, name, fifo, expected: int, config: FaultDropConfig, timing: TimingMode,
                 burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.expected = expected
        self.config = config
        self.burst = burst
        self.values: List[int] = []
        self.create_thread(self.run)

    def run(self):
        if self.burst:
            words = yield from self.burst_read(
                self.fifo,
                self.expected,
                self.config.consumer_period_ns,
                message_fn=lambda _index, word: f"received {word}",
            )
            self.values.extend(words)
            self.mark_finished()
            self.checkpoint("consumer done")
            return
        for _ in range(self.expected):
            value = yield from self.fifo.read()
            self.values.append(value)
            self.items_processed += 1
            self.checkpoint(f"received {value}")
            yield from self.advance(self.config.consumer_period_ns)
        self.mark_finished()
        self.checkpoint("consumer done")


class FaultDropScenario:
    """Producer -> (faulty in smart mode) relay -> consumer."""

    def __init__(
        self,
        sim: Simulator,
        decoupled: bool,
        config: Optional[FaultDropConfig] = None,
        burst: bool = False,
    ):
        self.sim = sim
        self.config = config or FaultDropConfig()
        self.decoupled = decoupled
        depth = self.config.fifo_depth
        if decoupled:
            self.fifo_in: FifoInterface = SmartFifo(sim, "fifo_in", depth=depth)
            self.fifo_out: FifoInterface = SmartFifo(sim, "fifo_out", depth=depth)
            timing = TimingMode.DECOUPLED
        else:
            self.fifo_in = RegularFifo(sim, "fifo_in", depth=depth)
            self.fifo_out = RegularFifo(sim, "fifo_out", depth=depth)
            timing = TimingMode.TIMED_WAIT
        expected = self.config.item_count - (1 if decoupled else 0)
        self.producer = FaultProducer(
            sim, "producer", self.fifo_in, self.config, timing, burst=burst
        )
        # The relay drops a value mid-stream, so it keeps the word loop in
        # both paths: bursts are for the uninterrupted endpoint transfers.
        self.relay = FaultyRelay(
            sim, "relay", self.fifo_in, self.fifo_out, self.config, timing,
            faulty=decoupled,
        )
        self.consumer = FaultConsumer(
            sim, "consumer", self.fifo_out, expected, self.config, timing,
            burst=burst,
        )

    def run(self) -> None:
        self.sim.run()

    def verify(self) -> None:
        """Per-run consistency only: the fault is a *cross-pair* observable.

        Each run delivers exactly what its relay forwarded, so this oracle
        passes in both modes; the paired trace diff (and the checksum
        extras) are what must flag the divergence.
        """
        expected = self.config.item_count - (1 if self.decoupled else 0)
        assert len(self.consumer.values) == expected, (
            f"consumer received {len(self.consumer.values)} of {expected} values"
        )
        if self.decoupled:
            assert self.relay.dropped_value is not None
            assert self.relay.dropped_value not in self.consumer.values

    def checksum(self) -> int:
        return sum(self.consumer.values)
