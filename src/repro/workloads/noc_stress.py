"""NoC-only router stress scenario (Section IV-C infrastructure, isolated).

The campaign engine exercised every word-level workload but never the NoC
half of the case study.  This scenario builds *only* the NoC machinery: a
``mesh_width x mesh_height`` mesh of :class:`~repro.soc.noc.router.Router`
modules (one non-decoupled ``SC_METHOD`` each, regular packet FIFOs on the
input ports), fed through :class:`~repro.soc.noc.network_interface
.SourceNetworkInterface` method processes that packetize one seeded word
stream per router, and drained through
:class:`~repro.soc.noc.network_interface.DestNetworkInterface` into
per-stream egress Smart FIFOs read by decoupled consumer threads.

Stream ``i`` originates at router ``i`` and terminates at router
``(i + stride) mod n`` (stride derived from the seed, never 0), so XY
routes overlap and the routers genuinely arbitrate between input ports.

Pairability: the producers and consumers are decoupled threads in both
modes; ``reference`` mode builds every accelerator-facing
:class:`~repro.fifo.packet_fifo.PacketSmartFifo` with ``sync_on_access``
(the case-study reference policy), ``smart`` mode without.  Both policies
produce bit-identical dates — only the context-switch count changes — so
the locally-timestamped traces diff empty after reordering.

Oracle (:meth:`NocStressScenario.verify`):

* **conservation** — every consumer receives exactly its stream's seeded
  word sequence, in order;
* **per-router arbitration accounting** — each router forwarded exactly
  ``packets_per_stream`` packets per stream whose XY route crosses it
  (computed statically from the routing function), and the flit counts
  match ``packet_size + 1`` header+payload flits per packet;
* **in-order delivery** — each destination interface saw every stream's
  sequence numbers strictly increasing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..fifo.packet_fifo import PacketSmartFifo
from ..kernel.simtime import TimeUnit, ns
from ..kernel.simulator import Simulator
from ..soc.noc import DestNetworkInterface, Mesh, SourceNetworkInterface
from .base import TimingMode, WorkloadModule


@dataclass
class NocStressConfig:
    """Parameters of one NoC stress scenario (timing in integer ns)."""

    seed: int = 1
    mesh_width: int = 2
    mesh_height: int = 2
    packets_per_stream: int = 6
    packet_size: int = 2
    fifo_depth: int = 4
    noc_cycle_ns: int = 2
    max_producer_gap_ns: int = 12
    max_consumer_gap_ns: int = 9

    def __post_init__(self) -> None:
        for name in ("mesh_width", "mesh_height", "packets_per_stream",
                     "packet_size", "fifo_depth", "noc_cycle_ns",
                     "max_producer_gap_ns", "max_consumer_gap_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"NocStressConfig.{name} must be positive, "
                    f"got {getattr(self, name)}"
                )
        if self.packet_size > self.fifo_depth:
            raise ValueError("packet_size cannot exceed fifo_depth")
        if self.mesh_width * self.mesh_height < 2:
            raise ValueError("the mesh needs at least two routers")

    @property
    def n_streams(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def words_per_stream(self) -> int:
        return self.packets_per_stream * self.packet_size

    def router_coords(self) -> List[Tuple[int, int]]:
        """Router coordinates in stream-index order (row-major)."""
        return [
            (x, y)
            for y in range(self.mesh_height)
            for x in range(self.mesh_width)
        ]

    def stream_stride(self) -> int:
        """Seeded, non-zero rotation mapping source to destination router."""
        return 1 + random.Random(self.seed * 65537).randrange(self.n_streams - 1)

    def stream_words(self, stream: int) -> List[int]:
        rng = random.Random(self.seed * 92821 + stream)
        return [rng.randrange(0, 1 << 16) for _ in range(self.words_per_stream)]


def xy_route(src: Tuple[int, int], dst: Tuple[int, int]) -> List[Tuple[int, int]]:
    """Router coordinates an XY-routed packet crosses, endpoints included."""
    x, y = src
    path = [(x, y)]
    while x != dst[0]:
        x += 1 if dst[0] > x else -1
        path.append((x, y))
    while y != dst[1]:
        y += 1 if dst[1] > y else -1
        path.append((x, y))
    return path


class StreamProducer(WorkloadModule):
    """Decoupled thread feeding one stream's ingress packet FIFO."""

    def __init__(self, parent, name, fifo, words, stream: int,
                 config: NocStressConfig, burst: bool = False):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.fifo = fifo
        self.words = list(words)
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 15485863 + stream)
        self.create_thread(self.run)

    def run(self):
        size = self.config.packet_size
        if self.burst:
            # Same RNG order as the word loop: one randint after each write.
            gaps = [
                self.rng.randint(1, self.config.max_producer_gap_ns)
                for _ in self.words
            ]

            def message(index, _word):
                if (index + 1) % size == 0:
                    return f"packet {(index + 1) // size - 1} fed"
                return None

            yield from self.burst_write(
                self.fifo, self.words, gaps, message_fn=message
            )
            self.mark_finished()
            return
        for index, word in enumerate(self.words):
            yield from self.fifo.write(word)
            self.items_processed += 1
            if (index + 1) % size == 0:
                self.checkpoint(f"packet {(index + 1) // size - 1} fed")
            yield from self.advance(
                self.rng.randint(1, self.config.max_producer_gap_ns)
            )
        self.mark_finished()


class StreamConsumer(WorkloadModule):
    """Decoupled thread draining one stream's egress Smart FIFO."""

    def __init__(self, parent, name, fifo, count: int, stream: int,
                 config: NocStressConfig, burst: bool = False):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.fifo = fifo
        self.count = count
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 49979687 + stream)
        self.values: List[int] = []
        self.create_thread(self.run)

    def run(self):
        size = self.config.packet_size
        if self.burst:
            gaps = [
                self.rng.randint(1, self.config.max_consumer_gap_ns)
                for _ in range(self.count)
            ]

            def message(index, word):
                if (index + 1) % size == 0:
                    return (
                        f"packet {(index + 1) // size - 1} drained "
                        f"(word {word})"
                    )
                return None

            words = yield from self.burst_read(
                self.fifo, self.count, gaps, message_fn=message
            )
            self.values.extend(words)
            self.mark_finished()
            return
        for index in range(self.count):
            value = yield from self.fifo.read()
            self.values.append(value)
            self.items_processed += 1
            if (index + 1) % size == 0:
                self.checkpoint(
                    f"packet {(index + 1) // size - 1} drained "
                    f"(word {value})"
                )
            yield from self.advance(
                self.rng.randint(1, self.config.max_consumer_gap_ns)
            )
        self.mark_finished()


class NocStressScenario:
    """Mesh of method routers under cross-traffic from every local port."""

    def __init__(self, sim: Simulator, config: NocStressConfig = None,
                 sync_on_access: bool = False, burst: bool = False):
        self.sim = sim
        self.config = config or NocStressConfig()
        self.sync_on_access = sync_on_access
        self.burst = burst
        cfg = self.config

        self.mesh = Mesh(
            sim,
            "mesh",
            width=cfg.mesh_width,
            height=cfg.mesh_height,
            queue_depth=max(cfg.fifo_depth, 2),
            cycle_time=ns(cfg.noc_cycle_ns),
        )
        coords = cfg.router_coords()
        stride = cfg.stream_stride()
        self.routes: Dict[int, List[Tuple[int, int]]] = {}
        self.producers: List[StreamProducer] = []
        self.consumers: List[StreamConsumer] = []
        self._source_nis: Dict[Tuple[int, int], SourceNetworkInterface] = {}
        self._dest_nis: Dict[Tuple[int, int], DestNetworkInterface] = {}

        for stream in range(cfg.n_streams):
            src = coords[stream]
            dst = coords[(stream + stride) % cfg.n_streams]
            self.routes[stream] = xy_route(src, dst)
            stream_id = f"s{stream}"

            ingress = PacketSmartFifo(
                sim,
                f"ingress{stream}",
                depth=cfg.fifo_depth,
                packet_size=cfg.packet_size,
                sync_on_access=sync_on_access,
                burst=burst,
            )
            source_ni = self._source_ni_at(src)
            source_ni.add_stream(stream_id, ingress, dst, stream_id)
            self.producers.append(
                StreamProducer(
                    sim, f"producer{stream}", ingress,
                    cfg.stream_words(stream), stream, cfg, burst=burst,
                )
            )

            egress = PacketSmartFifo(
                sim,
                f"egress{stream}",
                depth=cfg.fifo_depth,
                packet_size=cfg.packet_size,
                sync_on_access=sync_on_access,
                burst=burst,
            )
            dest_ni = self._dest_ni_at(dst)
            dest_ni.connect_egress(stream_id, egress)
            self.consumers.append(
                StreamConsumer(
                    sim, f"consumer{stream}", egress,
                    cfg.words_per_stream, stream, cfg, burst=burst,
                )
            )

    # ------------------------------------------------------------------
    def _source_ni_at(self, coords: Tuple[int, int]) -> SourceNetworkInterface:
        if coords not in self._source_nis:
            ni = SourceNetworkInterface(
                self.sim,
                f"src_ni_{coords[0]}_{coords[1]}",
                packet_size=self.config.packet_size,
                injection_cycle=ns(self.config.noc_cycle_ns),
            )
            ni.connect_router(self.mesh.injection_link(coords))
            self._source_nis[coords] = ni
        return self._source_nis[coords]

    def _dest_ni_at(self, coords: Tuple[int, int]) -> DestNetworkInterface:
        if coords not in self._dest_nis:
            ni = DestNetworkInterface(
                self.sim,
                f"dst_ni_{coords[0]}_{coords[1]}",
                arrival_queue_depth=max(self.config.fifo_depth, 4),
                word_delivery_time=ns(self.config.noc_cycle_ns),
            )
            self.mesh.attach_local_sink(coords, ni.arrival_link())
            self._dest_nis[coords] = ni
        return self._dest_nis[coords]

    # ------------------------------------------------------------------
    def run(self) -> None:
        self.sim.run()

    def expected_router_packets(self) -> Dict[Tuple[int, int], int]:
        """Packets each router must forward, from the static XY routes."""
        expected: Dict[Tuple[int, int], int] = {
            coords: 0 for coords in self.config.router_coords()
        }
        for route in self.routes.values():
            for coords in route:
                expected[coords] += self.config.packets_per_stream
        return expected

    def verify(self) -> None:
        """The NoC stress oracle (see the module docstring)."""
        cfg = self.config
        # Conservation: every stream delivered its exact word sequence.
        for stream, consumer in enumerate(self.consumers):
            expected_words = cfg.stream_words(stream)
            assert consumer.values == expected_words, (
                f"stream {stream} delivered {len(consumer.values)} words, "
                f"mismatch with the seeded sequence"
            )
        # Per-router arbitration accounting against the XY routes.
        expected = self.expected_router_packets()
        flits_per_packet = cfg.packet_size + 1
        for coords, router in self.mesh.routers.items():
            assert router.packets_routed == expected[coords], (
                f"router {coords} forwarded {router.packets_routed} packets, "
                f"expected {expected[coords]}"
            )
            assert router.flits_routed == expected[coords] * flits_per_packet
        # Every source interface injected all of its packets.
        injected = sum(ni.packets_injected for ni in self._source_nis.values())
        assert injected == cfg.n_streams * cfg.packets_per_stream
        # In-order delivery per stream at the destination interfaces.
        for ni in self._dest_nis.values():
            for stream_id, sequences in ni.sequences.items():
                assert sequences == sorted(sequences), (
                    f"stream {stream_id} arrived out of order: {sequences}"
                )

    # ------------------------------------------------------------------
    def consumer_finish_dates_ns(self) -> List[float]:
        return [
            consumer.finish_time.to(TimeUnit.NS)
            if consumer.finish_time is not None
            else -1.0
            for consumer in self.consumers
        ]

    def checksums(self) -> List[int]:
        return [sum(consumer.values) for consumer in self.consumers]

    @property
    def total_packets_routed(self) -> int:
        return self.mesh.total_packets_routed
