"""Benchmark and validation workloads.

* :mod:`repro.workloads.streaming` — the Fig. 1/2/3 writer/reader example
  and the Fig. 5 source/transmitter/sink pipeline;
* :mod:`repro.workloads.video` — a video-decoder-like accelerator chain;
* :mod:`repro.workloads.random_traffic` — seeded random producer/consumer
  scenarios with monitor sampling, used by the trace-equivalence
  validation (Section IV-A);
* :mod:`repro.workloads.bursty` — seeded bursty producer with a steady
  consumer, swinging the FIFO between full and empty;
* :mod:`repro.workloads.contention` — multi-writer/multi-reader arbiter
  contention around one Smart FIFO (Section III arbiters);
* :mod:`repro.workloads.noc_stress` — NoC-only router stress: a mesh of
  method-process routers under cross traffic, per-router arbitration
  oracle (Section IV-C infrastructure in isolation);
* :mod:`repro.workloads.packet_stream` — the packet-granularity Smart FIFO
  API driven end to end against a word-level oracle;
* :mod:`repro.workloads.mixed` — a mixed smart/regular FIFO topology with
  one decoupled-to-regular domain boundary;
* :mod:`repro.workloads.fault_drop` — seeded dropped-packet fault
  injection: the paired trace diff must flag the divergence
  (negative-path coverage of the Section IV-A methodology).
"""

from .base import TimingMode, WorkloadModule
from .bursty import (
    BurstyConfig,
    BurstyConsumer,
    BurstyProducer,
    BurstyScenario,
    run_bursty_pair,
)
from .contention import (
    ArbiterContentionScenario,
    ContentionConfig,
    ContentionReader,
    ContentionWriter,
)
from .fault_drop import (
    FaultConsumer,
    FaultDropConfig,
    FaultDropScenario,
    FaultProducer,
    FaultyRelay,
)
from .mixed import (
    BackConsumer,
    DomainBridge,
    FrontProducer,
    MixedTopologyConfig,
    MixedTopologyScenario,
)
from .noc_stress import (
    NocStressConfig,
    NocStressScenario,
    StreamConsumer,
    StreamProducer,
    xy_route,
)
from .packet_stream import (
    PacketConsumer,
    PacketProducer,
    PacketStreamConfig,
    PacketStreamScenario,
    RelayInterface,
)
from .random_traffic import (
    FillLevelMonitor,
    RandomConsumer,
    RandomProducer,
    RandomTrafficConfig,
    RandomTrafficScenario,
    run_pair,
)
from .streaming import (
    ExampleMode,
    PipelineModel,
    Sink,
    Source,
    StreamingConfig,
    StreamingPipeline,
    Transmitter,
    WriterReaderExample,
)
from .video import (
    BitstreamParser,
    ComputeStage,
    Display,
    VideoConfig,
    VideoPipeline,
)

__all__ = [
    "ArbiterContentionScenario",
    "BackConsumer",
    "BitstreamParser",
    "BurstyConfig",
    "BurstyConsumer",
    "BurstyProducer",
    "BurstyScenario",
    "ContentionConfig",
    "ContentionReader",
    "ContentionWriter",
    "ComputeStage",
    "Display",
    "DomainBridge",
    "ExampleMode",
    "FaultConsumer",
    "FaultDropConfig",
    "FaultDropScenario",
    "FaultProducer",
    "FaultyRelay",
    "FillLevelMonitor",
    "FrontProducer",
    "MixedTopologyConfig",
    "MixedTopologyScenario",
    "NocStressConfig",
    "NocStressScenario",
    "PacketConsumer",
    "PacketProducer",
    "PacketStreamConfig",
    "PacketStreamScenario",
    "PipelineModel",
    "RandomConsumer",
    "RandomProducer",
    "RandomTrafficConfig",
    "RandomTrafficScenario",
    "RelayInterface",
    "Sink",
    "Source",
    "StreamConsumer",
    "StreamProducer",
    "StreamingConfig",
    "StreamingPipeline",
    "TimingMode",
    "Transmitter",
    "VideoConfig",
    "VideoPipeline",
    "WorkloadModule",
    "WriterReaderExample",
    "run_bursty_pair",
    "run_pair",
    "xy_route",
]
