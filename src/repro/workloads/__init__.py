"""Benchmark and validation workloads.

* :mod:`repro.workloads.streaming` — the Fig. 1/2/3 writer/reader example
  and the Fig. 5 source/transmitter/sink pipeline;
* :mod:`repro.workloads.video` — a video-decoder-like accelerator chain;
* :mod:`repro.workloads.random_traffic` — seeded random producer/consumer
  scenarios with monitor sampling, used by the trace-equivalence
  validation (Section IV-A);
* :mod:`repro.workloads.bursty` — seeded bursty producer with a steady
  consumer, swinging the FIFO between full and empty;
* :mod:`repro.workloads.contention` — multi-writer/multi-reader arbiter
  contention around one Smart FIFO (Section III arbiters).
"""

from .base import TimingMode, WorkloadModule
from .bursty import (
    BurstyConfig,
    BurstyConsumer,
    BurstyProducer,
    BurstyScenario,
    run_bursty_pair,
)
from .contention import (
    ArbiterContentionScenario,
    ContentionConfig,
    ContentionReader,
    ContentionWriter,
)
from .random_traffic import (
    FillLevelMonitor,
    RandomConsumer,
    RandomProducer,
    RandomTrafficConfig,
    RandomTrafficScenario,
    run_pair,
)
from .streaming import (
    ExampleMode,
    PipelineModel,
    Sink,
    Source,
    StreamingConfig,
    StreamingPipeline,
    Transmitter,
    WriterReaderExample,
)
from .video import (
    BitstreamParser,
    ComputeStage,
    Display,
    VideoConfig,
    VideoPipeline,
)

__all__ = [
    "ArbiterContentionScenario",
    "BitstreamParser",
    "BurstyConfig",
    "BurstyConsumer",
    "BurstyProducer",
    "BurstyScenario",
    "ContentionConfig",
    "ContentionReader",
    "ContentionWriter",
    "ComputeStage",
    "Display",
    "ExampleMode",
    "FillLevelMonitor",
    "PipelineModel",
    "RandomConsumer",
    "RandomProducer",
    "RandomTrafficConfig",
    "RandomTrafficScenario",
    "Sink",
    "Source",
    "StreamingConfig",
    "StreamingPipeline",
    "TimingMode",
    "Transmitter",
    "VideoConfig",
    "VideoPipeline",
    "WorkloadModule",
    "WriterReaderExample",
    "run_bursty_pair",
    "run_pair",
]
