"""Shared machinery for the benchmark workloads.

Every workload module (sources, sinks, transmitters, accelerator-like
stages, random producers/consumers) exists in the three flavours compared
throughout the paper's evaluation:

* ``UNTIMED``   — no timing annotation at all (fastest, no timing info);
* ``TIMED_WAIT`` — timing annotations executed as plain ``wait`` calls, one
  context switch per annotation (the paper's *TDless* reference);
* ``DECOUPLED`` — timing annotations executed as ``inc`` on the process
  local time (the paper's *TDfull* model, to be combined with Smart FIFOs).

To keep the comparison fair, all flavours run exactly the same module code;
only :meth:`WorkloadModule.advance` changes behaviour.  The helper is a
generator in every mode so the per-word overhead of driving it is identical
across flavours.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from ..kernel.module import Module
from ..kernel.process import Timeout
from ..kernel.simtime import SimTime, TimeUnit, as_time
from ..kernel.simulator import Simulator
from ..td.decoupling import DecoupledMixin


class TimingMode(enum.Enum):
    """How timing annotations are executed by a workload module."""

    UNTIMED = "untimed"
    TIMED_WAIT = "timed_wait"
    DECOUPLED = "decoupled"
    #: Classic TLM-2.0 style: accumulate annotations on the local time and
    #: synchronize when the global quantum is reached.  Fast, but accuracy
    #: depends on the quantum (Section II-A discussion); used by the
    #: EXP-QUANTUM ablation.
    QUANTUM = "quantum"

    @property
    def is_timed(self) -> bool:
        return self is not TimingMode.UNTIMED

    @property
    def is_decoupled(self) -> bool:
        return self in (TimingMode.DECOUPLED, TimingMode.QUANTUM)


class WorkloadModule(DecoupledMixin, Module):
    """Base class of all workload modules.

    Subclasses implement their behaviour once and call
    ``yield from self.advance(duration)`` wherever the real hardware would
    spend time.  The constructor-selected :class:`TimingMode` decides
    whether that advances nothing, the kernel time (``wait``) or the local
    time (``inc``).
    """

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        timing: TimingMode = TimingMode.TIMED_WAIT,
    ):
        super().__init__(parent, name)
        self.timing = timing
        #: Local date at which the module finished its job (None until done).
        self.finish_time: Optional[SimTime] = None
        #: Number of payload items this module processed.
        self.items_processed = 0
        self._quantum_keeper = None
        # Hot-path caches for the decoupled annotation path.
        self._scheduler = self.sim.scheduler
        from ..td.local_time import get_local_time_manager

        self._ltm = get_local_time_manager(self.sim)

    @property
    def quantum_keeper(self):
        """Quantum keeper used in :attr:`TimingMode.QUANTUM` (lazily built)."""
        if self._quantum_keeper is None:
            from ..td.quantum import QuantumKeeper

            self._quantum_keeper = QuantumKeeper(self)
        return self._quantum_keeper

    # ------------------------------------------------------------------
    def advance(self, duration, unit: TimeUnit = TimeUnit.NS):
        """Spend ``duration`` of simulated time according to the timing mode.

        Returns an iterable for the caller to ``yield from``.  The
        ``DECOUPLED`` branch is the hot path of every finely-annotated model
        (one call per word in the Fig. 5 benchmark): it updates the local
        time directly — no generic ``inc``/``SimTime`` layer — and returns
        an empty tuple, so no generator is allocated for a non-waiting
        annotation.
        """
        timing = self.timing
        if timing is TimingMode.DECOUPLED:
            delta_fs = duration * unit
            if type(delta_fs) is not int:
                delta_fs = round(delta_fs)
            self._ltm.advance_fs(self._scheduler.current_process, delta_fs)
            return ()
        if timing is TimingMode.UNTIMED:
            return ()
        if timing is TimingMode.TIMED_WAIT:
            return (Timeout(as_time(duration, unit)),)
        return self._advance_quantum(duration, unit)

    def _advance_quantum(self, duration, unit: TimeUnit):
        """Quantum-keeper branch of :meth:`advance` (may actually wait)."""
        self.quantum_keeper.inc(duration, unit)
        yield from self.quantum_keeper.sync_if_needed()

    def mark_finished(self) -> None:
        """Record the completion date (local date for decoupled modules)."""
        if self.timing.is_decoupled:
            self.finish_time = self.local_time_stamp()
        else:
            self.finish_time = self.now

    def checkpoint(self, message: str) -> None:
        """Trace helper stamping the local date in decoupled mode.

        Emits through whatever :class:`~repro.kernel.tracing.TraceSink`
        the simulator carries; with tracing off, the date bookkeeping is
        skipped entirely.
        """
        if not self.sim.trace.enabled:
            return
        if self.timing.is_decoupled:
            self.log(message)
        else:
            self.log(message, local_time=self.now)
