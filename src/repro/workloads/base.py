"""Shared machinery for the benchmark workloads.

Every workload module (sources, sinks, transmitters, accelerator-like
stages, random producers/consumers) exists in the three flavours compared
throughout the paper's evaluation:

* ``UNTIMED``   — no timing annotation at all (fastest, no timing info);
* ``TIMED_WAIT`` — timing annotations executed as plain ``wait`` calls, one
  context switch per annotation (the paper's *TDless* reference);
* ``DECOUPLED`` — timing annotations executed as ``inc`` on the process
  local time (the paper's *TDfull* model, to be combined with Smart FIFOs).

To keep the comparison fair, all flavours run exactly the same module code;
only :meth:`WorkloadModule.advance` changes behaviour.  The helper is a
generator in every mode so the per-word overhead of driving it is identical
across flavours.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Sequence, Union

from ..fifo.smart_fifo import SmartFifo
from ..kernel.module import Module
from ..kernel.process import Timeout
from ..kernel.simtime import SimTime, TimeUnit, as_time
from ..kernel.simulator import Simulator
from ..td.decoupling import DecoupledMixin

#: Optional per-word checkpoint factory of the burst helpers:
#: ``message_fn(index, word) -> message or None`` (None entries are skipped).
MessageFn = Callable[[int, Any], Optional[str]]


def _to_fs(gap_ns) -> int:
    """Integer femtoseconds for one nanosecond gap (mirrors ``advance``:
    non-integer products are rounded, exactly like the word path does)."""
    gap_fs = gap_ns * TimeUnit.NS
    if type(gap_fs) is not int:
        gap_fs = round(gap_fs)
    return gap_fs


class TimingMode(enum.Enum):
    """How timing annotations are executed by a workload module."""

    UNTIMED = "untimed"
    TIMED_WAIT = "timed_wait"
    DECOUPLED = "decoupled"
    #: Classic TLM-2.0 style: accumulate annotations on the local time and
    #: synchronize when the global quantum is reached.  Fast, but accuracy
    #: depends on the quantum (Section II-A discussion); used by the
    #: EXP-QUANTUM ablation.
    QUANTUM = "quantum"

    @property
    def is_timed(self) -> bool:
        return self is not TimingMode.UNTIMED

    @property
    def is_decoupled(self) -> bool:
        return self in (TimingMode.DECOUPLED, TimingMode.QUANTUM)


class WorkloadModule(DecoupledMixin, Module):
    """Base class of all workload modules.

    Subclasses implement their behaviour once and call
    ``yield from self.advance(duration)`` wherever the real hardware would
    spend time.  The constructor-selected :class:`TimingMode` decides
    whether that advances nothing, the kernel time (``wait``) or the local
    time (``inc``).
    """

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        timing: TimingMode = TimingMode.TIMED_WAIT,
    ):
        super().__init__(parent, name)
        self.timing = timing
        #: Local date at which the module finished its job (None until done).
        self.finish_time: Optional[SimTime] = None
        #: Number of payload items this module processed.
        self.items_processed = 0
        self._quantum_keeper = None
        # Hot-path caches for the decoupled annotation path.
        self._scheduler = self.sim.scheduler
        from ..td.local_time import get_local_time_manager

        self._ltm = get_local_time_manager(self.sim)
        # Dependency recording (record-and-replay): None on the hot path.
        self._dep_rec = self.sim.dep_recorder

    @property
    def quantum_keeper(self):
        """Quantum keeper used in :attr:`TimingMode.QUANTUM` (lazily built)."""
        if self._quantum_keeper is None:
            from ..td.quantum import QuantumKeeper

            self._quantum_keeper = QuantumKeeper(self)
        return self._quantum_keeper

    # ------------------------------------------------------------------
    def advance(self, duration, unit: TimeUnit = TimeUnit.NS):
        """Spend ``duration`` of simulated time according to the timing mode.

        Returns an iterable for the caller to ``yield from``.  The
        ``DECOUPLED`` branch is the hot path of every finely-annotated model
        (one call per word in the Fig. 5 benchmark): it updates the local
        time directly — no generic ``inc``/``SimTime`` layer — and returns
        an empty tuple, so no generator is allocated for a non-waiting
        annotation.
        """
        timing = self.timing
        if timing is TimingMode.DECOUPLED:
            delta_fs = duration * unit
            if type(delta_fs) is not int:
                delta_fs = round(delta_fs)
            self._ltm.advance_fs(self._scheduler.current_process, delta_fs)
            if self._dep_rec is not None:
                self._dep_rec.inc(delta_fs)
            return ()
        if timing is TimingMode.UNTIMED:
            return ()
        if timing is TimingMode.TIMED_WAIT:
            duration = as_time(duration, unit)
            if self._dep_rec is not None:
                self._dep_rec.timed(duration.femtoseconds)
            return (Timeout(duration),)
        return self._advance_quantum(duration, unit)

    def _advance_quantum(self, duration, unit: TimeUnit):
        """Quantum-keeper branch of :meth:`advance` (may actually wait)."""
        if self._dep_rec is not None:
            self._dep_rec.quantum(as_time(duration, unit).femtoseconds)
        self.quantum_keeper.inc(duration, unit)
        yield from self.quantum_keeper.sync_if_needed()

    # ------------------------------------------------------------------
    # Burst (span) helpers
    # ------------------------------------------------------------------
    def burst_write(self, fifo, words: Sequence[Any], gap_ns,
                    message_fn: Optional[MessageFn] = None):
        """Move ``words`` into ``fifo`` with ``gap_ns`` of time after each
        word (one int, or one int per word); generator.

        In ``DECOUPLED`` mode on a Smart FIFO this uses the native span API
        plus one batched trace emission per burst; every other timing mode
        (and FIFO kind) runs the exact word loop, so the reference half of
        a pair is untouched and word-vs-burst runs stay bit-exact.  Each
        non-None ``message_fn(index, word)`` result becomes a checkpoint
        stamped at that word's insertion date in both paths.
        """
        n = len(words)
        if n == 0:
            return
        per_word = isinstance(gap_ns, (list, tuple))
        if self.timing is TimingMode.DECOUPLED and isinstance(fifo, SmartFifo):
            sim = self.sim
            trace = sim.trace
            want_messages = message_fn is not None and trace.enabled
            dates: Optional[List[int]] = [] if want_messages else None
            if per_word:
                gap_fs = [_to_fs(gap) for gap in gap_ns]
            else:
                gap_fs = _to_fs(gap_ns)
            yield from fifo.write_burst(words, gap_fs, dates)
            self.items_processed += n
            if want_messages:
                pairs = []
                for index in range(n):
                    message = message_fn(index, words[index])
                    if message is not None:
                        pairs.append((dates[index], message))
                if pairs:
                    trace.emit_many(sim.current_process_name(), sim.now_fs,
                                    pairs)
            return
        gaps = gap_ns if per_word else None
        for index in range(n):
            word = words[index]
            yield from fifo.write(word)
            self.items_processed += 1
            if message_fn is not None:
                message = message_fn(index, word)
                if message is not None:
                    self.checkpoint(message)
            yield from self.advance(gap_ns if gaps is None else gaps[index])

    def burst_read(self, fifo, count: int, gap_ns,
                   message_fn: Optional[MessageFn] = None,
                   dates_out: Optional[List[int]] = None):
        """Drain ``count`` words from ``fifo`` with ``gap_ns`` of time after
        each word; generator returning the list of words.

        Span/word dispatch and checkpoint semantics as in
        :meth:`burst_write`.  ``dates_out`` (a list) receives the per-word
        read dates in fs — the word's local read date in decoupled mode,
        the kernel date otherwise, exactly what the word loop observes.
        """
        if count <= 0:
            return []
        per_word = isinstance(gap_ns, (list, tuple))
        if self.timing is TimingMode.DECOUPLED and isinstance(fifo, SmartFifo):
            sim = self.sim
            trace = sim.trace
            want_messages = message_fn is not None and trace.enabled
            dates: Optional[List[int]] = (
                [] if want_messages or dates_out is not None else None
            )
            if per_word:
                gap_fs = [_to_fs(gap) for gap in gap_ns]
            else:
                gap_fs = _to_fs(gap_ns)
            words = yield from fifo.read_burst(count, gap_fs, dates)
            self.items_processed += count
            if want_messages:
                pairs = []
                for index in range(count):
                    message = message_fn(index, words[index])
                    if message is not None:
                        pairs.append((dates[index], message))
                if pairs:
                    trace.emit_many(sim.current_process_name(), sim.now_fs,
                                    pairs)
            if dates_out is not None:
                dates_out.extend(dates)
            return words
        gaps = gap_ns if per_word else None
        words = []
        for index in range(count):
            word = yield from fifo.read()
            words.append(word)
            self.items_processed += 1
            if dates_out is not None:
                if self.timing.is_decoupled:
                    dates_out.append(self.local_time_stamp().femtoseconds)
                else:
                    dates_out.append(self.sim.now_fs)
            if message_fn is not None:
                message = message_fn(index, word)
                if message is not None:
                    self.checkpoint(message)
            yield from self.advance(gap_ns if gaps is None else gaps[index])
        return words

    def mark_finished(self) -> None:
        """Record the completion date (local date for decoupled modules)."""
        if self.timing.is_decoupled:
            self.finish_time = self.local_time_stamp()
        else:
            self.finish_time = self.now

    def checkpoint(self, message: str) -> None:
        """Trace helper stamping the local date in decoupled mode.

        Emits through whatever :class:`~repro.kernel.tracing.TraceSink`
        the simulator carries; with tracing off, the date bookkeeping is
        skipped entirely.
        """
        if not self.sim.trace.enabled:
            return
        if self.timing.is_decoupled:
            self.log(message)
        else:
            self.log(message, local_time=self.now)
