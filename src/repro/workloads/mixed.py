"""Mixed smart/regular FIFO topology.

Real platforms are never uniformly decoupled: the case-study SoC couples
temporally decoupled accelerators (Smart FIFOs) to a non-decoupled NoC
(regular FIFOs) inside one simulation.  This workload distils that mix to
its smallest interesting shape — one pipeline crossing the domain
boundary::

    FrontProducer ──front fifo──> Bridge ──RegularFifo──> BackConsumer
      (decoupled)    (Smart)    (decoupled)  (regular)    (non-decoupled,
                                                           both modes)

* In ``smart`` mode the front half is temporally decoupled over a
  :class:`~repro.fifo.smart_fifo.SmartFifo` and the bridge **synchronizes**
  (``sync()``) before every write into the regular domain — the canonical
  way to hand data from a decoupled producer to non-decoupled logic without
  changing any date (after ``sync()`` the local and global dates coincide).
* In ``reference`` mode the front half runs non-decoupled over a
  :class:`~repro.fifo.regular_fifo.RegularFifo` (timing annotations are
  plain waits, so the process is always synchronized and the same bridge
  code performs a no-op ``sync``).

The back half — a regular FIFO drained by a ``TIMED_WAIT`` consumer — is
built identically in both modes.  Dates are therefore bit-identical across
modes and the locally-timestamped traces diff empty after reordering,
making the spec pairable while genuinely scheduling decoupled and
non-decoupled processes around both FIFO kinds in the same simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simtime import TimeUnit
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class MixedTopologyConfig:
    """Parameters of one mixed-topology scenario (timing in integer ns)."""

    seed: int = 1
    item_count: int = 30
    fifo_depth: int = 4
    #: Depth of the regular FIFO of the non-decoupled back half.
    back_depth: int = 2
    max_producer_gap_ns: int = 16
    max_bridge_gap_ns: int = 7
    max_consumer_gap_ns: int = 12

    def __post_init__(self) -> None:
        for name in ("item_count", "fifo_depth", "back_depth",
                     "max_producer_gap_ns", "max_bridge_gap_ns",
                     "max_consumer_gap_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"MixedTopologyConfig.{name} must be positive, "
                    f"got {getattr(self, name)}"
                )

    def values(self) -> List[int]:
        rng = random.Random(self.seed * 423307)
        return [rng.randrange(0, 1 << 16) for _ in range(self.item_count)]


class FrontProducer(WorkloadModule):
    """Feeds the decoupled (or reference) front half of the pipeline."""

    def __init__(self, parent, name, fifo, config: MixedTopologyConfig,
                 timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        # One rng draw per word in both paths, in the same order, so the
        # burst run feeds the identical gap sequence.
        rng = random.Random(cfg.seed * 54013 + 1)
        if self.burst:
            values = cfg.values()
            gaps = [
                rng.randint(1, cfg.max_producer_gap_ns) for _ in values
            ]
            yield from self.burst_write(
                self.fifo,
                values,
                gaps,
                message_fn=lambda index, _word: f"fed {index}",
            )
            self.mark_finished()
            return
        for index, value in enumerate(cfg.values()):
            yield from self.fifo.write(value)
            self.items_processed += 1
            self.checkpoint(f"fed {index}")
            yield from self.advance(
                rng.randint(1, cfg.max_producer_gap_ns)
            )
        self.mark_finished()


class DomainBridge(WorkloadModule):
    """Crosses from the (possibly decoupled) front into the regular domain.

    The bridge reads the front FIFO, spends a seeded processing delay, then
    ``sync()``-s and forwards into the regular FIFO: a regular FIFO carries
    no per-item dates, so the handoff must happen at the global date —
    synchronizing first guarantees the decoupled and the reference build
    write at exactly the same dates.
    """

    def __init__(self, parent, name, fifo_in, fifo_out, config, timing):
        super().__init__(parent, name, timing)
        self.fifo_in = fifo_in
        self.fifo_out = fifo_out
        self.config = config
        self.rng = random.Random(config.seed * 28001 + 2)
        self.create_thread(self.run)

    def run(self):
        for index in range(self.config.item_count):
            value = yield from self.fifo_in.read()
            self.items_processed += 1
            yield from self.advance(
                self.rng.randint(1, self.config.max_bridge_gap_ns)
            )
            yield from self.sync()
            yield from self.fifo_out.write(value)
            self.checkpoint(f"bridged {index}")
        self.mark_finished()


class BackConsumer(WorkloadModule):
    """Non-decoupled consumer of the regular back half (both modes)."""

    def __init__(self, parent, name, fifo, config: MixedTopologyConfig):
        super().__init__(parent, name, TimingMode.TIMED_WAIT)
        self.fifo = fifo
        self.config = config
        self.rng = random.Random(config.seed * 69061 + 3)
        self.values: List[int] = []
        self.create_thread(self.run)

    def run(self):
        for index in range(self.config.item_count):
            value = yield from self.fifo.read()
            self.values.append(value)
            self.items_processed += 1
            self.checkpoint(f"delivered {index} (value {value})")
            yield from self.advance(
                self.rng.randint(1, self.config.max_consumer_gap_ns)
            )
        self.mark_finished()


class MixedTopologyScenario:
    """Decoupled front half, regular back half, one domain boundary."""

    def __init__(self, sim: Simulator, decoupled: bool,
                 config: MixedTopologyConfig = None, burst: bool = False):
        self.sim = sim
        self.config = config or MixedTopologyConfig()
        self.decoupled = decoupled
        cfg = self.config
        if decoupled:
            self.front_fifo: FifoInterface = SmartFifo(
                sim, "front", depth=cfg.fifo_depth
            )
            timing = TimingMode.DECOUPLED
        else:
            self.front_fifo = RegularFifo(sim, "front", depth=cfg.fifo_depth)
            timing = TimingMode.TIMED_WAIT
        #: The regular back half is identical in both modes.
        self.back_fifo = RegularFifo(sim, "back", depth=cfg.back_depth)
        # Only the front producer can burst: the bridge syncs per item at
        # the domain boundary and the back half is a regular FIFO.
        self.producer = FrontProducer(
            sim, "producer", self.front_fifo, cfg, timing, burst=burst
        )
        self.bridge = DomainBridge(
            sim, "bridge", self.front_fifo, self.back_fifo, cfg, timing
        )
        self.consumer = BackConsumer(sim, "consumer", self.back_fifo, cfg)

    def run(self) -> None:
        self.sim.run()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        cfg = self.config
        assert self.consumer.values == cfg.values(), (
            "the mixed pipeline reordered or corrupted the stream"
        )
        assert self.producer.items_processed == cfg.item_count
        assert self.bridge.items_processed == cfg.item_count

    def checksum(self) -> int:
        return sum(self.consumer.values)

    def completion_ns(self) -> float:
        finish = self.consumer.finish_time
        return finish.to(TimeUnit.NS) if finish is not None else -1.0
