"""Packet-granularity Smart FIFO stream (the Section IV-C extension, alone).

Drives every access of the :class:`~repro.fifo.packet_fifo.PacketSmartFifo`
packet API through one pipeline::

    PacketProducer ──write_packet──> fifo_in ──┐
                                               │ RelayInterface (SC_METHOD:
                                               │ packet_available /
                                               │ nb_read_packet /
                                               │ space_for_packet /
                                               │ nb_write_packet)
    PacketConsumer <──read_packet── fifo_out <─┘

The producer is a decoupled thread emitting seeded packets with seeded
local-time gaps; the relay is a method process (no thread, as the paper's
network interfaces) moving complete packets between the two FIFOs; the
consumer is a decoupled thread whose local date after each ``read_packet``
is the date the packet really completed.

The oracle is **word-level**: the seeded word sequence is recomputed
outside the simulation and the consumer must deliver exactly that sequence,
in order, with all four packet counters (``packets_written``/
``packets_read`` on both FIFOs) equal to the packet count — so a packet
API that dropped, duplicated or tore a word cannot pass.

Pairability: ``reference`` mode builds both FIFOs with ``sync_on_access``
(one synchronization per access, the case-study reference policy), which
changes the context-switch count but none of the dates; the
locally-timestamped traces of the two modes diff empty after reordering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..fifo.packet_fifo import PacketSmartFifo
from ..kernel.simtime import TimeUnit
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class PacketStreamConfig:
    """Parameters of one packet-stream scenario (timing in integer ns)."""

    seed: int = 1
    n_packets: int = 10
    packet_size: int = 2
    fifo_depth: int = 4
    max_producer_gap_ns: int = 14
    max_consumer_gap_ns: int = 10

    def __post_init__(self) -> None:
        for name in ("n_packets", "packet_size", "fifo_depth",
                     "max_producer_gap_ns", "max_consumer_gap_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"PacketStreamConfig.{name} must be positive, "
                    f"got {getattr(self, name)}"
                )
        if self.packet_size > self.fifo_depth:
            raise ValueError("packet_size cannot exceed fifo_depth")

    @property
    def total_words(self) -> int:
        return self.n_packets * self.packet_size

    def packets(self) -> List[Tuple[int, ...]]:
        """The seeded packet payloads (the word-level oracle)."""
        rng = random.Random(self.seed * 131071)
        return [
            tuple(rng.randrange(0, 1 << 16) for _ in range(self.packet_size))
            for _ in range(self.n_packets)
        ]


class PacketProducer(WorkloadModule):
    """Decoupled thread writing whole packets with ``write_packet``."""

    def __init__(self, parent, name, fifo, config: PacketStreamConfig):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.fifo = fifo
        self.config = config
        self.rng = random.Random(config.seed * 75041 + 1)
        self.create_thread(self.run)

    def run(self):
        for index, words in enumerate(self.config.packets()):
            yield from self.fifo.write_packet(list(words))
            self.items_processed += len(words)
            self.checkpoint(f"packet {index} written")
            yield from self.advance(
                self.rng.randint(1, self.config.max_producer_gap_ns)
            )
        self.mark_finished()


class RelayInterface(WorkloadModule):
    """Method process moving complete packets between the two FIFOs.

    Models the paper's no-thread network interface: non-blocking packet
    reads guarded by :meth:`~repro.fifo.packet_fifo.PacketSmartFifo
    .packet_available`, non-blocking packet writes guarded by
    :meth:`~repro.fifo.packet_fifo.PacketSmartFifo.space_for_packet`; both
    guards re-arm the events the method is sensitive to, so it can never
    miss the date a packet completes or room appears.
    """

    def __init__(self, parent, name, fifo_in, fifo_out):
        super().__init__(parent, name, TimingMode.UNTIMED)
        self.fifo_in = fifo_in
        self.fifo_out = fifo_out
        self.packets_relayed = 0
        self.create_method(
            self._relay,
            name="relay",
            sensitivity=[fifo_in.not_empty_event, fifo_out.not_full_event],
        )

    def _relay(self) -> None:
        while self.fifo_in.packet_available():
            if not self.fifo_out.space_for_packet():
                return  # re-triggered by fifo_out.not_full_event
            words = self.fifo_in.nb_read_packet()
            if not self.fifo_out.nb_write_packet(words):  # pragma: no cover
                raise AssertionError("space_for_packet lied to the relay")
            self.packets_relayed += 1
            self.items_processed += len(words)


class PacketConsumer(WorkloadModule):
    """Decoupled thread draining whole packets with ``read_packet``."""

    def __init__(self, parent, name, fifo, config: PacketStreamConfig):
        super().__init__(parent, name, TimingMode.DECOUPLED)
        self.fifo = fifo
        self.config = config
        self.rng = random.Random(config.seed * 86243 + 2)
        self.packets: List[Tuple[int, ...]] = []
        self.packet_dates_ns: List[float] = []
        self.create_thread(self.run)

    def run(self):
        for index in range(self.config.n_packets):
            words = yield from self.fifo.read_packet()
            self.packets.append(tuple(words))
            self.items_processed += len(words)
            self.packet_dates_ns.append(self.local_time_stamp().to(TimeUnit.NS))
            self.checkpoint(f"packet {index} read (sum {sum(words)})")
            yield from self.advance(
                self.rng.randint(1, self.config.max_consumer_gap_ns)
            )
        self.mark_finished()


class PacketStreamScenario:
    """Producer -> packet FIFO -> method relay -> packet FIFO -> consumer."""

    def __init__(self, sim: Simulator, config: PacketStreamConfig = None,
                 sync_on_access: bool = False, burst: bool = False):
        self.sim = sim
        self.config = config or PacketStreamConfig()
        cfg = self.config
        self.fifo_in = PacketSmartFifo(
            sim, "fifo_in", depth=cfg.fifo_depth,
            packet_size=cfg.packet_size, sync_on_access=sync_on_access,
            burst=burst,
        )
        self.fifo_out = PacketSmartFifo(
            sim, "fifo_out", depth=cfg.fifo_depth,
            packet_size=cfg.packet_size, sync_on_access=sync_on_access,
            burst=burst,
        )
        self.producer = PacketProducer(sim, "producer", self.fifo_in, cfg)
        self.relay = RelayInterface(sim, "relay", self.fifo_in, self.fifo_out)
        self.consumer = PacketConsumer(sim, "consumer", self.fifo_out, cfg)

    def run(self) -> None:
        self.sim.run()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Word-level oracle (see the module docstring)."""
        cfg = self.config
        expected = cfg.packets()
        assert self.consumer.packets == expected, (
            f"consumer delivered {len(self.consumer.packets)} packets, "
            f"mismatch with the seeded sequence"
        )
        assert self.relay.packets_relayed == cfg.n_packets
        # Packet counters on every leg of the pipeline.
        assert self.fifo_in.packets_written == cfg.n_packets   # write_packet
        assert self.fifo_in.packets_read == cfg.n_packets      # nb_read_packet
        assert self.fifo_out.packets_written == cfg.n_packets  # nb_write_packet
        assert self.fifo_out.packets_read == cfg.n_packets     # read_packet
        assert self.fifo_in.total_written == cfg.total_words
        assert self.fifo_out.total_read == cfg.total_words
        # Packet completion dates never decrease for the single consumer.
        dates = self.consumer.packet_dates_ns
        assert dates == sorted(dates)

    def checksum(self) -> int:
        return sum(sum(packet) for packet in self.consumer.packets)
