"""Bursty producer/consumer traffic.

Stream-processing hardware rarely produces data at a constant rate: a DMA
engine or a bitstream refill produces a *burst* of back-to-back words, then
stays idle while the next buffer is fetched.  This workload models that
pattern around a single FIFO — a producer emitting seeded random bursts
separated by long seeded idle gaps, and a consumer draining at a steady
per-item rate — and exists in the two modes of the paper's validation
methodology (Section IV-A): regular FIFO without temporal decoupling, and
Smart FIFO with temporal decoupling.  Burst sizes and gaps are derived from
the seed only, so the reference and decoupled runs replay exactly the same
traffic and their locally-timestamped traces must be identical after
reordering.

The burst shape stresses the Smart FIFO differently from
:mod:`repro.workloads.random_traffic`: the FIFO swings between full (during
a burst, the producer runs far ahead) and empty (during a refill, the
consumer catches up and blocks), so both back-pressure paths are exercised
within one run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class BurstyConfig:
    """Parameters of one bursty scenario (all timing in integer ns)."""

    seed: int = 1
    n_bursts: int = 8
    max_burst: int = 10
    fifo_depth: int = 4
    word_time_ns: int = 5
    min_idle_ns: int = 40
    max_idle_ns: int = 200
    consumer_time_ns: int = 12
    #: Host-CPU busy-wait (milliseconds of *wall clock*) the producer burns
    #: per burst.  Simulated time, traces and extras are untouched, so a
    #: slow-spin spec produces rows byte-identical to its spin-free twin —
    #: the knob exists to make a spec deterministically exceed a wall-clock
    #: budget (``--spec-timeout``) in tests and demos.
    slow_spin_ms: int = 0

    def __post_init__(self) -> None:
        for name in ("n_bursts", "max_burst", "fifo_depth"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"BurstyConfig.{name} must be positive, "
                    f"got {getattr(self, name)}"
                )
        if not 0 <= self.min_idle_ns <= self.max_idle_ns:
            raise ValueError(
                f"BurstyConfig idle range invalid: "
                f"[{self.min_idle_ns}, {self.max_idle_ns}]"
            )
        if self.slow_spin_ms < 0:
            raise ValueError(
                f"BurstyConfig.slow_spin_ms must be >= 0, "
                f"got {self.slow_spin_ms}"
            )

    def burst_sizes(self) -> List[int]:
        """Seeded burst sizes; producer and consumer agree on the total."""
        rng = random.Random(self.seed * 6151 + 3)
        return [rng.randint(1, self.max_burst) for _ in range(self.n_bursts)]

    @property
    def total_items(self) -> int:
        return sum(self.burst_sizes())


class BurstyProducer(WorkloadModule):
    """Writes seeded bursts of consecutive values with long idle gaps."""

    def __init__(self, parent, name, fifo, config: BurstyConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 9973 + 7)
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        value = 0
        if self.burst:
            for burst in cfg.burst_sizes():
                if cfg.slow_spin_ms:
                    _spin_wall_clock(cfg.slow_spin_ms)
                words = list(range(value, value + burst))
                value += burst
                yield from self.burst_write(
                    self.fifo,
                    words,
                    cfg.word_time_ns,
                    message_fn=lambda _index, word: f"burst wr {word}",
                )
                idle = self.rng.randint(cfg.min_idle_ns, cfg.max_idle_ns)
                yield from self.advance(idle)
            self.mark_finished()
            self.checkpoint("producer done")
            return
        for burst in cfg.burst_sizes():
            if cfg.slow_spin_ms:
                _spin_wall_clock(cfg.slow_spin_ms)
            for _ in range(burst):
                yield from self.fifo.write(value)
                self.items_processed += 1
                self.checkpoint(f"burst wr {value}")
                value += 1
                yield from self.advance(cfg.word_time_ns)
            idle = self.rng.randint(cfg.min_idle_ns, cfg.max_idle_ns)
            yield from self.advance(idle)
        self.mark_finished()
        self.checkpoint("producer done")


def _spin_wall_clock(milliseconds: int) -> None:
    """Busy-wait on the host CPU without touching simulated time.

    A busy loop rather than ``time.sleep`` so the spin models a
    *computing* (unpreemptable) slow spec, the case a ``--spec-timeout``
    kill exists for.
    """
    deadline = time.perf_counter() + milliseconds / 1000.0
    while time.perf_counter() < deadline:
        pass


class BurstyConsumer(WorkloadModule):
    """Drains the FIFO at a steady per-item rate, checking the order."""

    def __init__(self, parent, name, fifo, config: BurstyConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.values: List[int] = []
        self.create_thread(self.run)

    def run(self):
        cfg = self.config
        if self.burst:
            words = yield from self.burst_read(
                self.fifo,
                cfg.total_items,
                cfg.consumer_time_ns,
                message_fn=lambda _index, word: f"burst rd {word}",
            )
            self.values.extend(words)
            self.mark_finished()
            self.checkpoint("consumer done")
            return
        for _ in range(cfg.total_items):
            value = yield from self.fifo.read()
            self.values.append(value)
            self.items_processed += 1
            self.checkpoint(f"burst rd {value}")
            yield from self.advance(cfg.consumer_time_ns)
        self.mark_finished()
        self.checkpoint("consumer done")


class BurstyScenario:
    """One bursty producer and one steady consumer around a single FIFO."""

    def __init__(
        self,
        sim: Simulator,
        decoupled: bool,
        config: Optional[BurstyConfig] = None,
        burst: bool = False,
    ):
        self.sim = sim
        self.config = config or BurstyConfig()
        self.decoupled = decoupled
        if decoupled:
            self.fifo: FifoInterface = SmartFifo(
                sim, "fifo", depth=self.config.fifo_depth
            )
            timing = TimingMode.DECOUPLED
        else:
            self.fifo = RegularFifo(sim, "fifo", depth=self.config.fifo_depth)
            timing = TimingMode.TIMED_WAIT
        self.producer = BurstyProducer(sim, "producer", self.fifo, self.config, timing, burst=burst)
        self.consumer = BurstyConsumer(sim, "consumer", self.fifo, self.config, timing, burst=burst)

    def run(self) -> None:
        self.sim.run()

    @property
    def consumed_values(self) -> Sequence[int]:
        return tuple(self.consumer.values)

    def verify(self) -> None:
        """Every produced value arrived, in order."""
        expected = list(range(self.config.total_items))
        assert list(self.consumer.values) == expected, (
            len(self.consumer.values),
            self.config.total_items,
        )


def run_bursty_pair(config: Optional[BurstyConfig] = None):
    """Run the reference and decoupled scenario with the same seed.

    Returns ``(reference_sim, decoupled_sim, reference_scn, decoupled_scn)``
    like :func:`repro.workloads.random_traffic.run_pair`.
    """
    config = config or BurstyConfig()
    ref_sim = Simulator("reference")
    ref = BurstyScenario(ref_sim, decoupled=False, config=config)
    ref.run()
    dec_sim = Simulator("decoupled")
    dec = BurstyScenario(dec_sim, decoupled=True, config=config)
    dec.run()
    return ref_sim, dec_sim, ref, dec
