"""Randomized producer/consumer traffic for the validation methodology.

Section IV-A of the paper validates the Smart FIFO by running every test in
two modes — (regular FIFO, no temporal decoupling) and (Smart FIFO,
temporal decoupling), random tests reusing the same seed — and checking
that the printed, locally-timestamped traces are identical after
reordering.  Monitor accesses are used extensively to follow the FIFO
filling levels.

This module provides the randomized scenarios: producers and consumers with
seeded random inter-access delays, plus a low-rate monitor process sampling
``get_size``.  Monitor samples are taken at dates offset by 500 ps so they
can never collide with the integer-nanosecond dates of the data accesses:
same-date accesses are scheduler-dependent and the paper explicitly
excludes such programs from the equivalence check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..fifo.interfaces import FifoInterface
from ..fifo.regular_fifo import RegularFifo
from ..fifo.smart_fifo import SmartFifo
from ..kernel.simtime import SimTime, TimeUnit, ns, ps
from ..kernel.simulator import Simulator
from .base import TimingMode, WorkloadModule


@dataclass
class RandomTrafficConfig:
    """Parameters of one randomized scenario."""

    seed: int = 1
    item_count: int = 40
    fifo_depth: int = 4
    max_producer_delay_ns: int = 30
    max_consumer_delay_ns: int = 30
    monitor_samples: int = 10
    monitor_period_ns: int = 25


class RandomProducer(WorkloadModule):
    """Writes ``item_count`` values with seeded random gaps."""

    def __init__(self, parent, name, fifo, config: RandomTrafficConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 7919 + 1)
        self.create_thread(self.run)

    def run(self):
        if self.burst:
            count = self.config.item_count
            # Draw every delay upfront, in the same RNG order as the word
            # loop (one randint after each write), so both modes replay
            # exactly the same traffic.
            delays = [
                self.rng.randint(0, self.config.max_producer_delay_ns)
                for _ in range(count)
            ]
            yield from self.burst_write(
                self.fifo,
                list(range(count)),
                delays,
                message_fn=lambda index, _word: f"produced {index}",
            )
            self.mark_finished()
            self.checkpoint("producer done")
            return
        for index in range(self.config.item_count):
            yield from self.fifo.write(index)
            self.items_processed += 1
            self.checkpoint(f"produced {index}")
            delay = self.rng.randint(0, self.config.max_producer_delay_ns)
            yield from self.advance(delay)
        self.mark_finished()
        self.checkpoint("producer done")


class RandomConsumer(WorkloadModule):
    """Reads ``item_count`` values with seeded random gaps."""

    def __init__(self, parent, name, fifo, config: RandomTrafficConfig, timing: TimingMode, burst: bool = False):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.burst = burst
        self.rng = random.Random(config.seed * 104729 + 2)
        self.values: List[int] = []
        self.create_thread(self.run)

    def run(self):
        if self.burst:
            count = self.config.item_count
            delays = [
                self.rng.randint(0, self.config.max_consumer_delay_ns)
                for _ in range(count)
            ]
            words = yield from self.burst_read(
                self.fifo,
                count,
                delays,
                message_fn=lambda _index, word: f"consumed {word}",
            )
            self.values.extend(words)
            self.mark_finished()
            self.checkpoint("consumer done")
            return
        for _ in range(self.config.item_count):
            value = yield from self.fifo.read()
            self.values.append(value)
            self.items_processed += 1
            self.checkpoint(f"consumed {value}")
            delay = self.rng.randint(0, self.config.max_consumer_delay_ns)
            yield from self.advance(delay)
        self.mark_finished()
        self.checkpoint("consumer done")


class FillLevelMonitor(WorkloadModule):
    """Low-rate monitor sampling ``get_size`` (Section III-C usage)."""

    def __init__(self, parent, name, fifo, config: RandomTrafficConfig, timing: TimingMode):
        super().__init__(parent, name, timing)
        self.fifo = fifo
        self.config = config
        self.samples: List[tuple] = []
        self.create_thread(self.run)

    def run(self):
        # Start half a nanosecond after the data processes so monitor dates
        # never coincide with data-access dates (see module docstring).
        yield self.wait(500, TimeUnit.PS)
        for sample in range(self.config.monitor_samples):
            size = yield from self.fifo.get_size()
            date = self.now  # get_size synchronizes the caller in both modes
            self.samples.append((date, size))
            self.checkpoint(f"level {size}")
            yield self.wait(self.config.monitor_period_ns, TimeUnit.NS)
        self.mark_finished()


class RandomTrafficScenario:
    """One producer, one consumer, one monitor around a single FIFO."""

    def __init__(
        self,
        sim: Simulator,
        decoupled: bool,
        config: Optional[RandomTrafficConfig] = None,
        with_monitor: bool = True,
        burst: bool = False,
    ):
        self.sim = sim
        self.config = config or RandomTrafficConfig()
        self.decoupled = decoupled
        if decoupled:
            self.fifo: FifoInterface = SmartFifo(
                sim, "fifo", depth=self.config.fifo_depth
            )
            timing = TimingMode.DECOUPLED
        else:
            self.fifo = RegularFifo(sim, "fifo", depth=self.config.fifo_depth)
            timing = TimingMode.TIMED_WAIT
        self.producer = RandomProducer(sim, "producer", self.fifo, self.config, timing, burst=burst)
        self.consumer = RandomConsumer(sim, "consumer", self.fifo, self.config, timing, burst=burst)
        self.monitor = (
            FillLevelMonitor(sim, "monitor", self.fifo, self.config, timing)
            if with_monitor
            else None
        )

    def run(self) -> None:
        self.sim.run()

    @property
    def consumed_values(self) -> Sequence[int]:
        return tuple(self.consumer.values)

    @property
    def monitor_samples(self):
        return [] if self.monitor is None else list(self.monitor.samples)


def run_pair(
    config: Optional[RandomTrafficConfig] = None, with_monitor: bool = True
):
    """Run the reference and the decoupled scenario with the same seed.

    Returns ``(reference_sim, decoupled_sim, reference_scn, decoupled_scn)``
    so callers can compare traces, values and monitor samples.
    """
    config = config or RandomTrafficConfig()
    ref_sim = Simulator("reference")
    ref = RandomTrafficScenario(ref_sim, decoupled=False, config=config, with_monitor=with_monitor)
    ref.run()
    dec_sim = Simulator("decoupled")
    dec = RandomTrafficScenario(dec_sim, decoupled=True, config=config, with_monitor=with_monitor)
    dec.run()
    return ref_sim, dec_sim, ref, dec


SimTime
ns
ps
