"""repro — reproduction of *Fast and Accurate TLM Simulations using
Temporal Decoupling for FIFO-based Communications* (Helmstetter, Cornet,
Galilée, Moy, Vivet — DATE 2013).

The package is organised in layers:

* :mod:`repro.kernel` — a SystemC-like discrete-event simulation kernel
  (simulated time, events, thread/method processes, delta cycles, modules,
  ports, signals, tracing);
* :mod:`repro.td` — the temporal decoupling core (``inc`` / ``sync`` /
  ``local_time_stamp``, per-process local dates, global quantum keeper);
* :mod:`repro.fifo` — the FIFO library, including the paper's contribution,
  the :class:`~repro.fifo.smart_fifo.SmartFifo`;
* :mod:`repro.tlm` — a loosely-timed memory-mapped transport (generic
  payload, sockets, bus, memory, register banks, quantum keeper);
* :mod:`repro.soc` — the heterogeneous many-core case-study platform
  (control core, hardware accelerators, stream NoC, network interfaces);
* :mod:`repro.workloads` — the benchmark workloads (Fig. 5 streaming
  pipeline, video-like accelerator chains, random traffic);
* :mod:`repro.analysis` — the validation and evaluation harness
  (trace equivalence, run statistics, experiment drivers for every table
  and figure of the paper).

Quick start::

    from repro import Simulator, SmartFifo, DecoupledModule, ns

    sim = Simulator()

    class Writer(DecoupledModule):
        def __init__(self, parent, name, fifo):
            super().__init__(parent, name)
            self.fifo = fifo
            self.create_thread(self.run)

        def run(self):
            for value in (1, 2, 3):
                yield from self.fifo.write(value)
                self.inc(20, ns)           # timing annotation, no context switch

    ...
"""

from .kernel import (
    Event,
    Module,
    NS,
    PS,
    SimTime,
    Simulator,
    US,
    ZERO_TIME,
    fs,
    ms,
    ns,
    ps,
    sec,
    us,
)
from .kernel.simtime import TimeUnit
from .td import (
    DecoupledMixin,
    DecoupledModule,
    GlobalQuantum,
    QuantumKeeper,
    inc,
    local_time_stamp,
    sync,
)
from .fifo import (
    PacketSmartFifo,
    ReadArbiter,
    RegularFifo,
    SmartFifo,
    SyncFifo,
    WriteArbiter,
)

__version__ = "1.0.0"

__all__ = [
    "DecoupledMixin",
    "DecoupledModule",
    "Event",
    "GlobalQuantum",
    "Module",
    "NS",
    "PacketSmartFifo",
    "PS",
    "QuantumKeeper",
    "ReadArbiter",
    "RegularFifo",
    "SimTime",
    "Simulator",
    "SmartFifo",
    "SyncFifo",
    "TimeUnit",
    "US",
    "WriteArbiter",
    "ZERO_TIME",
    "__version__",
    "fs",
    "inc",
    "local_time_stamp",
    "ms",
    "ns",
    "ps",
    "sec",
    "sync",
    "us",
]
