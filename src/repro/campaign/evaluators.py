"""The evaluator seam: one interface, two ways to price a sweep point.

A campaign sweep evaluates the same workload at many (depth, quantum)
points.  Historically every point was a full scheduler run; the paper's
observables, however, are completely determined by the *dependency
structure* of the anchor run — each FIFO access's producer date and the
local-time gaps between accesses — which Smart-FIFO temporal decoupling
keeps invariant across depth and quantum.  This module exploits that:

* :class:`SimulateEvaluator` — the historical path, one
  :func:`~repro.campaign.runner.execute_spec` per point.
* :class:`ReplayEvaluator` — records the anchor point **once** with a
  :class:`~repro.kernel.tracing.DependencyRecorder`, self-checks the
  recording bit-for-bit against the anchor, then prices every other
  point by replaying the recorded programs on
  :class:`~repro.replay.ReplayEngine` — no scheduler, no generators, no
  scenario rebuild.

Both produce :class:`~repro.campaign.runner.SpecRunRecord` rows in the
same JSONL schema; replayed rows are tagged ``"evaluator": "replay"``
(simulated rows omit the key, so pre-replay files are byte-identical).
:func:`run_replay_sweep` is the one-simulation-per-sweep driver: anchor
simulation + N replays + fresh-simulation cross-validation of a sampled
subset.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.simulator import Simulator
from ..kernel.tracing import (
    DependencyRecorder,
    DependencySpool,
    make_sink,
    trace_lines_digest,
)
from ..replay import ReplayEngine, ReplayError, ReplayInvalid, ReplayResult
from ..telemetry import NULL_TELEMETRY
from .runner import DEFAULT_TRACE_SINK, SpecRunRecord, _record_from, execute_spec
from .scenarios import build_scenario
from .spec import ScenarioSpec

#: Digest of a trace with no lines — replay runs no trace statements, so
#: its rows carry the digest a ``null``-sink simulation would report.
EMPTY_TRACE_DIGEST = trace_lines_digest([])

#: Femtoseconds per nanosecond (spec quanta are in ns, spools in fs).
_FS_PER_NS = 1_000_000


def record_spool(
    spec: ScenarioSpec, trace_sink: str = DEFAULT_TRACE_SINK
) -> Tuple[DependencySpool, SpecRunRecord]:
    """Run ``spec`` once with a dependency recorder attached.

    Returns ``(spool, record)``: the finalized
    :class:`~repro.kernel.tracing.DependencySpool` and the anchor's
    :class:`~repro.campaign.runner.SpecRunRecord` — the same numbers
    :func:`~repro.campaign.runner.execute_spec` would report (recording
    only observes; it never changes scheduling).
    """
    sim = Simulator(f"record_{spec.label}", trace_sink=make_sink(trace_sink))
    sim.dep_recorder = DependencyRecorder(sim)
    built = build_scenario(sim, spec)
    start = time.perf_counter()
    built.scenario.run()
    wall = time.perf_counter() - start
    if built.verify is not None:
        built.verify()
    spool = sim.dep_recorder.finalize()
    record = _record_from(spec, sim, built, wall)
    sim.trace.close()
    return spool, record


def replay_record(
    spec: ScenarioSpec, result: ReplayResult, wall: float
) -> SpecRunRecord:
    """Shape one :class:`~repro.replay.ReplayResult` as a campaign row.

    Replay runs neither trace statements nor method processes, so
    ``trace_lines`` is 0, ``trace_digest`` is the empty digest and
    ``method_invocations`` is 0 by construction; workload-specific extras
    (checksums, receive logs) cannot be recomputed without data values, so
    ``extra`` carries the replay-native observables instead.
    """
    return SpecRunRecord(
        name=spec.name,
        workload=spec.workload,
        mode=spec.mode,
        depth=spec.depth,
        quantum_ns=spec.quantum_ns,
        seed=spec.seed,
        timing=spec.timing,
        sim_end_fs=result.sim_end_fs,
        context_switches=result.context_switches,
        method_invocations=result.method_invocations,
        delta_cycles=result.delta_cycles,
        trace_lines=0,
        trace_digest=EMPTY_TRACE_DIGEST,
        extra={
            "blocking_waits": result.blocking_waits,
            "timed_phases": result.timed_phases,
            "all_terminated": result.all_terminated,
        },
        evaluator="replay",
        wall_seconds=wall,
        worker_pid=os.getpid(),
    )


class Evaluator:
    """Prices one sweep point as a :class:`SpecRunRecord`."""

    kind = "abstract"

    def evaluate(self, spec: ScenarioSpec) -> SpecRunRecord:
        raise NotImplementedError


class SimulateEvaluator(Evaluator):
    """The historical evaluator: a full scheduler run per point."""

    kind = "simulate"

    def __init__(self, trace_sink: str = DEFAULT_TRACE_SINK):
        self.trace_sink = trace_sink

    def evaluate(self, spec: ScenarioSpec) -> SpecRunRecord:
        return execute_spec(spec, self.trace_sink)


class ReplayEvaluator(Evaluator):
    """Replays one recorded anchor at arbitrary depth/quantum points.

    Construction records the anchor (or adopts a caller-provided spool),
    then runs the engine's self-check so a recording that cannot
    reproduce its own simulation is rejected up front
    (:class:`~repro.replay.ReplayMismatch`).  Workloads whose behaviour
    depends on state the recorder cannot see (occupancy probes, method
    processes, arbiters) poison their spool and raise
    :class:`~repro.replay.ReplayError` here instead of silently
    producing wrong sweeps.
    """

    kind = "replay"

    def __init__(
        self,
        anchor: ScenarioSpec,
        spool: Optional[DependencySpool] = None,
        trace_sink: str = DEFAULT_TRACE_SINK,
    ):
        self.anchor = anchor
        if spool is None:
            spool, self.anchor_record = record_spool(anchor, trace_sink)
        else:
            self.anchor_record = None
        self.spool = spool
        self.engine = ReplayEngine(spool)
        self.engine.self_check()

    def _check_point(self, spec: ScenarioSpec) -> None:
        anchor = self.anchor
        fixed = ("workload", "mode", "seed", "timing", "burst")
        for key in fixed:
            if getattr(spec, key) != getattr(anchor, key):
                raise ReplayError(
                    f"replay point {spec.label} changes {key!r} "
                    f"({getattr(spec, key)!r} != {getattr(anchor, key)!r}); "
                    "only depth and quantum can vary under one recording"
                )
        if spec.params != anchor.params:
            raise ReplayError(
                f"replay point {spec.label} changes params; "
                "only depth and quantum can vary under one recording"
            )

    def replay_point(self, spec: ScenarioSpec) -> ReplayResult:
        """Raw :class:`~repro.replay.ReplayResult` for one sweep point."""
        self._check_point(spec)
        quantum_fs = (
            None if spec.quantum_ns is None else spec.quantum_ns * _FS_PER_NS
        )
        return self.engine.replay(
            depths=self.engine.retarget_depths(self.anchor.depth, spec.depth),
            quantum_fs=quantum_fs,
        )

    def evaluate(self, spec: ScenarioSpec) -> SpecRunRecord:
        start = time.perf_counter()
        result = self.replay_point(spec)
        return replay_record(spec, result, time.perf_counter() - start)


def replay_group_key(spec: ScenarioSpec) -> Tuple[object, ...]:
    """Spec identity modulo name/depth/quantum.

    Two specs with equal keys describe the same workload program evaluated
    at different sweep points, so they can share one recorded anchor — the
    grouping rule of the campaign's ``--auto-replay`` routing (and exactly
    the fields :meth:`ReplayEvaluator._check_point` pins).
    """
    return (
        spec.workload,
        spec.mode,
        spec.seed,
        spec.timing,
        spec.burst,
        json.dumps(spec.params, sort_keys=True, default=str),
    )


# ---------------------------------------------------------------------------
# Sweep driver: 1 simulation + N replays (+ sampled cross-validation)
# ---------------------------------------------------------------------------
def sweep_point_specs(
    anchor: ScenarioSpec,
    depths: Sequence[int] = (),
    quanta_ns: Sequence[int] = (),
) -> List[ScenarioSpec]:
    """The non-anchor point specs of a sweep, in deterministic order.

    Depth points are named ``{anchor}_d{depth}``, quantum points
    ``{anchor}_q{ns}ns``; the anchor's own depth/quantum is skipped (its
    row comes from the recording simulation itself).
    """
    points: List[ScenarioSpec] = []
    for depth in depths:
        if depth == anchor.depth:
            continue
        points.append(
            replace(
                anchor,
                name=f"{anchor.name}_d{depth}",
                depth=depth,
                params=dict(anchor.params),
            )
        )
    for quantum_ns in quanta_ns:
        if anchor.timing != "quantum":
            raise ReplayError(
                f"quantum sweep points need a timing='quantum' anchor, "
                f"got {anchor.timing!r}"
            )
        if quantum_ns == anchor.quantum_ns:
            continue
        points.append(
            replace(
                anchor,
                name=f"{anchor.name}_q{quantum_ns}ns",
                quantum_ns=quantum_ns,
                params=dict(anchor.params),
            )
        )
    return points


def compare_replay_to_spool(
    replayed: ReplayResult,
    fresh: DependencySpool,
    fresh_result: Optional[ReplayResult] = None,
    strict: bool = False,
) -> List[str]:
    """Differences between a replayed point and a fresh recorded run.

    Compares the end date, kernel counters, per-FIFO totals and blocking
    waits, the final per-process local dates (in registration order —
    pids are numbered globally, so keys differ across runs) and, when
    ``fresh_result`` is given, every per-word completion date.

    ``strict`` marks a method-pinned replay: such replays adopt the
    anchor's kernel activity counters, which can drift sub-observably in
    a fresh run (external notification arming is depth-dependent
    scheduling noise), so only the paper's observables — dates, traffic,
    blocking, end date, local times — are compared.
    """
    diffs: List[str] = []
    if replayed.sim_end_fs != fresh.sim_end_fs:
        diffs.append(
            f"sim_end_fs: replay {replayed.sim_end_fs} != "
            f"fresh {fresh.sim_end_fs}"
        )
    counter_keys = (
        () if strict
        else ("thread_activations", "delta_cycles", "timed_phases")
    )
    for key in counter_keys:
        mine, theirs = getattr(replayed, key), fresh.stats[key]
        if mine != theirs:
            diffs.append(f"{key}: replay {mine} != fresh {theirs}")
    for meta, mine in zip(fresh.fifos, replayed.fifo_stats):
        for key in ("total_written", "total_read", "blocking_waits"):
            if meta[key] != mine[key]:
                diffs.append(
                    f"{meta['name']}.{key}: replay {mine[key]} != "
                    f"fresh {meta[key]}"
                )
    if list(replayed.process_local_fs.values()) != list(
        fresh.process_local_fs.values()
    ):
        diffs.append("final process local times differ")
    if fresh_result is not None and replayed.fifo_dates != fresh_result.fifo_dates:
        diffs.append("per-word completion dates differ")
    return diffs


@dataclass
class ValidationRecord:
    """Outcome of cross-validating one replayed point."""

    name: str
    ok: bool
    diffs: List[str] = field(default_factory=list)


@dataclass
class ReplaySweepResult:
    """Everything :func:`run_replay_sweep` produces."""

    anchor: SpecRunRecord
    rows: List[SpecRunRecord]
    validations: List[ValidationRecord]
    record_seconds: float
    replay_seconds: float
    validate_seconds: float
    #: ``(point name, reason)`` for points outside the validity envelope,
    #: priced by a fresh simulation instead of a replay.
    invalid_points: List[Tuple[str, str]] = field(default_factory=list)
    #: Wall time of the fresh-simulation fallbacks (0.0 when none).
    simulate_seconds: float = 0.0

    @property
    def all_validated(self) -> bool:
        return all(v.ok for v in self.validations)

    @property
    def points_per_s(self) -> float:
        replayed = sum(1 for r in self.rows if r.evaluator == "replay")
        if self.replay_seconds <= 0.0:
            return float("inf") if replayed else 0.0
        return replayed / self.replay_seconds

    def summary_rows(self) -> List[Dict[str, object]]:
        """Compact table rows (anchor first) for reporting."""
        return [
            {
                "name": record.name,
                "evaluator": record.evaluator,
                "depth": record.depth,
                "quantum_ns": record.quantum_ns,
                "sim_end_fs": record.sim_end_fs,
                "context_switches": record.context_switches,
                "delta_cycles": record.delta_cycles,
            }
            for record in self.rows
        ]


def _validation_sample(count: int, validate: int) -> List[int]:
    """Indices of the points to cross-validate: evenly spaced, ends first.

    Deterministic by construction — sampling randomness would make sweep
    fingerprints irreproducible.
    """
    if validate <= 0 or count == 0:
        return []
    if validate >= count:
        return list(range(count))
    step = count / validate
    picked = sorted({min(count - 1, int(i * step)) for i in range(validate)})
    return picked


def run_replay_sweep(
    anchor: ScenarioSpec,
    depths: Sequence[int] = (),
    quanta_ns: Sequence[int] = (),
    validate: int = 1,
    trace_sink: str = DEFAULT_TRACE_SINK,
    telemetry=NULL_TELEMETRY,
) -> ReplaySweepResult:
    """One simulation per sweep: record the anchor, replay every point.

    ``validate`` picks that many replayed points (evenly spaced across the
    sweep) to re-run as *fresh recorded simulations* and compare against
    the replay — end dates, counters, per-word completion dates, final
    local times.  Any difference raises :class:`~repro.replay.ReplayError`
    with the full diff; a sweep that validates is exact on the sampled
    subset by checking, and exact everywhere by the engine's construction.

    Points outside the recording's validity envelope
    (:class:`~repro.replay.ReplayInvalid` — a recorded branch outcome is
    not reproducible at that depth/quantum) fall back to a fresh
    simulation for exactly those points: their rows are plain simulated
    rows and the refusals are reported in ``invalid_points``.

    ``telemetry`` (an optional :mod:`repro.telemetry` sideband) gets one
    span per phase — ``replay.record`` / ``replay.point`` /
    ``replay.simulate_fallback`` / ``replay.validate`` — plus per-construct
    ``replay.refusals.*`` counters; the default ``NULL_TELEMETRY`` makes
    every emission a no-op.
    """
    start = time.perf_counter()
    with telemetry.span("replay.record", spec=anchor.name):
        evaluator = ReplayEvaluator(anchor, trace_sink=trace_sink)
    record_seconds = time.perf_counter() - start
    anchor_record = evaluator.anchor_record
    assert anchor_record is not None

    points = sweep_point_specs(anchor, depths, quanta_ns)
    rows: List[Optional[SpecRunRecord]] = [anchor_record]
    results: List[Optional[ReplayResult]] = []
    invalid_points: List[Tuple[str, str]] = []
    fallbacks: List[Tuple[int, ScenarioSpec]] = []
    start = time.perf_counter()
    for point in points:
        point_t0 = time.monotonic() if telemetry.enabled else 0.0
        t0 = time.perf_counter()
        try:
            result = evaluator.replay_point(point)
        except ReplayInvalid as exc:
            if telemetry.enabled:
                construct = getattr(exc, "construct", None) or "unspecified"
                telemetry.counter(f"replay.refusals.{construct}")
            invalid_points.append((point.name, str(exc)))
            fallbacks.append((len(rows), point))
            rows.append(None)
            results.append(None)
            continue
        if telemetry.enabled:
            telemetry.span_at(
                "replay.point", point_t0, time.monotonic() - point_t0,
                spec=point.name,
            )
            telemetry.counter("replay.points_replayed")
        rows.append(replay_record(point, result, time.perf_counter() - t0))
        results.append(result)
    replay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for row_index, point in fallbacks:
        with telemetry.span("replay.simulate_fallback", spec=point.name):
            rows[row_index] = execute_spec(point, trace_sink)
    simulate_seconds = time.perf_counter() - start

    replayed_indices = [
        index for index, result in enumerate(results) if result is not None
    ]
    validations: List[ValidationRecord] = []
    start = time.perf_counter()
    for picked in _validation_sample(len(replayed_indices), validate):
        index = replayed_indices[picked]
        point = points[index]
        with telemetry.span("replay.validate", spec=point.name):
            fresh_spool, _ = record_spool(point, trace_sink)
            if fresh_spool.poison is not None:
                raise ReplayError(
                    f"validation run for {point.label} is not recordable: "
                    f"{fresh_spool.poison}"
                )
            fresh_result = ReplayEngine(fresh_spool).self_check()
            diffs = compare_replay_to_spool(
                results[index], fresh_spool, fresh_result,
                strict=evaluator.engine.strict,
            )
        validations.append(ValidationRecord(point.name, not diffs, diffs))
        if diffs:
            raise ReplayError(
                f"replayed point {point.label} diverges from a fresh "
                f"simulation: " + "; ".join(diffs[:6])
            )
    validate_seconds = time.perf_counter() - start

    return ReplaySweepResult(
        anchor=anchor_record,
        rows=rows,
        validations=validations,
        record_seconds=record_seconds,
        replay_seconds=replay_seconds,
        validate_seconds=validate_seconds,
        invalid_points=invalid_points,
        simulate_seconds=simulate_seconds,
    )
