"""Cost-balanced deterministic shard partitioning (``--shard-by-cost``).

The historical ``--shard i/N`` partitioner is round-robin over the spec
list: balanced only when expensive specs happen to be spread evenly.  The
cost-balanced partitioner assigns specs to shards with the classic LPT
(longest-processing-time-first) greedy: walk the specs from most to least
expensive (estimates from a :class:`~repro.campaign.orchestrator.costs
.CostModel`), always assigning to the currently lightest shard.  LPT's
makespan is within 4/3 of optimal — plenty for campaign scheduling — and
the implementation is strictly deterministic:

* specs are ordered by ``(-cost, name)`` — the spec *name* breaks cost
  ties, so equal-cost specs always partition identically;
* the lightest-bin choice breaks load ties by shard index (via the heap
  entry ``(load, index)``).

Every host of an orchestrated campaign recomputes the partition locally
from the same spec list and the same ``COSTS.json``, so the shards agree
across hosts without any shard list ever crossing the wire.  Shard
*membership* never affects result rows, so the union of the cost shards
merges to the byte-identical unsharded fingerprint exactly like
round-robin shards do.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..spec import ScenarioSpec
from .costs import CostModel


def cost_shards(
    specs: Sequence[ScenarioSpec],
    count: int,
    model: Optional[CostModel] = None,
    paired: bool = True,
) -> List[List[ScenarioSpec]]:
    """Partition ``specs`` into ``count`` cost-balanced shards (LPT).

    Returns one spec list per shard; every spec appears in exactly one
    shard, and each shard preserves the original campaign order (the
    campaign header always records the full pre-partition list, so order
    inside a shard is cosmetic — kept stable for readable output).
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    model = model or CostModel()
    order = sorted(
        specs,
        key=lambda spec: (-model.spec_cost(spec, paired), spec.name),
    )
    heap = [(0.0, index) for index in range(count)]
    heapq.heapify(heap)
    bins: List[List[ScenarioSpec]] = [[] for _ in range(count)]
    for spec in order:
        load, index = heapq.heappop(heap)
        bins[index].append(spec)
        heapq.heappush(heap, (load + model.spec_cost(spec, paired), index))
    position = {spec.name: number for number, spec in enumerate(specs)}
    return [
        sorted(shard, key=lambda spec: position[spec.name]) for shard in bins
    ]


def estimated_makespans(
    shards: Sequence[Sequence[ScenarioSpec]],
    model: Optional[CostModel] = None,
    paired: bool = True,
) -> List[float]:
    """Estimated total cost per shard (the partitioner's own view)."""
    model = model or CostModel()
    return [
        sum(model.spec_cost(spec, paired) for spec in shard)
        for shard in shards
    ]


def makespan_spread(makespans: Sequence[float]) -> float:
    """``max/min`` over per-shard makespans: 1.0 is perfectly balanced.

    An empty shard (makespan 0) yields ``inf`` — a degenerate partition
    the spread metric should flag, not hide.
    """
    if not makespans:
        return 1.0
    largest = max(makespans)
    smallest = min(makespans)
    if smallest <= 0:
        return float("inf") if largest > 0 else 1.0
    return largest / smallest
