"""Run budgets: wall-clock limits a campaign is held to at execution time.

The campaign's deterministic rows never carry wall-clock values, but the
*scheduling* of a production campaign is all about wall clock: a stuck or
pathologically slow spec must not hold a shard hostage.  This module
provides the two pieces the :class:`~repro.campaign.runner.CampaignRunner`
threads through its execution path when a budget is set:

* :class:`RunBudget` — the declarative limits: a per-spec timeout (each
  worker job is killed once it has run that long) and a whole-campaign
  budget (when the campaign has run that long, every outstanding and
  queued job is abandoned).
* :func:`run_with_budget` — a process-per-job executor that can actually
  *kill* an overrunning job.  A :mod:`multiprocessing` pool cannot
  terminate a single task without poisoning the pool, so budgeted
  execution launches one (bounded-concurrency) child process per job,
  each reporting back over its own pipe; an overrun is enforced with
  ``Process.terminate``.  Because each job has a private pipe, killing
  one job can never corrupt another job's result channel.
* :class:`TimeoutRecord` — the deterministic outcome of a killed job.
  The row records the spec identity, the killed mode, the *configured*
  limit and the scope (``"spec"`` or ``"campaign"``) — never the elapsed
  wall time, which would break the byte-identical-aggregation guarantee.
  Timeout rows are first-class JSONL citizens: ``merge_jsonl`` accepts a
  timed-out spec in place of its run/pair rows, and ``--resume`` drops
  the timeout row and re-executes the spec, healing the file back to the
  uninterrupted fingerprint.

Determinism: *whether* a spec times out depends on the machine, so a
budgeted campaign is only reproducible when the overrun is deterministic
(the test suite seeds one with the ``slow_spin_ms`` knob of the bursty
workload).  A budgeted campaign in which nothing times out produces
byte-identical rows to an unbudgeted one.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, Iterator, Optional, Tuple

from ..spec import ScenarioSpec

#: Scope values of a :class:`TimeoutRecord`.
SCOPE_SPEC = "spec"
SCOPE_CAMPAIGN = "campaign"
SCOPES = (SCOPE_SPEC, SCOPE_CAMPAIGN)


@dataclass(frozen=True)
class RunBudget:
    """Wall-clock limits of one campaign execution.

    ``spec_timeout_s``
        A single worker job (one spec in one mode) is terminated once it
        has run this long; the campaign continues with the other jobs.
    ``campaign_budget_s``
        Once the campaign as a whole has run this long, every running job
        is terminated and every queued job abandoned; each incomplete
        spec gets a ``scope="campaign"`` timeout row.
    """

    spec_timeout_s: Optional[float] = None
    campaign_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("spec_timeout_s", "campaign_budget_s"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(
                    f"RunBudget.{name} must be positive, got {value!r}"
                )

    @property
    def active(self) -> bool:
        """True when at least one limit is set."""
        return self.spec_timeout_s is not None or self.campaign_budget_s is not None


@dataclass
class TimeoutRecord:
    """Deterministic outcome of a job killed by a :class:`RunBudget`.

    Carries the spec identity columns (so a resume can validate the row
    against the campaign definition exactly like a run row), the mode of
    the killed job, the scope of the limit that fired and the configured
    limit itself.  Elapsed wall time is deliberately absent.
    """

    name: str
    workload: str
    mode: str
    depth: int
    quantum_ns: Optional[int]
    seed: int
    timing: Optional[str]
    scope: str
    limit_s: float

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workload": self.workload,
            "mode": self.mode,
            "depth": self.depth,
            "quantum_ns": self.quantum_ns,
            "seed": self.seed,
            "timing": self.timing,
            "scope": self.scope,
            "limit_s": self.limit_s,
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "TimeoutRecord":
        """Rebuild a record from a persisted deterministic row."""
        return cls(**{key: row[key] for key in (
            "name", "workload", "mode", "depth", "quantum_ns", "seed",
            "timing", "scope", "limit_s",
        )})

    @classmethod
    def for_spec(
        cls, spec: ScenarioSpec, mode: str, scope: str, limit_s: float
    ) -> "TimeoutRecord":
        if scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {scope!r}")
        return cls(
            name=spec.name,
            workload=spec.workload,
            mode=mode,
            depth=spec.depth,
            quantum_ns=spec.quantum_ns,
            seed=spec.seed,
            timing=spec.timing,
            scope=scope,
            limit_s=limit_s,
        )


# ---------------------------------------------------------------------------
# The budgeted executor
# ---------------------------------------------------------------------------
def _budget_worker(conn, func, job) -> None:
    """Child-process body: run one job, ship the outcome over the pipe.

    Top-level so it is picklable under any start method.  Exceptions are
    shipped back (falling back to a stringified ``RuntimeError`` when the
    original exception does not pickle) so the parent re-raises them
    exactly like a :mod:`multiprocessing` pool would.
    """
    try:
        payload = ("ok", func(job))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        import pickle

        try:
            pickle.dumps(exc)
            payload = ("error", exc)
        except Exception:
            payload = ("error", RuntimeError(f"{type(exc).__name__}: {exc}"))
    try:
        conn.send(payload)
    finally:
        conn.close()


def _kill(proc) -> None:
    """Terminate a child, escalating to SIGKILL if it ignores SIGTERM."""
    proc.terminate()
    proc.join(timeout=2.0)
    if proc.is_alive():  # pragma: no cover - needs a SIGTERM-ignoring child
        proc.kill()
        proc.join()


def run_with_budget(
    func,
    jobs,
    *,
    budget: RunBudget,
    processes: int,
    mp_context,
    poll_interval: float = 0.05,
) -> Iterator[Tuple]:
    """Run ``func(job)`` for every job in bounded, killable child processes.

    Yields events in completion order:

    * ``("result", value)`` — the job finished; ``value`` is its return.
    * ``("timeout", job, scope)`` — the job was killed (``scope="spec"``)
      or abandoned before/while running because the whole-campaign budget
      expired (``scope="campaign"``).

    At most ``processes`` children run concurrently.  A child that raises
    re-raises in the caller (after terminating the remaining children), a
    child that dies without reporting raises :class:`RuntimeError`.  Each
    job owns a private one-way pipe, so terminating one job cannot wedge
    or corrupt the others' result channels.
    """
    queue = deque(jobs)
    #: conn -> (process, job, absolute spec deadline or None)
    running: Dict[object, Tuple] = {}
    start = time.monotonic()
    campaign_deadline = (
        start + budget.campaign_budget_s
        if budget.campaign_budget_s is not None
        else None
    )
    try:
        while queue or running:
            while queue and len(running) < processes:
                job = queue.popleft()
                parent_conn, child_conn = mp_context.Pipe(duplex=False)
                proc = mp_context.Process(
                    target=_budget_worker, args=(child_conn, func, job),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                deadline = (
                    time.monotonic() + budget.spec_timeout_s
                    if budget.spec_timeout_s is not None
                    else None
                )
                running[parent_conn] = (proc, job, deadline)
            # Sleep until a result arrives or the nearest deadline, capped
            # at poll_interval so new slots are refilled promptly.
            now = time.monotonic()
            wait_s = poll_interval
            deadlines = [d for (_, _, d) in running.values() if d is not None]
            if campaign_deadline is not None:
                deadlines.append(campaign_deadline)
            if deadlines:
                wait_s = min(wait_s, max(0.0, min(deadlines) - now))
            for conn in _connection_wait(list(running), timeout=wait_s):
                proc, job, _ = running.pop(conn)
                try:
                    status, payload = conn.recv()
                except EOFError:
                    status, payload = "error", RuntimeError(
                        f"budgeted worker for job {job!r} died without "
                        f"reporting a result"
                    )
                conn.close()
                proc.join()
                if status == "error":
                    raise payload
                yield ("result", payload)
            now = time.monotonic()
            if campaign_deadline is not None and now >= campaign_deadline:
                for conn, (proc, job, _) in list(running.items()):
                    # A job whose result is already in the pipe finished
                    # within budget: honour it instead of mislabelling it
                    # a timeout (the child is alive mid-write at worst,
                    # so the recv completes).
                    if conn.poll():
                        try:
                            status, payload = conn.recv()
                        except EOFError:
                            status = "gone"
                        if status == "ok":
                            conn.close()
                            proc.join()
                            yield ("result", payload)
                            continue
                        if status == "error":
                            conn.close()
                            proc.join()
                            raise payload
                    _kill(proc)
                    conn.close()
                    yield ("timeout", job, SCOPE_CAMPAIGN)
                running.clear()
                while queue:
                    yield ("timeout", queue.popleft(), SCOPE_CAMPAIGN)
                return
            for conn in list(running):
                proc, job, deadline = running[conn]
                if deadline is not None and now >= deadline:
                    if conn.poll():
                        # Finished at deadline-epsilon: the next
                        # _connection_wait pass drains it as a result.
                        continue
                    _kill(proc)
                    conn.close()
                    del running[conn]
                    yield ("timeout", job, SCOPE_SPEC)
    finally:
        # Caller abandoned the generator (or a child raised): reap
        # everything still running so no orphan keeps simulating.
        for conn, (proc, _, _) in list(running.items()):
            _kill(proc)
            conn.close()
        running.clear()
