"""Host descriptions for the multi-host campaign orchestrator.

A :class:`HostSpec` is a small declarative record of one machine that can
run a campaign shard: how to reach it (``kind``: a local subprocess or an
ssh target), which python to invoke, and where the repository checkout
lives on it.  Host specs are deliberately transport-agnostic data — the
matching :class:`~repro.campaign.orchestrator.transport.HostTransport`
turns them into launch/poll/collect operations.

Hosts files (``orchestrate --hosts-file hosts.json``) are plain JSON::

    {
      "hosts": [
        {"name": "local0", "kind": "local"},
        {"name": "big-box", "kind": "ssh", "address": "big-box.example.com",
         "user": "bench", "port": 2222,
         "workdir": "/srv/repro", "python": "python3"}
      ]
    }

A bare top-level list is accepted too.  Unknown keys are rejected so a
typoed field fails loudly instead of silently running with defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

KIND_LOCAL = "local"
KIND_SSH = "ssh"
KINDS = (KIND_LOCAL, KIND_SSH)


@dataclass(frozen=True)
class HostSpec:
    """One machine of an orchestrated campaign.

    ``name``
        Unique label; doubles as the host's working-directory name under
        the orchestrator's output directory.
    ``kind``
        ``"local"`` (a subprocess on this machine — the fully tested
        transport, used by CI and the benchmarks) or ``"ssh"``.
    ``address`` / ``user`` / ``port``
        ssh coordinates (``kind="ssh"`` only); ``address`` is required.
    ``python``
        Interpreter to invoke on the host; empty means
        ``sys.executable`` locally and ``python3`` over ssh.
    ``workdir``
        Repository root on the host (``kind="ssh"`` only): the launched
        command is ``cd <workdir> && PYTHONPATH=src <python> -m ...``.
    ``env``
        Extra environment variables for the launched campaign.
    """

    name: str
    kind: str = KIND_LOCAL
    address: str = ""
    user: Optional[str] = None
    port: Optional[int] = None
    python: str = ""
    workdir: str = ""
    env: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.name:
            raise ValueError("HostSpec.name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(
                f"host {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == KIND_SSH:
            if not self.address:
                raise ValueError(
                    f"host {self.name!r}: kind='ssh' requires an address"
                )
            if not self.workdir:
                raise ValueError(
                    f"host {self.name!r}: kind='ssh' requires workdir (the "
                    f"repository root on the remote machine)"
                )
            # scp's remote-path handling differs between its legacy
            # (shell-expanded) and SFTP (literal) protocols, so a path
            # needing quoting transfers correctly on only one of them.
            # Fail fast instead of failing after the shard already ran.
            hostile = set(' \t\'"\\*?[]{}$`&;|<>()')
            if any(ch in hostile for ch in self.workdir):
                raise ValueError(
                    f"host {self.name!r}: workdir {self.workdir!r} contains "
                    f"whitespace or shell metacharacters, which scp's "
                    f"legacy and SFTP protocols transfer differently — "
                    f"use a plain path"
                )
        if self.port is not None and not 0 < self.port < 65536:
            raise ValueError(
                f"host {self.name!r}: port must be in (0, 65536), "
                f"got {self.port}"
            )

    @property
    def destination(self) -> str:
        """The ssh destination (``user@address`` or ``address``)."""
        return f"{self.user}@{self.address}" if self.user else self.address


def local_hosts(count: int, python: str = "") -> List[HostSpec]:
    """``count`` local-subprocess hosts named ``local0`` .. ``localN-1``."""
    if count < 1:
        raise ValueError(f"host count must be >= 1, got {count}")
    return [
        HostSpec(name=f"local{index}", kind=KIND_LOCAL, python=python)
        for index in range(count)
    ]


def parse_hosts_file(path: str) -> List[HostSpec]:
    """Read a hosts JSON file (see the module docstring for the format)."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
    if isinstance(document, dict):
        entries = document.get("hosts")
        if not isinstance(entries, list):
            raise ValueError(f"{path}: expected a top-level 'hosts' list")
    elif isinstance(document, list):
        entries = document
    else:
        raise ValueError(f"{path}: expected a JSON object or list")
    known = {spec_field.name for spec_field in fields(HostSpec)}
    hosts: List[HostSpec] = []
    for number, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: host entry {number} is not an object")
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ValueError(
                f"{path}: host entry {number} has unknown key(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(sorted(known))}"
            )
        host = HostSpec(**entry)
        host.validate()
        hosts.append(host)
    if not hosts:
        raise ValueError(f"{path} declares no hosts")
    names = [host.name for host in hosts]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"{path}: duplicate host name(s): {duplicates}")
    return hosts
