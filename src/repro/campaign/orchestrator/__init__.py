"""Distributed campaign orchestrator.

Turns the single-pool :class:`~repro.campaign.runner.CampaignRunner` into
a multi-host campaign engine, in four parts:

* :mod:`~repro.campaign.orchestrator.costs` — per-spec wall-time
  estimates learned from the ``COSTS.json`` sideband (wall clock stays
  out of the deterministic JSONL rows) with a static heuristic fallback;
* :mod:`~repro.campaign.orchestrator.partition` — the deterministic LPT
  cost-balanced partitioner behind ``--shard-by-cost i/N``;
* :mod:`~repro.campaign.orchestrator.budget` — per-spec and per-campaign
  wall-clock limits (``--spec-timeout`` / ``--campaign-budget``), the
  killable process-per-job executor and the deterministic ``timeout``
  JSONL row;
* :mod:`~repro.campaign.orchestrator.hosts` /
  :mod:`~repro.campaign.orchestrator.transport` — host descriptions and
  the pluggable launch/poll/collect protocol
  (:class:`LocalSubprocessTransport`, :class:`SshTransport`) driven by
  the :class:`Orchestrator`, which merges the collected shard JSONLs to
  the byte-identical unsharded fingerprint.

Entry points: ``python -m repro.analysis.cli orchestrate`` and
``make orchestrate-smoke``.
"""

from .budget import (
    SCOPE_CAMPAIGN,
    SCOPE_SPEC,
    RunBudget,
    TimeoutRecord,
    run_with_budget,
)
from .costs import HEURISTIC_WEIGHTS, CostModel
from .hosts import HostSpec, local_hosts, parse_hosts_file
from .partition import cost_shards, estimated_makespans, makespan_spread
from .transport import (
    HostRun,
    HostTransport,
    LocalSubprocessTransport,
    Orchestrator,
    OrchestratorError,
    OrchestratorResult,
    SshTransport,
    make_transport,
)

__all__ = [
    "CostModel",
    "HEURISTIC_WEIGHTS",
    "HostRun",
    "HostSpec",
    "HostTransport",
    "LocalSubprocessTransport",
    "Orchestrator",
    "OrchestratorError",
    "OrchestratorResult",
    "RunBudget",
    "SCOPE_CAMPAIGN",
    "SCOPE_SPEC",
    "SshTransport",
    "TimeoutRecord",
    "cost_shards",
    "estimated_makespans",
    "local_hosts",
    "make_transport",
    "makespan_spread",
    "parse_hosts_file",
    "run_with_budget",
]
