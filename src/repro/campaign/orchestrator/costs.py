"""Per-spec wall-time cost model (the ``COSTS.json`` sideband).

The campaign's JSONL rows are deterministic by contract — they never carry
wall-clock values, which is what makes shard files merge byte-for-byte.
But a *scheduler* needs wall times: balancing shards over hosts of a
multi-machine campaign is a bin-packing problem over per-spec costs.  The
:class:`CostModel` squares that circle with a sideband file: observed wall
times are recorded to ``COSTS.json`` (``campaign --record-costs``), a file
that lives next to — never inside — the JSONL results, so fingerprints
and merges are untouched.

File format (JSON, schema 1)::

    {
      "schema": 1,
      "costs": {
        "<spec name>": {
          "workload": "soc",            # null when unknown
          "modes": {
            "<mode>": {"wall_s": 0.1234, "samples": 3},
            ...
          }
        },
        ...
      },
      "hosts": {                        # optional, advisory only
        "<host name>": {"specs_per_s": 1.85, "samples": 2},
        ...
      }
    }

The ``hosts`` key is **advisory telemetry**, not a scheduling input: it
records each host's observed throughput (specs per second over its shard
makespan, folded in with the same EWMA) so operators can spot a slow or
misconfigured machine in ``telemetry-report``.  The LPT partitioner never
reads it — shards are balanced by per-spec cost only, and every host must
compute the identical partition from the identical file whether or not
the key is present.  Files without host observations are written without
the key, byte-identical to the pre-telemetry format.

Observations are folded in with an exponential moving average
(``EWMA_ALPHA``), so the model tracks a drifting machine without being
whipsawed by one noisy run.  Wall times are machine-specific: a
``COSTS.json`` recorded on one class of host partitions best for that
class (ship the same file to every host of an orchestrated campaign — the
partition must be computed identically everywhere).

Cold start: a spec the model has never seen falls back to a static
per-workload heuristic (:data:`HEURISTIC_WEIGHTS`, in arbitrary relative
units).  The heuristic only has to *rank* workloads roughly — one warm
recorded campaign replaces it with real numbers.  A *partially* warm
model (a timed-out spec never records a wall time; a new spec has none
yet) must not mix raw heuristic units with recorded seconds inside one
partition, so the heuristic is calibrated: the recorded entries (whose
workloads the file remembers) establish a seconds-per-weight scale, and
cold specs are estimated at ``weight * scale`` — commensurate with their
warm neighbours.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..spec import MODE_REFERENCE, MODE_SMART, ScenarioSpec, spec_is_pairable

COSTS_SCHEMA = 1

#: Weight of a fresh observation against the running estimate.
EWMA_ALPHA = 0.5

#: Cold-start relative weights per workload (arbitrary units — only the
#: ranking matters).  Roughly calibrated against the default campaign on
#: the reference container; an unknown workload weighs 1.0.
HEURISTIC_WEIGHTS: Dict[str, float] = {
    "soc": 8.0,
    "noc_stress": 3.0,
    "video": 2.0,
    "contention": 1.5,
    "streaming": 1.0,
    "packet_stream": 1.0,
    "mixed": 1.0,
    "random_traffic": 0.8,
    "bursty": 0.8,
    "fault_drop": 0.8,
    "writer_reader": 0.2,
}

#: Heuristic cost of a workload absent from :data:`HEURISTIC_WEIGHTS`.
DEFAULT_WEIGHT = 1.0


class CostModel:
    """Learned per-(spec, mode) wall-time estimates with a static fallback.

    ``costs`` maps ``name -> {"workload": str | None, "modes": {mode ->
    {"wall_s": float, "samples": int}}}``.  An empty model is a
    pure-heuristic model — exactly what a cold-start ``--shard-by-cost``
    run uses.
    """

    def __init__(
        self,
        costs: Optional[Dict[str, Dict[str, object]]] = None,
        hosts: Optional[Dict[str, Dict[str, object]]] = None,
    ):
        self._hosts: Dict[str, Dict[str, object]] = {}
        for host, host_entry in (hosts or {}).items():
            if not isinstance(host_entry, dict) or "specs_per_s" not in host_entry:
                raise ValueError(
                    f"COSTS hosts entry for {host!r} is not of the form "
                    f'{{"specs_per_s": rate, "samples": n}}'
                )
            try:
                self._hosts[host] = {
                    "specs_per_s": float(host_entry["specs_per_s"]),
                    "samples": int(host_entry.get("samples", 1)),
                }
            except (TypeError, ValueError):
                raise ValueError(
                    f"COSTS hosts entry for {host!r} has non-numeric "
                    f"specs_per_s/samples"
                ) from None
        self._costs: Dict[str, Dict[str, object]] = {}
        for name, spec_entry in (costs or {}).items():
            if not isinstance(spec_entry, dict) or "modes" not in spec_entry:
                # Reject rather than degrade: a hand-written or
                # wrong-shape entry silently read as "no recorded modes"
                # would quietly fall back to the heuristic.
                raise ValueError(
                    f"COSTS entry for {name!r} is not of the form "
                    f'{{"workload": ..., "modes": {{mode: {{"wall_s": ...'
                    f'}}}}}}'
                )
            modes = spec_entry["modes"]
            if not isinstance(modes, dict) or not all(
                isinstance(entry, dict) and "wall_s" in entry
                for entry in modes.values()
            ):
                raise ValueError(
                    f"COSTS entry for {name!r}: 'modes' must map mode "
                    f'names to {{"wall_s": seconds, ...}} objects'
                )
            parsed = {
                mode: {
                    "wall_s": float(entry["wall_s"]),
                    "samples": int(entry.get("samples", 1)),
                }
                for mode, entry in modes.items()
            }
            self._costs[name] = {
                "workload": spec_entry.get("workload"),
                "modes": parsed,
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Optional[str]) -> "CostModel":
        """Read ``path``; a missing path (or ``None``) is an empty model,
        so cold starts need no special casing at the call site."""
        if path is None or not os.path.exists(path):
            return cls()
        with open(path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise ValueError(f"{path} is not a COSTS.json document")
        schema = document.get("schema")
        if schema != COSTS_SCHEMA:
            raise ValueError(
                f"{path} uses COSTS schema {schema!r}; this version reads "
                f"schema {COSTS_SCHEMA}"
            )
        return cls(document.get("costs", {}), document.get("hosts", {}))

    def save(self, path: str) -> None:
        """Atomically write the model (tmp file + rename).

        The advisory ``hosts`` key is written only when host throughput
        has been observed, so a model without it round-trips to a file
        byte-identical to the pre-telemetry format."""
        document = {"schema": COSTS_SCHEMA, "costs": self._costs}
        if self._hosts:
            document["hosts"] = self._hosts
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(document, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        mode: str,
        wall_s: float,
        workload: Optional[str] = None,
    ) -> None:
        """Fold one observed wall time into the (name, mode) estimate.

        ``workload`` (when known) is remembered so the model can
        calibrate the cold-start heuristic against recorded seconds —
        see :meth:`heuristic_scale`.
        """
        if wall_s <= 0:
            return
        spec_entry = self._costs.setdefault(
            name, {"workload": None, "modes": {}}
        )
        if workload is not None:
            spec_entry["workload"] = workload
        entry = spec_entry["modes"].get(mode)
        if entry is None:
            spec_entry["modes"][mode] = {"wall_s": float(wall_s), "samples": 1}
        else:
            entry["wall_s"] = (
                (1.0 - EWMA_ALPHA) * entry["wall_s"] + EWMA_ALPHA * wall_s
            )
            entry["samples"] = int(entry["samples"]) + 1

    def observe_result(self, result) -> None:
        """Record every wall time of a finished in-process campaign.

        Only freshly executed records carry wall times (records rebuilt
        from JSONL have ``wall_seconds == 0`` and are skipped — wall
        clock never crosses the JSONL boundary).  For a paired spec the
        run list holds only the spec's own mode; the other half's wall
        time is recovered from the pair record, whose ``wall_seconds``
        is the sum of both halves.
        """
        own_records = {}
        for record in result.runs:
            if record.wall_seconds > 0:
                self.observe(
                    record.name, record.mode, record.wall_seconds,
                    workload=record.workload,
                )
                own_records[record.name] = record
        for pair in result.pairs:
            own = own_records.get(pair.name)
            if own is None or pair.wall_seconds <= 0:
                continue
            other_mode = (
                MODE_SMART if own.mode == MODE_REFERENCE else MODE_REFERENCE
            )
            other_wall = pair.wall_seconds - own.wall_seconds
            if other_wall > 0:
                self.observe(
                    pair.name, other_mode, other_wall, workload=own.workload
                )

    def observe_host(self, host: str, specs_per_s: float) -> None:
        """Fold one observed host throughput into the advisory ``hosts``
        key (same EWMA as spec costs).

        Advisory only: nothing in estimation or partitioning reads it —
        it exists so ``telemetry-report`` and operators can compare
        machines of an orchestrated campaign.
        """
        if specs_per_s <= 0:
            return
        entry = self._hosts.get(host)
        if entry is None:
            self._hosts[host] = {
                "specs_per_s": float(specs_per_s), "samples": 1
            }
        else:
            entry["specs_per_s"] = (
                (1.0 - EWMA_ALPHA) * entry["specs_per_s"]
                + EWMA_ALPHA * specs_per_s
            )
            entry["samples"] = int(entry["samples"]) + 1

    def host_rates(self) -> Dict[str, Dict[str, object]]:
        """Copy of the advisory per-host throughput observations."""
        return {host: dict(entry) for host, entry in self._hosts.items()}

    def merge(self, other: "CostModel") -> None:
        """Fold another model's estimates in as observations.

        Used by the orchestrator to recombine the per-shard cost files a
        ``--record-costs`` campaign left behind on every host.
        """
        for name, spec_entry in other._costs.items():
            for mode, entry in spec_entry["modes"].items():
                self.observe(
                    name, mode, entry["wall_s"],
                    workload=spec_entry.get("workload"),
                )
        for host, entry in other._hosts.items():
            self.observe_host(host, entry["specs_per_s"])

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def recorded(self, name: str, mode: str) -> Optional[float]:
        entry = self._costs.get(name, {"modes": {}})["modes"].get(mode)
        return float(entry["wall_s"]) if entry is not None else None

    def heuristic_scale(self) -> float:
        """Seconds per heuristic-weight unit, calibrated on the recorded
        entries whose workload the file remembers.

        A partially warm model (a spec that always times out records no
        wall time; a newly added spec has none yet) must not mix raw
        heuristic units with recorded seconds inside one LPT partition —
        an 8.0-unit cold spec would dwarf 0.05 s warm neighbours.  With
        no calibratable entries the scale is 1.0 (pure-heuristic cold
        start, where only the ranking matters).  Pure function of the
        file contents, so every host computes the same partition.
        """
        total_wall = 0.0
        total_weight = 0.0
        for spec_entry in self._costs.values():
            workload = spec_entry.get("workload")
            if workload is None:
                continue
            weight = HEURISTIC_WEIGHTS.get(workload, DEFAULT_WEIGHT)
            for entry in spec_entry["modes"].values():
                total_wall += entry["wall_s"]
                total_weight += weight
        if total_weight <= 0:
            return 1.0
        return total_wall / total_weight

    def estimate(self, spec: ScenarioSpec, mode: Optional[str] = None) -> float:
        """Estimated wall seconds of running ``spec`` in ``mode``.

        Recorded estimate when one exists; otherwise the static workload
        heuristic scaled into seconds by :meth:`heuristic_scale`, so warm
        and cold specs stay commensurate within one partition.
        """
        mode = mode or spec.mode
        recorded = self.recorded(spec.name, mode)
        if recorded is not None:
            return recorded
        weight = HEURISTIC_WEIGHTS.get(spec.workload, DEFAULT_WEIGHT)
        return weight * self.heuristic_scale()

    def spec_cost(self, spec: ScenarioSpec, paired: bool) -> float:
        """Total cost of scheduling ``spec`` in a campaign.

        A pairable spec of a paired campaign runs both modes (two worker
        jobs), so its scheduling weight is the sum of both estimates.
        """
        if paired and spec_is_pairable(spec):
            return self.estimate(spec, MODE_REFERENCE) + self.estimate(
                spec, MODE_SMART
            )
        return self.estimate(spec, spec.mode)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._costs

    def names(self):
        return sorted(self._costs)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            name: {
                "workload": spec_entry.get("workload"),
                "modes": {
                    mode: dict(entry)
                    for mode, entry in spec_entry["modes"].items()
                },
            }
            for name, spec_entry in self._costs.items()
        }
