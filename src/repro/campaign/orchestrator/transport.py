"""Multi-host campaign transports and the :class:`Orchestrator`.

The orchestrator turns the single-pool campaign engine into a multi-host
one without ever shipping simulation state across the host boundary: every
host independently runs

    python -m repro.analysis.cli campaign --shard-by-cost i/N --jsonl ...

against its own checkout, recomputing the identical deterministic
partition from the identical spec list and ``COSTS.json``, and streaming
deterministic JSONL rows to a local file.  Only three kinds of artifact
ever cross the wire — the launch command, the small ``COSTS.json``
sideband, and the finished shard JSONL — never trace lines, which is what
keeps the transport cheap (the lesson of the co-emulation literature:
channel traffic between simulation hosts is the scaling bottleneck).

``HostTransport`` is the pluggable launch/poll/collect protocol:

* :class:`LocalSubprocessTransport` — each "host" is a subprocess on this
  machine with its own working directory.  Fully tested; what CI, the
  orchestrator smoke gate and the benchmarks use.
* :class:`SshTransport` — the same protocol spoken over ``ssh``/``scp``
  against a remote checkout.  The command construction is unit-tested;
  the network legs are deliberately thin wrappers.

The :class:`Orchestrator` drives N hosts, waits for every shard, collects
the shard JSONLs and merges them (:func:`repro.campaign.merge_jsonl`
enforces completeness), so its result carries the byte-identical
fingerprint an unsharded single-pool campaign would have produced.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis.reporting import dict_rows_table
from ...telemetry import (
    NULL_TELEMETRY,
    ProgressTicker,
    Telemetry,
    merge_telemetry_files,
)
from ..spec import ScenarioSpec
from .costs import CostModel
from .hosts import KIND_LOCAL, KIND_SSH, HostSpec
from .partition import cost_shards, estimated_makespans, makespan_spread

#: Where a host writes its orchestrator artifacts, relative to its
#: repository root (ssh hosts) or inside its private directory (local).
REMOTE_OUT_DIR = "orchestrate-out"


class OrchestratorError(RuntimeError):
    """A host failed to launch, crashed, or produced an unusable shard."""


def _repo_src_dir() -> str:
    """The ``src`` directory of this checkout (for PYTHONPATH)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
class HostTransport:
    """Launch/poll/collect protocol of one orchestrated host.

    Implementations must provide:

    * :meth:`launch` — start ``python -m repro.analysis.cli <cli_args>``
      on the host, logging to ``log_path``; returns an opaque handle.
    * :meth:`poll` — return the exit code, or ``None`` while running.
    * :meth:`terminate` — best-effort kill of a launched command.
    * :meth:`remote_path` — the path (as seen by the *host*) where an
      output artifact of the given name should be written.
    * :meth:`put_file` / :meth:`fetch_file` — ship a small sideband file
      to the host / retrieve an artifact from it.
    """

    kind: str = ""

    def __init__(self, host: HostSpec):
        host.validate()
        self.host = host

    def launch(self, cli_args: Sequence[str], log_path: str):
        raise NotImplementedError

    def poll(self, handle) -> Optional[int]:
        raise NotImplementedError

    def terminate(self, handle) -> None:
        raise NotImplementedError

    def remote_path(self, name: str) -> str:
        raise NotImplementedError

    def put_file(self, local_path: str, name: str) -> str:
        """Ship ``local_path`` to the host; returns the host-side path."""
        raise NotImplementedError

    def fetch_file(self, name: str, local_path: str) -> None:
        """Retrieve the artifact ``name`` from the host to ``local_path``."""
        raise NotImplementedError


class LocalSubprocessTransport(HostTransport):
    """A "host" that is a subprocess on this machine.

    Each host owns a private directory under ``base_dir`` (named after the
    host), which doubles as the subprocess working directory — so N local
    hosts never trample each other's artifacts.  ``PYTHONPATH`` is pointed
    at this checkout's ``src``; the interpreter defaults to
    ``sys.executable``.
    """

    kind = KIND_LOCAL

    def __init__(self, host: HostSpec, base_dir: str):
        super().__init__(host)
        # Absolute: remote_path() results are handed to a subprocess whose
        # working directory is the host dir, not the orchestrator's.
        self.base_dir = os.path.abspath(base_dir)
        self.host_dir = os.path.join(self.base_dir, host.name)
        os.makedirs(self.host_dir, exist_ok=True)

    @property
    def python(self) -> str:
        return self.host.python or sys.executable

    def command(self, cli_args: Sequence[str]) -> List[str]:
        return [self.python, "-m", "repro.analysis.cli", *cli_args]

    def launch(self, cli_args: Sequence[str], log_path: str):
        env = dict(os.environ)
        env.update(self.host.env)
        # This checkout's src must stay first on PYTHONPATH whatever the
        # host env declares — the shard campaign has to import repro.
        src = _repo_src_dir()
        existing = self.host.env.get(
            "PYTHONPATH", os.environ.get("PYTHONPATH")
        )
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        log = open(log_path, "w")
        try:
            process = subprocess.Popen(
                self.command(cli_args),
                cwd=self.host_dir,
                env=env,
                stdout=log,
                stderr=subprocess.STDOUT,
            )
        finally:
            # Popen duplicated the descriptor (or raised); either way the
            # parent's handle is no longer needed.
            log.close()
        return process

    def poll(self, handle) -> Optional[int]:
        return handle.poll()

    def terminate(self, handle) -> None:
        if handle.poll() is None:
            handle.terminate()
            try:
                handle.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                handle.kill()
                handle.wait()

    def remote_path(self, name: str) -> str:
        return os.path.join(self.host_dir, name)

    def put_file(self, local_path: str, name: str) -> str:
        destination = self.remote_path(name)
        if os.path.abspath(local_path) != os.path.abspath(destination):
            shutil.copyfile(local_path, destination)
        return destination

    def fetch_file(self, name: str, local_path: str) -> None:
        source = self.remote_path(name)
        if not os.path.exists(source):
            raise OrchestratorError(
                f"host {self.host.name!r} did not produce {name!r} "
                f"(expected at {source})"
            )
        if os.path.abspath(source) != os.path.abspath(local_path):
            shutil.copyfile(source, local_path)


class SshTransport(HostTransport):
    """The same launch/poll/collect protocol spoken over ssh/scp.

    The launched command is::

        ssh [-p PORT] [user@]address \\
            'cd WORKDIR && mkdir -p orchestrate-out && \\
             PYTHONPATH=src [ENV...] PYTHON -m repro.analysis.cli ...'

    The local ``ssh`` client process is the job handle: its exit code is
    the remote command's exit code, so poll/terminate work exactly like
    the local transport.  Sideband files travel by ``scp``.  Command
    construction (:meth:`remote_shell_command`, :meth:`ssh_argv`,
    :meth:`scp_put_argv`, :meth:`scp_fetch_argv`) is pure and
    unit-tested; ``popen``/``run`` are injectable for tests.
    """

    kind = KIND_SSH

    #: ssh options applied to every connection: never prompt (an
    #: orchestrated campaign is unattended by definition).
    BATCH_OPTIONS = ("-o", "BatchMode=yes")

    def __init__(
        self,
        host: HostSpec,
        *,
        popen=subprocess.Popen,
        run=subprocess.run,
    ):
        super().__init__(host)
        self._popen = popen
        self._run = run

    @property
    def python(self) -> str:
        return self.host.python or "python3"

    # -- pure command builders (unit-tested) ---------------------------
    def remote_path(self, name: str) -> str:
        return f"{self.host.workdir.rstrip('/')}/{REMOTE_OUT_DIR}/{name}"

    def remote_shell_command(self, cli_args: Sequence[str]) -> str:
        # The checkout's src leads PYTHONPATH; a host-declared PYTHONPATH
        # is appended rather than allowed to clobber it.
        user_pythonpath = self.host.env.get("PYTHONPATH")
        pythonpath = f"src:{user_pythonpath}" if user_pythonpath else "src"
        environment = f"PYTHONPATH={shlex.quote(pythonpath)}"
        for key in sorted(self.host.env):
            if key == "PYTHONPATH":
                continue
            environment += f" {key}={shlex.quote(self.host.env[key])}"
        command = " ".join(shlex.quote(arg) for arg in cli_args)
        return (
            f"cd {shlex.quote(self.host.workdir)} && "
            f"mkdir -p {REMOTE_OUT_DIR} && "
            f"{environment} {shlex.quote(self.python)} "
            f"-m repro.analysis.cli {command}"
        )

    def _port_options(self, flag: str) -> List[str]:
        return [flag, str(self.host.port)] if self.host.port else []

    def ssh_argv(self, remote_command: str) -> List[str]:
        return [
            "ssh", *self.BATCH_OPTIONS, *self._port_options("-p"),
            self.host.destination, remote_command,
        ]

    def scp_put_argv(self, local_path: str, name: str) -> List[str]:
        # The remote path is passed unquoted on purpose: scp's legacy
        # protocol shell-expands it while its SFTP protocol (OpenSSH >= 9
        # default) takes it literally, so quoting is correct on exactly
        # one of them.  HostSpec.validate rejects workdirs that would
        # need quoting, making the plain form right on both.
        return [
            "scp", *self.BATCH_OPTIONS, *self._port_options("-P"),
            local_path, f"{self.host.destination}:{self.remote_path(name)}",
        ]

    def scp_fetch_argv(self, name: str, local_path: str) -> List[str]:
        return [
            "scp", *self.BATCH_OPTIONS, *self._port_options("-P"),
            f"{self.host.destination}:{self.remote_path(name)}", local_path,
        ]

    # -- protocol ------------------------------------------------------
    def launch(self, cli_args: Sequence[str], log_path: str):
        log = open(log_path, "w")
        try:
            process = self._popen(
                self.ssh_argv(self.remote_shell_command(cli_args)),
                stdout=log,
                stderr=subprocess.STDOUT,
            )
        finally:
            log.close()
        return process

    def poll(self, handle) -> Optional[int]:
        return handle.poll()

    def terminate(self, handle) -> None:
        # Kills the local ssh client; sshd delivers the hangup to the
        # remote command (no controlling tty, so a stubborn remote
        # process can linger — acceptable for a best-effort abort).
        if handle.poll() is None:
            handle.terminate()

    def _run_checked(self, argv: List[str], action: str) -> None:
        completed = self._run(argv, capture_output=True)
        if completed.returncode != 0:
            stderr = (completed.stderr or b"").decode(errors="replace").strip()
            raise OrchestratorError(
                f"host {self.host.name!r}: {action} failed "
                f"(exit {completed.returncode}): {stderr}"
            )

    def put_file(self, local_path: str, name: str) -> str:
        self._run_checked(
            self.ssh_argv(
                f"mkdir -p {shlex.quote(self.host.workdir.rstrip('/'))}"
                f"/{REMOTE_OUT_DIR}"
            ),
            "remote mkdir",
        )
        self._run_checked(self.scp_put_argv(local_path, name), f"put {name}")
        return self.remote_path(name)

    def fetch_file(self, name: str, local_path: str) -> None:
        self._run_checked(self.scp_fetch_argv(name, local_path), f"fetch {name}")


def make_transport(host: HostSpec, base_dir: str) -> HostTransport:
    """Build the transport matching ``host.kind``."""
    if host.kind == KIND_LOCAL:
        return LocalSubprocessTransport(host, base_dir)
    if host.kind == KIND_SSH:
        return SshTransport(host)
    raise ValueError(f"unknown host kind {host.kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# The orchestrator
# ---------------------------------------------------------------------------
@dataclass
class HostRun:
    """Outcome of one host's shard campaign (wall clock is provenance)."""

    host: HostSpec
    shard_index: int
    shard_count: int
    spec_names: List[str]
    jsonl_path: str
    log_path: str
    returncode: int
    wall_seconds: float
    estimated_cost: float


@dataclass
class OrchestratorResult:
    """Merged outcome of an orchestrated campaign."""

    result: object  #: the merged :class:`~repro.campaign.runner.CampaignResult`
    host_runs: List[HostRun]
    shard_by: str  #: ``"cost"`` or ``"index"``
    merged_jsonl: Optional[str] = None

    def fingerprint(self) -> str:
        return self.result.fingerprint()

    def makespans(self) -> List[float]:
        """Measured wall seconds per host (launch to observed exit)."""
        return [run.wall_seconds for run in self.host_runs]

    def makespan_spread(self) -> float:
        """max/min over the measured per-host wall times."""
        return makespan_spread(self.makespans())

    def host_rows(self) -> List[Dict[str, object]]:
        rows = []
        for run in self.host_runs:
            rows.append(
                {
                    "host": run.host.name,
                    "kind": run.host.kind,
                    "shard": f"{run.shard_index}/{run.shard_count}",
                    "specs": len(run.spec_names),
                    "est_cost": round(run.estimated_cost, 4),
                    "wall_s": round(run.wall_seconds, 4),
                    "exit": run.returncode,
                }
            )
        return rows

    def hosts_table(self) -> str:
        return dict_rows_table(
            self.host_rows(),
            ["host", "kind", "shard", "specs", "est_cost", "wall_s", "exit"],
            title="Orchestrated shard campaigns",
        )

    def summary(self) -> str:
        lines = [
            f"{len(self.host_runs)} hosts, shard_by={self.shard_by}, "
            f"makespan spread (max/min wall): {self.makespan_spread():.2f}",
        ]
        if self.merged_jsonl:
            lines.append(f"merged JSONL: {self.merged_jsonl}")
        lines.append(self.result.summary())
        return "\n".join(lines)


class Orchestrator:
    """Drive N hosts through one cost-sharded campaign and merge the shards.

    Parameters
    ----------
    hosts:
        The machines (``HostSpec``; see :func:`~repro.campaign
        .orchestrator.hosts.local_hosts` and ``parse_hosts_file``).
    out_dir:
        Local directory receiving per-host working dirs, logs, collected
        shard JSONLs and the optional merged JSONL.
    workers_per_host:
        ``--workers`` value each shard campaign runs with.
    paired:
        Forwarded to every shard (``--no-paired`` when False).
    shard_by_cost:
        Partition by recorded/estimated cost (the default) or fall back
        to the historical round-robin ``--shard`` (for comparison runs).
    costs_path:
        Local ``COSTS.json`` shipped to every host so they all compute
        the identical partition.  ``None`` = cold-start heuristic (still
        identical everywhere: the heuristic is pure code).
    spec_timeout_s / campaign_budget_s:
        Forwarded to every shard as ``--spec-timeout`` /
        ``--campaign-budget`` (see :class:`~repro.campaign.orchestrator
        .budget.RunBudget`).
    record_costs_path:
        When set, every host records its shard's wall times
        (``--record-costs``); the per-host cost files are collected and
        merged into this local path after the run.  Each host's observed
        throughput (shard specs over makespan) is folded into the file's
        advisory ``hosts`` key — telemetry for operators, never a
        partitioning input.
    telemetry_dir:
        Optional local directory receiving the :mod:`repro.telemetry`
        sideband of the whole orchestrated run: the orchestrator's own
        per-host launch/poll/collect spans and shard makespans
        (``orchestrator.jsonl``), each host's campaign telemetry fetched
        back as ``host-<name>.jsonl`` (their shards run with
        ``--telemetry``), all merged into ``telemetry.jsonl`` at the end.
        Wall-clock sideband only; the merged fingerprint is identical
        with it on or off.
    progress:
        When True, render a live stderr ticker: specs done / total
        (counted from the local shards' growing JSONL files), a per-host
        state tail and an ETA.  Display only, stderr only.
    """

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        out_dir: str,
        *,
        workers_per_host: int = 1,
        paired: bool = True,
        shard_by_cost: bool = True,
        costs_path: Optional[str] = None,
        spec_timeout_s: Optional[float] = None,
        campaign_budget_s: Optional[float] = None,
        record_costs_path: Optional[str] = None,
        poll_interval: float = 0.1,
        telemetry_dir: Optional[str] = None,
        progress: bool = False,
    ):
        if not hosts:
            raise ValueError("orchestrator needs at least one host")
        names = [host.name for host in hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names: {sorted(names)}")
        for host in hosts:
            host.validate()
        if workers_per_host < 1:
            raise ValueError(
                f"workers_per_host must be >= 1, got {workers_per_host}"
            )
        self.hosts = list(hosts)
        self.out_dir = out_dir
        self.workers_per_host = workers_per_host
        self.paired = paired
        self.shard_by_cost = shard_by_cost
        self.costs_path = costs_path
        self.spec_timeout_s = spec_timeout_s
        self.campaign_budget_s = campaign_budget_s
        self.record_costs_path = record_costs_path
        self.poll_interval = poll_interval
        self.telemetry_dir = telemetry_dir
        self.progress = progress

    # ------------------------------------------------------------------
    def _resolve_specs(
        self, spec_names: Optional[Sequence[str]]
    ) -> List[ScenarioSpec]:
        """Orchestrated specs must come from the registry's default
        campaign: the launch command reconstructs them *by name* on the
        remote side, so an ad-hoc spec object would silently run as
        something else there."""
        from ..scenarios import default_campaign

        specs = default_campaign()
        if spec_names is None:
            return specs
        by_name = {spec.name: spec for spec in specs}
        unknown = [name for name in spec_names if name not in by_name]
        if unknown:
            raise OrchestratorError(
                f"unknown spec name(s): {', '.join(unknown)}; the "
                f"orchestrator can only ship default-campaign specs "
                f"(hosts rebuild them by name)"
            )
        if len(set(spec_names)) != len(spec_names):
            # The same check every host's CampaignRunner would make —
            # fail here, before N hosts fan out and crash on it.
            duplicates = sorted(
                {name for name in spec_names if spec_names.count(name) > 1}
            )
            raise OrchestratorError(
                f"duplicate spec name(s): {', '.join(duplicates)}"
            )
        return [by_name[name] for name in spec_names]

    def _shard_cli_args(
        self, index: int, count: int, remote_costs: Optional[str]
    ) -> List[str]:
        if self.shard_by_cost:
            args = ["--shard-by-cost", f"{index}/{count}"]
            if remote_costs:
                args += ["--costs", remote_costs]
            return args
        return ["--shard", f"{index}/{count}"]

    def _log_tail(self, path: str, limit: int = 2000) -> str:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError:
            return "(no log)"
        return text[-limit:]

    @staticmethod
    def _count_done_rows(path: str) -> int:
        """Completed-spec rows (run + timeout) in a growing shard JSONL.

        A cheap substring scan over the compact row encoding, used only
        by the ``--progress`` ticker against *local* shards (a remote
        shard's file is not visible until collected)."""
        try:
            with open(path) as handle:
                return sum(
                    1
                    for line in handle
                    if '"type":"run"' in line or '"type":"timeout"' in line
                )
        except OSError:
            return 0

    def _tick_progress(self, ticker, launched) -> None:
        """Advance the stderr ticker from whatever is observable now.

        Local shards are counted row-by-row as their files grow; a
        remote shard only contributes once its host has exited (its
        rows are not visible until collected)."""
        total_done = 0
        states = []
        for transport, _, run in launched:
            exited = run.returncode != -1
            if isinstance(transport, LocalSubprocessTransport):
                total_done += self._count_done_rows(
                    transport.remote_path(f"shard{run.shard_index}.jsonl")
                )
            elif exited:
                total_done += len(run.spec_names)
            states.append(
                f"{run.host.name}:" + ("done" if exited else "running")
            )
        while ticker.done < total_done:
            ticker.item_done()
        ticker.tick(detail=" ".join(states))

    # ------------------------------------------------------------------
    def run(
        self,
        spec_names: Optional[Sequence[str]] = None,
        merged_jsonl: Optional[str] = None,
    ) -> OrchestratorResult:
        """Launch every shard, wait, collect, merge; see the class doc.

        ``merged_jsonl`` additionally writes the merged rows as one
        unsharded campaign JSONL file (itself re-mergeable), which is
        what CI uploads as the orchestrate-smoke artifact.
        """
        # Imported lazily: this module is imported while
        # ``repro.campaign.runner`` is still initializing (runner pulls
        # the budget types from this package), so the runner symbols are
        # only available at call time.
        from ..runner import (
            MERGED_TELEMETRY,
            CampaignRunner,
            JsonlSink,
            merge_jsonl,
        )

        specs = self._resolve_specs(spec_names)
        names = [spec.name for spec in specs]
        count = len(self.hosts)
        os.makedirs(self.out_dir, exist_ok=True)
        model = CostModel.load(self.costs_path)
        if self.shard_by_cost:
            shards = cost_shards(specs, count, model, self.paired)
        else:
            # The canonical round-robin partitioner: must stay the exact
            # slicing the hosts apply through ``--shard i/N``.
            shards = [
                CampaignRunner.shard_specs(specs, index, count)
                for index in range(count)
            ]
        estimates = estimated_makespans(shards, model, self.paired)

        telemetry = NULL_TELEMETRY
        if self.telemetry_dir is not None:
            os.makedirs(self.telemetry_dir, exist_ok=True)
            telemetry = Telemetry(
                "orchestrate",
                path=os.path.join(self.telemetry_dir, "orchestrator.jsonl"),
            )
        ticker = (
            ProgressTicker(len(specs), label="orchestrate")
            if self.progress
            else None
        )

        launched: List[Tuple[HostTransport, object, HostRun]] = []
        #: Per-host launch timestamp: host launches are sequential (an
        #: ssh put_file can take seconds), so measuring every wall from
        #: one shared start would under-count the earlier hosts and make
        #: the makespan spread look better than it is.
        launch_times: Dict[str, float] = {}
        try:
            for index, (host, shard) in enumerate(zip(self.hosts, shards)):
                with telemetry.span(
                    "orchestrate.launch",
                    host=host.name,
                    shard=f"{index}/{count}",
                ):
                    transport = make_transport(host, self.out_dir)
                    remote_costs = None
                    if (
                        self.shard_by_cost
                        and self.costs_path
                        and os.path.exists(self.costs_path)
                    ):
                        remote_costs = transport.put_file(
                            self.costs_path, "COSTS.json"
                        )
                    jsonl_name = f"shard{index}.jsonl"
                    cli_args = [
                        "campaign",
                        "--specs", ",".join(names),
                        "--workers", str(self.workers_per_host),
                        "--jsonl", transport.remote_path(jsonl_name),
                    ]
                    cli_args += self._shard_cli_args(
                        index, count, remote_costs
                    )
                    if not self.paired:
                        cli_args.append("--no-paired")
                    if self.spec_timeout_s is not None:
                        cli_args += [
                            "--spec-timeout", str(self.spec_timeout_s)
                        ]
                    if self.campaign_budget_s is not None:
                        cli_args += [
                            "--campaign-budget", str(self.campaign_budget_s)
                        ]
                    if self.record_costs_path:
                        cli_args += [
                            "--record-costs",
                            transport.remote_path(f"costs_{host.name}.json"),
                        ]
                    if self.telemetry_dir is not None:
                        # Each host writes its own merged sideband under
                        # its working dir; collected after the campaign.
                        cli_args += [
                            "--telemetry",
                            transport.remote_path("telemetry"),
                        ]
                    log_path = os.path.join(self.out_dir, f"{host.name}.log")
                    handle = transport.launch(cli_args, log_path)
                    launch_times[host.name] = time.monotonic()
                run = HostRun(
                    host=host,
                    shard_index=index,
                    shard_count=count,
                    spec_names=[spec.name for spec in shard],
                    jsonl_path=os.path.join(self.out_dir, jsonl_name),
                    log_path=log_path,
                    returncode=-1,
                    wall_seconds=0.0,
                    estimated_cost=estimates[index],
                )
                launched.append((transport, handle, run))

            pending = list(launched)
            while pending:
                time.sleep(self.poll_interval)
                still = []
                for transport, handle, run in pending:
                    poll_t0 = (
                        time.monotonic() if telemetry.enabled else 0.0
                    )
                    code = transport.poll(handle)
                    if telemetry.enabled:
                        telemetry.span_at(
                            "orchestrate.poll",
                            poll_t0,
                            time.monotonic() - poll_t0,
                            host=run.host.name,
                        )
                    if code is None:
                        still.append((transport, handle, run))
                        continue
                    run.returncode = code
                    run.wall_seconds = (
                        time.monotonic() - launch_times[run.host.name]
                    )
                    if telemetry.enabled:
                        telemetry.span_at(
                            "orchestrate.host",
                            launch_times[run.host.name],
                            run.wall_seconds,
                            host=run.host.name,
                            shard=f"{run.shard_index}/{run.shard_count}",
                            specs=len(run.spec_names),
                        )
                        if run.wall_seconds > 0 and run.spec_names:
                            telemetry.gauge(
                                f"orchestrate.specs_per_s.{run.host.name}",
                                len(run.spec_names) / run.wall_seconds,
                            )
                pending = still
                if ticker is not None:
                    self._tick_progress(ticker, launched)
        except BaseException:
            for transport, handle, _ in launched:
                transport.terminate(handle)
            if ticker is not None:
                ticker.finish()
            raise

        failures = []
        for transport, _, run in launched:
            # Exit code 1 is normally a *completed* campaign reporting a
            # non-equivalent pair or a timeout row — its shard file is
            # valid and must be merged.  But an uncaught exception in the
            # host's python also exits 1, so a crash can only be told
            # apart by its artifacts: a missing or unmergeable shard file
            # below is reported *with* the log tails of every non-zero
            # host, where the traceback lives.
            if run.returncode not in (0, 1):
                failures.append(
                    f"host {run.host.name!r} (shard "
                    f"{run.shard_index}/{run.shard_count}) exited with "
                    f"{run.returncode}; log tail:\n"
                    f"{self._log_tail(run.log_path)}"
                )
        if failures:
            raise OrchestratorError(
                "orchestrated campaign failed:\n" + "\n".join(failures)
            )

        def suspect_log_tails() -> str:
            tails = [
                f"host {run.host.name!r} exited with {run.returncode}; "
                f"log tail:\n{self._log_tail(run.log_path)}"
                for _, _, run in launched
                if run.returncode != 0
            ]
            return ("\n" + "\n".join(tails)) if tails else ""

        for transport, _, run in launched:
            try:
                with telemetry.span(
                    "orchestrate.collect", host=run.host.name
                ):
                    transport.fetch_file(
                        f"shard{run.shard_index}.jsonl", run.jsonl_path
                    )
            except OrchestratorError as exc:
                if telemetry.enabled:
                    telemetry.close()
                if ticker is not None:
                    ticker.finish()
                raise OrchestratorError(
                    f"{exc}{suspect_log_tails()}"
                ) from None

        try:
            merged = merge_jsonl([run.jsonl_path for _, _, run in launched])
        except ValueError as exc:
            raise OrchestratorError(
                f"collected shard files do not merge: {exc}"
                f"{suspect_log_tails()}"
            ) from None

        if self.record_costs_path:
            collected = CostModel.load(self.record_costs_path)
            for transport, _, run in launched:
                name = f"costs_{run.host.name}.json"
                local = os.path.join(self.out_dir, name)
                transport.fetch_file(name, local)
                collected.merge(CostModel.load(local))
                if run.wall_seconds > 0 and run.spec_names:
                    # Advisory throughput observation; the LPT
                    # partitioner never reads it (see costs.py).
                    collected.observe_host(
                        run.host.name,
                        len(run.spec_names) / run.wall_seconds,
                    )
            collected.save(self.record_costs_path)

        if self.telemetry_dir is not None:
            host_files = []
            for transport, _, run in launched:
                local = os.path.join(
                    self.telemetry_dir, f"host-{run.host.name}.jsonl"
                )
                try:
                    with telemetry.span(
                        "orchestrate.collect_telemetry", host=run.host.name
                    ):
                        transport.fetch_file(
                            "telemetry/telemetry.jsonl", local
                        )
                    host_files.append(local)
                except OrchestratorError:
                    # A host that ran zero jobs (empty shard) writes no
                    # sideband; the orchestrated rows are unaffected.
                    telemetry.counter("orchestrate.telemetry_missing")
            telemetry.close()
            merge_telemetry_files(
                [os.path.join(self.telemetry_dir, "orchestrator.jsonl")]
                + host_files,
                os.path.join(self.telemetry_dir, MERGED_TELEMETRY),
                remove_sources=True,
            )
        if ticker is not None:
            ticker.finish()

        if merged_jsonl:
            with open(merged_jsonl, "w") as stream:
                sink = JsonlSink(
                    stream, specs, self.workers_per_host, self.paired
                )
                for record in merged.runs:
                    sink.run_completed(record)
                for pair in merged.pairs:
                    sink.pair_completed(pair)
                for timeout in merged.timeouts:
                    sink.timeout_completed(timeout)

        return OrchestratorResult(
            result=merged,
            host_runs=[run for _, _, run in launched],
            shard_by="cost" if self.shard_by_cost else "index",
            merged_jsonl=merged_jsonl,
        )
