"""Workload builders of the campaign registry, plus the default campaign.

Each builder turns a :class:`~repro.campaign.spec.ScenarioSpec` into a
ready-to-run scenario inside a caller-provided
:class:`~repro.kernel.simulator.Simulator`.  All builders honour the same
contract:

* ``mode="reference"`` builds the regular-FIFO, non-decoupled twin and
  ``mode="smart"`` the Smart-FIFO, temporally decoupled one;
* every randomized knob derives from ``spec.seed`` only;
* the ``extras`` hook returns *deterministic* JSON-serializable values
  (dates, checksums, counters — never wall-clock), because the campaign
  guarantees byte-identical aggregated results regardless of worker count.

``params`` keys per workload:

* ``writer_reader`` — ``values`` (count of transferred values);
* ``streaming`` — ``n_blocks``, ``words_per_block``;
* ``video`` — ``n_frames``, ``macroblocks_per_frame``;
* ``random_traffic`` — any :class:`RandomTrafficConfig` field except
  ``seed``/``fifo_depth`` (taken from the spec);
* ``bursty`` — any :class:`BurstyConfig` field except ``seed``/``fifo_depth``;
* ``contention`` — any :class:`ContentionConfig` field except
  ``seed``/``fifo_depth``;
* ``soc`` — ``n_chains``, ``workers_per_chain``, ``items_per_chain``,
  ``packet_size``;
* ``noc_stress`` — any :class:`NocStressConfig` field except
  ``seed``/``fifo_depth``;
* ``packet_stream`` — any :class:`PacketStreamConfig` field except
  ``seed``/``fifo_depth``;
* ``mixed`` — any :class:`MixedTopologyConfig` field except
  ``seed``/``fifo_depth``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..kernel.simtime import TimeUnit
from ..kernel.simulator import Simulator
from ..soc.platform import FifoPolicy, SocConfig, SocPlatform
from ..td.quantum import GlobalQuantum
from ..workloads.bursty import BurstyConfig, BurstyScenario
from ..workloads.contention import ArbiterContentionScenario, ContentionConfig
from ..workloads.fault_drop import FaultDropConfig, FaultDropScenario
from ..workloads.mixed import MixedTopologyConfig, MixedTopologyScenario
from ..workloads.noc_stress import NocStressConfig, NocStressScenario
from ..workloads.packet_stream import PacketStreamConfig, PacketStreamScenario
from ..workloads.random_traffic import RandomTrafficConfig, RandomTrafficScenario
from ..workloads.streaming import (
    ExampleMode,
    PipelineModel,
    StreamingConfig,
    StreamingPipeline,
    WriterReaderExample,
)
from ..workloads.video import VideoConfig, VideoPipeline
from .spec import (
    MODE_REFERENCE,
    MODE_SMART,
    BuiltScenario,
    ScenarioSpec,
    register_workload,
    workload_entry,
)


def _ns(time) -> float:
    return time.to(TimeUnit.NS) if time is not None else -1.0


def _reject_timing_override(spec: ScenarioSpec) -> None:
    if spec.timing is not None:
        raise ValueError(
            f"spec {spec.name}: workload {spec.workload!r} does not support "
            f"the timing override {spec.timing!r}"
        )


def _config_param_keys(config_cls) -> tuple:
    """Param keys for config-dataclass workloads: every field except the
    ones the spec itself carries (seed, fifo_depth)."""
    return tuple(
        key
        for key in config_cls.__dataclass_fields__
        if key not in ("seed", "fifo_depth")
    )


def _config_from_spec(config_cls, spec: ScenarioSpec):
    """Build a seed/depth-carrying workload config from the spec params."""
    fields = {
        key: int(value)
        for key, value in spec.params.items()
        if key in _config_param_keys(config_cls)
    }
    return config_cls(seed=spec.seed, fifo_depth=spec.depth, **fields)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
@register_workload(
    "writer_reader",
    description="Fig. 1/2/3 didactic writer/reader example",
    param_keys=("values",),
)
def build_writer_reader(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    mode = ExampleMode.SMART if spec.mode == MODE_SMART else ExampleMode.REFERENCE
    count = int(spec.params.get("values", 3))
    example = WriterReaderExample(
        sim, mode=mode, fifo_depth=spec.depth, values=tuple(range(1, count + 1))
    )
    return BuiltScenario(
        scenario=example,
        extras=lambda: {
            "dates_ns": [list(row) for row in example.dates_ns()],
        },
    )


@register_workload(
    "streaming",
    description="Fig. 5 source -> transmitter -> sink pipeline",
    param_keys=("n_blocks", "words_per_block"),
)
def build_streaming(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    config = StreamingConfig(
        n_blocks=int(spec.params.get("n_blocks", 10)),
        words_per_block=int(spec.params.get("words_per_block", 25)),
        fifo_depth=spec.depth,
    )
    if spec.timing == "untimed":
        model = PipelineModel.UNTIMED
    elif spec.timing == "quantum":
        GlobalQuantum.instance(sim).set(spec.quantum_ns, TimeUnit.NS)
        model = PipelineModel.QUANTUM
    elif spec.mode == MODE_SMART:
        model = PipelineModel.TDFULL
    else:
        model = PipelineModel.TDLESS
    pipeline = StreamingPipeline(sim, model, config, burst=spec.burst)
    return BuiltScenario(
        scenario=pipeline,
        verify=pipeline.verify,
        extras=lambda: {
            "completion_ns": _ns(pipeline.completion_time),
            "checksum": pipeline.checksum,
        },
    )


@register_workload(
    "video",
    description="video-decoder-like accelerator chain",
    param_keys=("n_frames", "macroblocks_per_frame"),
)
def build_video(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = VideoConfig(
        n_frames=int(spec.params.get("n_frames", 2)),
        macroblocks_per_frame=int(spec.params.get("macroblocks_per_frame", 12)),
        fifo_depth=spec.depth,
    )
    pipeline = VideoPipeline(
        sim, decoupled=spec.mode == MODE_SMART, config=config, burst=spec.burst
    )

    def verify() -> None:
        assert pipeline.display.items_processed == config.total_items

    return BuiltScenario(
        scenario=pipeline,
        verify=verify,
        extras=lambda: {
            "completion_ns": _ns(pipeline.completion_time),
            "frame_dates_ns": [_ns(date) for date in pipeline.frame_dates],
        },
    )


@register_workload(
    "random_traffic",
    description="seeded random producer/consumer + monitor",
    param_keys=_config_param_keys(RandomTrafficConfig),
)
def build_random_traffic(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = _config_from_spec(RandomTrafficConfig, spec)
    scenario = RandomTrafficScenario(
        sim, decoupled=spec.mode == MODE_SMART, config=config, burst=spec.burst
    )

    def verify() -> None:
        assert len(scenario.consumed_values) == config.item_count

    return BuiltScenario(
        scenario=scenario,
        verify=verify,
        extras=lambda: {
            "consumed_checksum": sum(scenario.consumed_values),
            "monitor_samples": [
                [_ns(date), size] for date, size in scenario.monitor_samples
            ],
        },
    )


@register_workload(
    "bursty",
    description="seeded bursty producer, steady consumer",
    param_keys=_config_param_keys(BurstyConfig),
)
def build_bursty(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = _config_from_spec(BurstyConfig, spec)
    scenario = BurstyScenario(
        sim, decoupled=spec.mode == MODE_SMART, config=config, burst=spec.burst
    )
    return BuiltScenario(
        scenario=scenario,
        verify=scenario.verify,
        extras=lambda: {
            "total_items": config.total_items,
            "consumed_checksum": sum(scenario.consumed_values),
        },
    )


@register_workload(
    "contention",
    pairable=False,
    description="multi-writer/multi-reader Smart FIFO arbiter contention",
    param_keys=_config_param_keys(ContentionConfig),
)
def build_contention(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    if spec.mode != MODE_SMART:
        raise ValueError(
            f"spec {spec.name}: the contention scenario has no reference twin "
            "(arbitration delays are a property of the decoupled schedule); "
            "its oracle is ArbiterContentionScenario.verify"
        )
    config = _config_from_spec(ContentionConfig, spec)
    scenario = ArbiterContentionScenario(sim, config, burst=spec.burst)

    def verify() -> None:
        scenario.verify()
        assert scenario.arbitration_happened

    return BuiltScenario(
        scenario=scenario,
        verify=verify,
        extras=lambda: {
            "write_arbitrated": scenario.write_arbiter.arbitrated_accesses,
            "read_arbitrated": scenario.read_arbiter.arbitrated_accesses,
            "last_write_grant_fs": scenario.write_arbiter.last_grant_fs,
            "last_read_grant_fs": scenario.read_arbiter.last_grant_fs,
        },
    )


@register_workload(
    "fault_drop",
    description="seeded dropped-packet fault the paired diff must flag",
    param_keys=_config_param_keys(FaultDropConfig),
)
def build_fault_drop(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    """Negative-path coverage for the Section IV-A methodology.

    Pairable on purpose: the smart run drops one seeded value, so a paired
    campaign containing a ``fault_drop`` spec must come back with
    ``equivalent=False`` for it (trace diff *and* checksum extras) — if it
    ever reports equivalence, the validation pipeline itself is broken.
    Not part of :func:`default_campaign` for exactly that reason.
    """
    _reject_timing_override(spec)
    config = _config_from_spec(FaultDropConfig, spec)
    scenario = FaultDropScenario(
        sim, decoupled=spec.mode == MODE_SMART, config=config,
        burst=spec.burst,
    )
    return BuiltScenario(
        scenario=scenario,
        verify=scenario.verify,
        extras=lambda: {
            "consumed_checksum": scenario.checksum(),
            "consumed_count": len(scenario.consumer.values),
        },
    )


@register_workload(
    "noc_stress",
    description="NoC-only router stress: mesh cross-traffic, arbitration oracle",
    param_keys=_config_param_keys(NocStressConfig),
)
def build_noc_stress(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = _config_from_spec(NocStressConfig, spec)
    scenario = NocStressScenario(
        sim, config, sync_on_access=spec.mode != MODE_SMART, burst=spec.burst
    )
    return BuiltScenario(
        scenario=scenario,
        verify=scenario.verify,
        extras=lambda: {
            "packets_routed": scenario.total_packets_routed,
            "router_packets": {
                f"{x}_{y}": router.packets_routed
                for (x, y), router in sorted(scenario.mesh.routers.items())
            },
            "checksums": scenario.checksums(),
            "finish_dates_ns": scenario.consumer_finish_dates_ns(),
        },
    )


@register_workload(
    "packet_stream",
    description="packet-granularity Smart FIFO API vs a word-level oracle",
    param_keys=_config_param_keys(PacketStreamConfig),
)
def build_packet_stream(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = _config_from_spec(PacketStreamConfig, spec)
    scenario = PacketStreamScenario(
        sim, config, sync_on_access=spec.mode != MODE_SMART,
        burst=spec.burst,
    )
    return BuiltScenario(
        scenario=scenario,
        verify=scenario.verify,
        extras=lambda: {
            "checksum": scenario.checksum(),
            "packet_dates_ns": list(scenario.consumer.packet_dates_ns),
            "packets_relayed": scenario.relay.packets_relayed,
        },
    )


@register_workload(
    "mixed",
    description="mixed smart/regular topology with one domain boundary",
    param_keys=_config_param_keys(MixedTopologyConfig),
)
def build_mixed(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = _config_from_spec(MixedTopologyConfig, spec)
    scenario = MixedTopologyScenario(
        sim, decoupled=spec.mode == MODE_SMART, config=config,
        burst=spec.burst,
    )
    return BuiltScenario(
        scenario=scenario,
        verify=scenario.verify,
        extras=lambda: {
            "checksum": scenario.checksum(),
            "completion_ns": scenario.completion_ns(),
        },
    )


@register_workload(
    "soc",
    pairable=False,
    description="Section IV-C heterogeneous many-core SoC case study",
    param_keys=("n_chains", "workers_per_chain", "items_per_chain", "packet_size"),
)
def build_soc(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    _reject_timing_override(spec)
    config = SocConfig(
        n_chains=int(spec.params.get("n_chains", 2)),
        workers_per_chain=int(spec.params.get("workers_per_chain", 2)),
        items_per_chain=int(spec.params.get("items_per_chain", 64)),
        packet_size=int(spec.params.get("packet_size", 4)),
        fifo_depth=spec.depth,
        monitor_repetitions=2,
        monitor_period_ns=1500,
    )
    config.validate()
    policy = FifoPolicy.SMART if spec.mode == MODE_SMART else FifoPolicy.SYNC_PER_ACCESS
    platform = SocPlatform(sim, policy=policy, config=config)
    return BuiltScenario(
        scenario=platform,
        verify=platform.verify,
        extras=lambda: {
            "consumer_finish_ns": {
                name: _ns(date)
                for name, date in sorted(platform.consumer_finish_times().items())
            },
            "noc_packets": platform.mesh.total_packets_routed,
            "fifo_blocking_waits": platform.fifo_blocking_waits(),
        },
    )


def build_scenario(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    """Validate ``spec`` (including its params keys) and build it in ``sim``."""
    spec.validate()
    entry = workload_entry(spec.workload)
    unknown = sorted(set(spec.params) - set(entry.param_keys))
    if unknown:
        raise ValueError(
            f"spec {spec.name}: unknown param(s) {', '.join(unknown)} for "
            f"workload {spec.workload!r}; accepted: "
            f"{', '.join(entry.param_keys) or '(none)'}"
        )
    return entry.builder(sim, spec)


# ---------------------------------------------------------------------------
# The default campaign
# ---------------------------------------------------------------------------
def default_campaign(burst: bool = True) -> List[ScenarioSpec]:
    """The stock sweep: every registered workload, several depths/seeds.

    ``burst=True`` (the default since every workload honours the span
    helpers) runs the specs with burst FIFO transfers — bit-exact with the
    word-by-word schedule, so fingerprints are unchanged; pass
    ``burst=False`` (CLI: ``--no-burst``) for the historical word loops.

    19 specs; the 15 pairable ones double as the Section IV-A equivalence
    battery (reference vs Smart trace diff) — including the NoC router
    stress, the packet-granularity FIFO stream and the mixed smart/regular
    topology, which cover the case-study half of the paper.  The four
    non-pairable ones carry their own oracles: the contention specs are
    checked by the arbiter invariants, the quantum spec by its completion
    bookkeeping, and the SoC spec by ``SocPlatform.verify`` (its
    cross-policy timing equivalence is asserted by the integration suite
    and the case-study benchmark, which compare finish dates rather than
    traces).
    """
    specs = [
        ScenarioSpec("writer_reader_d1", "writer_reader", depth=1),
        ScenarioSpec("writer_reader_d4", "writer_reader", depth=4,
                     params={"values": 6}),
        ScenarioSpec("streaming_d2", "streaming", depth=2,
                     params={"n_blocks": 6, "words_per_block": 25}),
        ScenarioSpec("streaming_d8", "streaming", depth=8,
                     params={"n_blocks": 6, "words_per_block": 25}),
        ScenarioSpec("streaming_quantum_d8", "streaming", depth=8,
                     timing="quantum", quantum_ns=1000,
                     params={"n_blocks": 6, "words_per_block": 25}),
        ScenarioSpec("video_d2", "video", depth=2,
                     params={"n_frames": 2, "macroblocks_per_frame": 12}),
        ScenarioSpec("video_d8", "video", depth=8,
                     params={"n_frames": 3, "macroblocks_per_frame": 16}),
        ScenarioSpec("random_s7_d3", "random_traffic", depth=3, seed=7),
        ScenarioSpec("random_s11_d1", "random_traffic", depth=1, seed=11),
        ScenarioSpec("bursty_s3_d4", "bursty", depth=4, seed=3),
        ScenarioSpec("bursty_s5_d2", "bursty", depth=2, seed=5),
        ScenarioSpec("contention_3w3r", "contention", depth=8, seed=5),
        ScenarioSpec("contention_4w3r", "contention", depth=6, seed=9,
                     params={"n_writers": 4, "items_per_writer": 15}),
        ScenarioSpec("noc_stress_2x2", "noc_stress", depth=4, seed=5,
                     params={"packets_per_stream": 4}),
        ScenarioSpec("noc_stress_3x2", "noc_stress", depth=4, seed=11,
                     params={"mesh_width": 3, "packets_per_stream": 4}),
        ScenarioSpec("packet_stream_p2", "packet_stream", depth=4, seed=7),
        ScenarioSpec("packet_stream_p4", "packet_stream", depth=4, seed=13,
                     params={"packet_size": 4, "n_packets": 8}),
        ScenarioSpec("mixed_d3", "mixed", depth=3, seed=6,
                     params={"item_count": 24}),
        ScenarioSpec("soc_2x64", "soc", depth=8,
                     params={"n_chains": 2, "items_per_chain": 64}),
    ]
    if burst:
        specs = [
            replace(spec, burst=True, params=dict(spec.params))
            for spec in specs
        ]
    return specs
