"""Parallel experiment-campaign engine.

The paper validates the Smart FIFO by running every scenario in two modes
(regular FIFO without temporal decoupling, Smart FIFO with temporal
decoupling) and diffing the locally-timestamped traces (Section IV-A).
This package turns that one-simulation-at-a-time methodology into a
campaign-scale engine:

* :mod:`repro.campaign.spec` — declarative :class:`ScenarioSpec`
  descriptions (workload kind, FIFO policy/mode, depth, quantum, seed,
  timing mode, workload params; the field reference lives in that module's
  docstring) and the workload registry;
* :mod:`repro.campaign.scenarios` — builders for every repository workload
  (writer/reader, streaming, video, random traffic, bursty, arbiter
  contention, SoC case study) plus :func:`default_campaign`;
* :mod:`repro.campaign.runner` — the :class:`CampaignRunner`, which shards
  specs across a :mod:`multiprocessing` pool (each worker owns a private
  :class:`~repro.kernel.simulator.Simulator`), and the paired
  reference/Smart equivalence campaign built on
  :mod:`repro.analysis.trace_diff`;
* :mod:`repro.campaign.orchestrator` — the distributed layer: the
  ``COSTS.json`` wall-time cost model, the cost-balanced
  ``--shard-by-cost`` partitioner, wall-clock run budgets with
  deterministic ``timeout`` rows, and the multi-host
  :class:`~repro.campaign.orchestrator.Orchestrator` driving local or
  ssh hosts through the same launch/poll/collect protocol.

The aggregated result is **byte-identical for any worker count** — the
deterministic rows carry simulated dates, kernel counters and trace digests
only — so ``CampaignResult.fingerprint()`` is a stable handle for
regression tracking.

Entry points: ``python -m repro.analysis.cli campaign --workers 4`` and the
``campaign.*`` metric of ``benchmarks/bench_harness.py``.
"""

from .evaluators import (
    Evaluator,
    ReplayEvaluator,
    ReplaySweepResult,
    SimulateEvaluator,
    ValidationRecord,
    compare_replay_to_spool,
    record_spool,
    replay_group_key,
    run_replay_sweep,
    sweep_point_specs,
)
from .orchestrator.budget import RunBudget, TimeoutRecord
from .orchestrator.costs import CostModel
from .runner import (
    DEFAULT_TRACE_SINK,
    CampaignResumeError,
    CampaignResult,
    CampaignRunner,
    JsonlSink,
    PairHalf,
    PairRecord,
    SpecRunRecord,
    combine_pair,
    diff_pair_streaming,
    execute_half,
    execute_pair,
    execute_paired_spec,
    execute_spec,
    load_resume_state,
    merge_jsonl,
    parse_jsonl_rows,
)
from .scenarios import build_scenario, default_campaign
from .spec import (
    MODE_REFERENCE,
    MODE_SMART,
    BuiltScenario,
    ScenarioSpec,
    WorkloadEntry,
    describe_specs,
    register_workload,
    registered_workloads,
    spec_is_pairable,
    workload_entry,
)

__all__ = [
    "BuiltScenario",
    "CampaignResumeError",
    "CampaignResult",
    "CampaignRunner",
    "CostModel",
    "Evaluator",
    "JsonlSink",
    "ReplayEvaluator",
    "ReplaySweepResult",
    "SimulateEvaluator",
    "ValidationRecord",
    "compare_replay_to_spool",
    "record_spool",
    "replay_group_key",
    "run_replay_sweep",
    "sweep_point_specs",
    "RunBudget",
    "TimeoutRecord",
    "MODE_REFERENCE",
    "MODE_SMART",
    "PairHalf",
    "PairRecord",
    "ScenarioSpec",
    "SpecRunRecord",
    "WorkloadEntry",
    "build_scenario",
    "DEFAULT_TRACE_SINK",
    "combine_pair",
    "default_campaign",
    "describe_specs",
    "diff_pair_streaming",
    "execute_half",
    "load_resume_state",
    "execute_pair",
    "execute_paired_spec",
    "execute_spec",
    "merge_jsonl",
    "parse_jsonl_rows",
    "register_workload",
    "registered_workloads",
    "spec_is_pairable",
    "workload_entry",
]
