"""The parallel campaign engine.

A campaign is a list of :class:`~repro.campaign.spec.ScenarioSpec`; the
:class:`CampaignRunner` shards it across a :mod:`multiprocessing` pool.
Each worker process builds its **own** :class:`~repro.kernel.simulator
.Simulator` from the spec — runs are fully isolated and deterministic per
seed — and sends back a small picklable record.  Three guarantees matter:

* **Worker-count transparency** — the aggregated result (every field of
  :meth:`CampaignResult.aggregate_rows` and therefore
  :meth:`CampaignResult.fingerprint`) is byte-identical for any
  ``workers`` value, because the deterministic rows carry only simulated
  dates, counters and trace digests, never wall-clock values or PIDs, and
  are sorted by spec name.
* **Paired validation** — the Section IV-A methodology is a first-class
  campaign mode: every pairable spec is re-run in ``reference`` and
  ``smart`` modes and the locally-timestamped traces are diffed with
  :mod:`repro.analysis.trace_diff`; an empty diff means the Smart FIFO
  changed neither the behaviour nor the timing of that spec.  The two
  halves of a pair are **independent jobs**: each worker ships back its
  reordered trace lines (:class:`PairHalf`) and the diff happens at
  aggregation, so a mostly-pairable campaign keeps every worker busy
  instead of serializing both runs inside one job.
* **Shard transparency** — :meth:`CampaignRunner.shard_specs` partitions a
  campaign deterministically into ``N`` shards; running each shard on its
  own machine (``--shard i/N``), streaming the rows to JSONL and merging
  the files with :func:`merge_jsonl` reproduces the unsharded
  ``fingerprint()`` byte for byte.

JSONL persistence (``--jsonl out.jsonl``) streams one row per *completed*
run/pair, so a long campaign can be tailed while running and merged across
machines afterwards; ``resume=True`` re-reads a partially written file,
skips the specs whose rows are already present and appends only the
missing ones (rejecting a file whose campaign header does not match).  The
schema (one JSON object per line)::

    {"type": "campaign", "schema": 1, "specs": [...], "workers": N,
     "paired": true, "shard": "0/2" | null,
     "shard_by": "index" | "cost" | null}            # header, first line
    {"type": "run", ...SpecRunRecord.deterministic_row()}
    {"type": "pair", ...PairRecord.deterministic_row()}
    {"type": "timeout", ...TimeoutRecord.deterministic_row()}

Rows carry deterministic fields only (never wall clock or PIDs), so the
merge of shard files is byte-identical to the unsharded aggregate.  A
``timeout`` row is the outcome of a job killed by a
:class:`~repro.campaign.orchestrator.budget.RunBudget`; it stands in for
the spec's run/pair rows at merge time and is dropped (the spec re-runs)
on resume.

Trace memory model
------------------

Since the streaming-trace refactor the campaign never materializes trace
record lists: every worker runs its simulation on a
:class:`~repro.kernel.tracing.DigestSink`, which streams the reordered
trace into the ``trace_digest``/``trace_lines`` row fields with bounded
memory, and a pair is equivalent iff the two digests (and deterministic
extras) match — digest equality is exactly reordered-trace equality
because record formatting is injective.  Only when a pair *mismatches* is
it re-run on :class:`~repro.kernel.tracing.SpoolSink` spools, which
:func:`repro.analysis.trace_diff.compare_spools` merge-diffs into the full
line-level report without an in-memory sort.  ``trace_sink`` can override
the worker sink kind (``"list"`` restores the historical collector,
``"null"`` disables tracing — and with it trace validation — entirely).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.reporting import dict_rows_table
from ..analysis.trace_diff import compare_spools
from ..kernel.simulator import Simulator
from ..kernel.tracing import SINK_KINDS, make_sink
from ..telemetry import (
    NULL_TELEMETRY,
    ProgressTicker,
    Telemetry,
    merge_telemetry_files,
)
from .orchestrator.budget import (
    SCOPE_CAMPAIGN,
    RunBudget,
    TimeoutRecord,
    run_with_budget,
)
from .orchestrator.costs import CostModel
from .orchestrator.partition import cost_shards
from .scenarios import build_scenario
from .spec import MODE_REFERENCE, MODE_SMART, ScenarioSpec, spec_is_pairable

#: Sink kind run by campaign workers unless overridden: digests stream out
#: of the simulation without the trace ever being materialized.
DEFAULT_TRACE_SINK = "digest"

#: File name of the merged telemetry sideband inside ``--telemetry DIR``.
MERGED_TELEMETRY = "telemetry.jsonl"

#: Per-process cache of worker telemetry handles, keyed by
#: ``(telemetry_dir, pid)``.  A pool worker reuses one appending
#: ``worker-<pid>.jsonl`` sideband for all its jobs; keying by pid keeps a
#: forked child from writing through an entry inherited from its parent.
_WORKER_TELEMETRY: Dict[Tuple[str, int], Telemetry] = {}


def _worker_telemetry(telemetry_dir: str) -> Telemetry:
    key = (telemetry_dir, os.getpid())
    telemetry = _WORKER_TELEMETRY.get(key)
    if telemetry is None:
        path = os.path.join(telemetry_dir, f"worker-{os.getpid()}.jsonl")
        telemetry = Telemetry("campaign-worker", path=path)
        _WORKER_TELEMETRY[key] = telemetry
    return telemetry


def _collect_fifo_counters(sim: Simulator, telemetry: Telemetry) -> None:
    """Fold the per-FIFO burst routing counts of a finished run into
    telemetry counters.

    Duck-typed on the Smart FIFO counter attributes, so reference FIFOs
    (which have no span path) contribute nothing.  The span-vs-word split
    is the hit rate of the batch-quantum fast path; ``span_words`` over
    ``cell_mutations`` is how many words each ring mutation moved.
    """
    span_writes = word_writes = span_reads = word_reads = 0
    span_words = mutations = 0
    for module in sim.walk_modules():
        if not hasattr(module, "burst_span_writes"):
            continue
        span_writes += module.burst_span_writes
        word_writes += module.burst_word_writes
        span_reads += module.burst_span_reads
        word_reads += module.burst_word_reads
        cells = getattr(module, "_cells", None)
        if cells is not None:
            span_words += cells.span_words
            mutations += cells.mutations
    if span_writes or word_writes:
        telemetry.counter("fifo.burst_span_writes", span_writes)
        telemetry.counter("fifo.burst_word_writes", word_writes)
    if span_reads or word_reads:
        telemetry.counter("fifo.burst_span_reads", span_reads)
        telemetry.counter("fifo.burst_word_reads", word_reads)
    if span_words or mutations:
        telemetry.counter("fifo.span_words", span_words)
        telemetry.counter("fifo.cell_mutations", mutations)


@dataclass
class SpecRunRecord:
    """Outcome of one spec executed in one mode."""

    name: str
    workload: str
    mode: str
    depth: int
    quantum_ns: Optional[int]
    seed: int
    timing: Optional[str]
    sim_end_fs: int
    context_switches: int
    method_invocations: int
    delta_cycles: int
    trace_lines: int
    trace_digest: str
    extra: Dict[str, object] = field(default_factory=dict)
    #: How the numbers were obtained: ``"simulate"`` (a full scheduler run)
    #: or ``"replay"`` (recomputed from a recorded dependency spool by
    #: :class:`repro.replay.ReplayEngine`).  Excluded from the row when it
    #: is the default so pre-replay JSONL files stay byte-identical.
    evaluator: str = "simulate"
    #: Wall-clock and process provenance: informative only, excluded from
    #: the deterministic aggregation.
    wall_seconds: float = 0.0
    worker_pid: int = 0

    def deterministic_row(self) -> Dict[str, object]:
        row = {
            "name": self.name,
            "workload": self.workload,
            "mode": self.mode,
            "depth": self.depth,
            "quantum_ns": self.quantum_ns,
            "seed": self.seed,
            "timing": self.timing,
            "sim_end_fs": self.sim_end_fs,
            "context_switches": self.context_switches,
            "method_invocations": self.method_invocations,
            "delta_cycles": self.delta_cycles,
            "trace_lines": self.trace_lines,
            "trace_digest": self.trace_digest,
            "extra": self.extra,
        }
        if self.evaluator != "simulate":
            row["evaluator"] = self.evaluator
        return row

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "SpecRunRecord":
        """Rebuild a record from a persisted deterministic row."""
        record = cls(**{key: row[key] for key in (
            "name", "workload", "mode", "depth", "quantum_ns", "seed",
            "timing", "sim_end_fs", "context_switches", "method_invocations",
            "delta_cycles", "trace_lines", "trace_digest", "extra",
        )})
        record.evaluator = str(row.get("evaluator", "simulate"))
        return record


@dataclass
class PairRecord:
    """Outcome of one paired reference/Smart equivalence run."""

    name: str
    equivalent: bool
    reference_digest: str
    smart_digest: str
    reference_lines: int
    candidate_lines: int
    #: Whether the deterministic extras (completion dates, checksums...)
    #: also matched — the observable the paper compares for workloads that
    #: do not emit trace lines.
    extras_match: bool = True
    #: Human-readable mismatch summary; empty when the diff is empty.
    report: str = ""
    wall_seconds: float = 0.0
    #: PIDs of the workers that ran the (reference, smart) halves —
    #: provenance only, like ``SpecRunRecord.worker_pid``.
    worker_pids: Tuple[int, int] = (0, 0)

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "equivalent": self.equivalent,
            "reference_digest": self.reference_digest,
            "smart_digest": self.smart_digest,
            "reference_lines": self.reference_lines,
            "candidate_lines": self.candidate_lines,
            "extras_match": self.extras_match,
            "report": self.report,
        }

    @classmethod
    def from_row(cls, row: Dict[str, object]) -> "PairRecord":
        """Rebuild a record from a persisted deterministic row."""
        return cls(**{key: row[key] for key in (
            "name", "equivalent", "reference_digest", "smart_digest",
            "reference_lines", "candidate_lines", "extras_match", "report",
        )})


@dataclass
class PairHalf:
    """One half of a split paired run, shipped back by its worker.

    Carries everything the parent needs to recombine the pair without
    re-simulating: the run record of this mode (whose ``trace_digest`` is
    the SHA-256 of the *reordered* trace — the Section IV-A comparison
    key) and the deterministic extras.  The trace itself never crosses the
    process boundary: because
    :meth:`~repro.kernel.tracing.TraceRecord.sort_key` and ``format`` are
    both injective on (local date, process, message), digest equality is
    exactly reordered-trace equality, and a mismatching pair is upgraded
    to the full line-level report by :func:`diff_pair_streaming`.
    """

    name: str
    mode: str
    record: SpecRunRecord
    extras: Dict[str, object]
    wall_seconds: float = 0.0
    worker_pid: int = 0


def _append_extras_report(report: str, extras_match: bool, ref_extras, smart_extras) -> str:
    if extras_match:
        return report
    return (report + "\n" if report else "") + (
        f"extras differ: reference={ref_extras!r} smart={smart_extras!r}"
    )


def combine_pair(ref: PairHalf, smart: PairHalf) -> PairRecord:
    """Recombine the two halves of a split pair: digest diff + extras check.

    The digests decide trace equivalence — an equivalent outcome is
    bit-identical to the historical line-level diff; a mismatching one
    carries a digest-level report, which the campaign runner upgrades to
    the full line diff by re-running the pair on trace spools (see
    :func:`diff_pair_streaming`).
    """
    extras_match = ref.extras == smart.extras
    traces_equal = ref.record.trace_digest == smart.record.trace_digest
    reference_lines = ref.record.trace_lines
    candidate_lines = smart.record.trace_lines
    report = "" if traces_equal else (
        f"traces differ: {reference_lines} reference lines, "
        f"{candidate_lines} candidate lines (sorted-trace digests "
        f"{ref.record.trace_digest[:12]} != "
        f"{smart.record.trace_digest[:12]})"
    )
    report = _append_extras_report(report, extras_match, ref.extras, smart.extras)
    return PairRecord(
        name=ref.name,
        equivalent=traces_equal and extras_match,
        reference_digest=ref.record.trace_digest,
        smart_digest=smart.record.trace_digest,
        reference_lines=reference_lines,
        candidate_lines=candidate_lines,
        extras_match=extras_match,
        report=report,
        wall_seconds=ref.wall_seconds + smart.wall_seconds,
        worker_pids=(ref.worker_pid, smart.worker_pid),
    )


# ---------------------------------------------------------------------------
# Worker entry points (top-level functions: they must be picklable)
# ---------------------------------------------------------------------------
def _run_one(
    spec: ScenarioSpec,
    trace_sink: str = DEFAULT_TRACE_SINK,
    telemetry: Telemetry = NULL_TELEMETRY,
):
    """Build and run ``spec`` in a fresh simulator; return (sim, built, wall).

    ``trace_sink`` names the :mod:`repro.kernel.tracing` sink kind the
    simulation emits into (``"digest"`` on the campaign happy path, so no
    trace record list ever exists).  ``telemetry`` is handed to the
    simulator, so an enabled sideband gets the kernel phase spans and —
    after the run — the per-FIFO burst routing counters; the default
    ``NULL_TELEMETRY`` keeps the hot path at one attribute check.
    """
    sim = Simulator(f"campaign_{spec.label}", trace_sink=make_sink(trace_sink))
    sim.telemetry = telemetry
    built = build_scenario(sim, spec)
    start = time.perf_counter()
    built.scenario.run()
    wall = time.perf_counter() - start
    if built.verify is not None:
        built.verify()
    if telemetry.enabled:
        _collect_fifo_counters(sim, telemetry)
    return sim, built, wall


def _export_trace(sim: Simulator, spec: ScenarioSpec, trace_out: Optional[str]) -> None:
    """Write the reordered spool of a finished run to ``trace_out``."""
    if trace_out is None:
        return
    writer = getattr(sim.trace, "write_sorted", None)
    if writer is None:
        raise ValueError(
            f"--trace-out needs a spool-backed sink, got {sim.trace.kind!r}"
        )
    os.makedirs(trace_out, exist_ok=True)
    path = os.path.join(trace_out, f"{spec.name}.{spec.mode}.trace")
    with open(path, "w") as stream:
        writer(stream)


def _record_from(spec: ScenarioSpec, sim: Simulator, built, wall: float) -> SpecRunRecord:
    return SpecRunRecord(
        name=spec.name,
        workload=spec.workload,
        mode=spec.mode,
        depth=spec.depth,
        quantum_ns=spec.quantum_ns,
        seed=spec.seed,
        timing=spec.timing,
        sim_end_fs=sim.now_fs,
        context_switches=sim.stats.context_switches,
        method_invocations=sim.stats.method_invocations,
        delta_cycles=sim.stats.delta_cycles,
        trace_lines=len(sim.trace),
        trace_digest=sim.trace.digest(),
        extra=built.extras() if built.extras is not None else {},
        wall_seconds=wall,
        worker_pid=os.getpid(),
    )


def execute_spec(
    spec: ScenarioSpec,
    trace_sink: str = DEFAULT_TRACE_SINK,
    trace_out: Optional[str] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> SpecRunRecord:
    """Worker body of the single-mode campaign."""
    sim, built, wall = _run_one(spec, trace_sink, telemetry)
    record = _record_from(spec, sim, built, wall)
    _export_trace(sim, spec, trace_out)
    sim.trace.close()
    return record


def execute_half(
    spec: ScenarioSpec,
    mode: str,
    trace_sink: str = DEFAULT_TRACE_SINK,
    trace_out: Optional[str] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> PairHalf:
    """Worker body of one half of a split pair: run ``spec`` in ``mode``.

    Runs are deterministic per seed, so the embedded record is bit-identical
    to what :func:`execute_spec` would produce for ``spec.with_mode(mode)``.
    Only the digest travels back to the parent — the streamed
    ``trace_digest`` is a faithful stand-in for the reordered trace, and
    the lines would dominate the IPC payload.
    """
    mode_spec = spec.with_mode(mode)
    sim, built, wall = _run_one(mode_spec, trace_sink, telemetry)
    record = _record_from(mode_spec, sim, built, wall)
    _export_trace(sim, mode_spec, trace_out)
    sim.trace.close()
    return PairHalf(
        name=spec.name,
        mode=mode,
        record=record,
        extras=built.extras() if built.extras is not None else {},
        wall_seconds=wall,
        worker_pid=os.getpid(),
    )


def diff_pair_streaming(spec: ScenarioSpec) -> PairRecord:
    """Full line-level diff of a pair over two bounded-memory trace spools.

    The mismatch path of the paired campaign: both modes re-run with a
    :class:`~repro.kernel.tracing.SpoolSink` and the two spools are
    merge-diffed in sorted order (:func:`compare_spools`), producing the
    same report the historical in-memory reorder-and-compare produced —
    without ever materializing either trace.  Deterministic, hence
    identical for any worker count.
    """
    ref_spec = spec.with_mode(MODE_REFERENCE)
    smart_spec = spec.with_mode(MODE_SMART)
    ref_sim, ref_built, ref_wall = _run_one(ref_spec, "spool")
    smart_sim, smart_built, smart_wall = _run_one(smart_spec, "spool")
    comparison = compare_spools(ref_sim.trace, smart_sim.trace)
    ref_extras = ref_built.extras() if ref_built.extras is not None else {}
    smart_extras = smart_built.extras() if smart_built.extras is not None else {}
    extras_match = ref_extras == smart_extras
    report = "" if comparison.equivalent else comparison.report()
    report = _append_extras_report(report, extras_match, ref_extras, smart_extras)
    pair = PairRecord(
        name=spec.name,
        equivalent=comparison.equivalent and extras_match,
        reference_digest=ref_sim.trace.digest(),
        smart_digest=smart_sim.trace.digest(),
        reference_lines=comparison.reference_count,
        candidate_lines=comparison.candidate_count,
        extras_match=extras_match,
        report=report,
        wall_seconds=ref_wall + smart_wall,
        worker_pids=(os.getpid(), os.getpid()),
    )
    ref_sim.trace.close()
    smart_sim.trace.close()
    return pair


def execute_paired_spec(spec: ScenarioSpec, trace_sink: str = DEFAULT_TRACE_SINK):
    """Run both halves of a pair inline and recombine them.

    Kept as the one-process entry point (and for API compatibility): the
    campaign itself schedules the two halves as independent jobs — see
    :meth:`CampaignRunner._execute` — and recombines with
    :func:`combine_pair`, which this function reuses, so the records are
    bit-identical either way.  A digest mismatch is upgraded to the full
    line-level report by re-running the pair on trace spools.

    Returns ``(SpecRunRecord, PairRecord)``: the run record is taken from
    the half matching ``spec.mode``, so a paired campaign never simulates
    the same (spec, mode) twice — both halves double as single-mode results.
    """
    ref_half = execute_half(spec, MODE_REFERENCE, trace_sink)
    smart_half = execute_half(spec, MODE_SMART, trace_sink)
    pair = combine_pair(ref_half, smart_half)
    if not pair.equivalent and trace_sink != "null":
        # With tracing off there is no trace to diff (the mismatch can only
        # come from the extras), so the spool upgrade would reintroduce the
        # trace validation the caller disabled.
        pair = diff_pair_streaming(spec)
    record = ref_half.record if spec.mode == MODE_REFERENCE else smart_half.record
    return record, pair


def execute_pair(spec: ScenarioSpec) -> PairRecord:
    """Just the :class:`PairRecord` of :func:`execute_paired_spec`."""
    return execute_paired_spec(spec)[1]


#: Job kinds (second element of a job tuple).  ``None`` marks a single-mode
#: job; a mode string marks one half of a split pair.
_JOB_SINGLE = None


def _execute_job(job):
    """Dispatch one tagged campaign job (see ``CampaignRunner._execute``).

    ``job`` is ``(spec_index, half_mode, spec, trace_sink, trace_out)``,
    optionally extended with ``(telemetry_dir, enqueued_monotonic)``; the
    index rides along so completion-order mappers (``imap_unordered``)
    can be matched back to their spec without relying on submission order.

    With a telemetry directory the worker opens (once per process) an
    appending ``worker-<pid>.jsonl`` sideband and wraps the job in
    queue-wait / execute / serialize spans, flushing after every job so a
    killed worker loses at most the in-flight one.  The queue-wait span is
    cross-process span math: ``time.monotonic`` is system-wide on Linux,
    so the parent's enqueue stamp and this dequeue stamp share a clock.
    """
    index, half_mode, spec, trace_sink, trace_out = job[:5]
    telemetry_dir = job[5] if len(job) > 5 else None
    if telemetry_dir is None:
        if half_mode is _JOB_SINGLE:
            return index, half_mode, execute_spec(spec, trace_sink, trace_out)
        return index, half_mode, execute_half(spec, half_mode, trace_sink, trace_out)
    enqueued = job[6]
    telemetry = _worker_telemetry(telemetry_dir)
    mode = spec.mode if half_mode is _JOB_SINGLE else half_mode
    now = time.monotonic()
    if now > enqueued:
        telemetry.span_at(
            "campaign.queue_wait", enqueued, now - enqueued,
            spec=spec.name, mode=mode,
        )
    with telemetry.span("campaign.execute", spec=spec.name, mode=mode):
        if half_mode is _JOB_SINGLE:
            outcome = execute_spec(
                spec, trace_sink, trace_out, telemetry=telemetry
            )
        else:
            outcome = execute_half(
                spec, half_mode, trace_sink, trace_out, telemetry=telemetry
            )
    record = outcome if half_mode is _JOB_SINGLE else outcome.record
    with telemetry.span("campaign.serialize", spec=spec.name, mode=mode):
        # The canonical-row encode is the worker's share of getting the
        # result onto the wire; the pool's own pickling cannot be timed
        # from inside the job.
        json.dumps(record.deterministic_row(), sort_keys=True)
    telemetry.counter("campaign.jobs_done")
    telemetry.flush()
    return index, half_mode, outcome


# ---------------------------------------------------------------------------
# JSONL persistence
# ---------------------------------------------------------------------------
JSONL_SCHEMA = 1


def campaign_header_row(
    campaign_specs: Sequence[ScenarioSpec],
    workers: int,
    paired: bool,
    shard: Optional[Tuple[int, int]] = None,
    shard_by_cost: bool = False,
) -> Dict[str, object]:
    """The campaign header row of a JSONL file (first line).

    ``shard_by`` records *how* a sharded campaign was partitioned
    (``"index"`` = round-robin, ``"cost"`` = the cost-balanced LPT
    partitioner): a resume must re-derive the identical shard membership,
    so mixing partitioners on one file is rejected.  The key only exists
    on sharded headers — unsharded files stay byte-identical to the
    pre-orchestrator format — and sharded files written before the field
    existed carry no key and are read as ``"index"``.
    """
    row = {
        "type": "campaign",
        "schema": JSONL_SCHEMA,
        "specs": [spec.name for spec in campaign_specs],
        "workers": workers,
        "paired": paired,
        "shard": f"{shard[0]}/{shard[1]}" if shard else None,
    }
    if shard:
        row["shard_by"] = "cost" if shard_by_cost else "index"
    return row


class JsonlSink:
    """Streams one deterministic JSONL row per completed run/pair.

    The first line is a campaign header row; each subsequent line is a
    ``run`` or ``pair`` row.  Rows are flushed as they complete so a
    multi-machine campaign can be tailed and partially merged while still
    running.  The header records the *whole* campaign's spec names (before
    shard partitioning), so :func:`merge_jsonl` can tell shards of the same
    campaign from shards of different ones.

    The resume path :meth:`replay`\\ s the rows recovered from a partially
    written file and marks them seen, so a re-executed spec whose run row
    survived a previous invocation does not produce a duplicate (which
    :func:`merge_jsonl` would rightly reject).
    """

    def __init__(
        self,
        stream: IO[str],
        campaign_specs: Sequence[ScenarioSpec],
        workers: int,
        paired: bool,
        shard: Optional[Tuple[int, int]] = None,
        header_row: Optional[Dict[str, object]] = None,
        shard_by_cost: bool = False,
    ):
        self._stream = stream
        self._skip_runs: Set[Tuple[str, str]] = set()
        self._skip_pairs: Set[str] = set()
        self._write(
            header_row
            if header_row is not None
            else campaign_header_row(
                campaign_specs, workers, paired, shard, shard_by_cost
            )
        )

    def _write(self, row: Dict[str, object]) -> None:
        self._stream.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
        self._stream.write("\n")
        self._stream.flush()

    def reattach(self, stream: IO[str]) -> None:
        """Continue writing rows to another stream.

        Used by the resume path: the recovered prefix is written to a
        temporary file that atomically replaces the original, then the
        sink reattaches to the real file opened in append mode — so there
        is never a moment where the only copy of the campaign is
        truncated.
        """
        self._stream = stream

    def replay(self, runs: Sequence[SpecRunRecord], pairs: Sequence[PairRecord]) -> None:
        """Persist rows recovered from a resumed file and mark them seen."""
        for record in runs:
            self.run_completed(record)
            self._skip_runs.add((record.name, record.mode))
        for pair in pairs:
            self.pair_completed(pair)
            self._skip_pairs.add(pair.name)

    def run_completed(self, record: SpecRunRecord) -> None:
        if (record.name, record.mode) in self._skip_runs:
            return
        self._write({"type": "run", **record.deterministic_row()})

    def pair_completed(self, pair: PairRecord) -> None:
        if pair.name in self._skip_pairs:
            return
        self._write({"type": "pair", **pair.deterministic_row()})

    def timeout_completed(self, record: TimeoutRecord) -> None:
        """Persist the deterministic row of a budget-killed job.

        Never part of the resume skip sets: a resume drops timeout rows
        and re-executes the spec, so a fresh row (or the healed run/pair
        rows) replaces the old one."""
        self._write({"type": "timeout", **record.deterministic_row()})


class _TimedSink:
    """Times every JSONL sink write into the parent telemetry.

    Wraps the sink only *after* any resume replay has run, so recovered
    rows are not counted as fresh writes; the counters answer "how much
    parent time goes into persisting rows" without touching the rows."""

    def __init__(self, sink: JsonlSink, telemetry: Telemetry):
        self._sink = sink
        self._telemetry = telemetry

    def _timed(self, method, record) -> None:
        start = time.perf_counter()
        method(record)
        self._telemetry.counter(
            "campaign.sink_write_s", time.perf_counter() - start
        )
        self._telemetry.counter("campaign.sink_writes")

    def run_completed(self, record: SpecRunRecord) -> None:
        self._timed(self._sink.run_completed, record)

    def pair_completed(self, pair: PairRecord) -> None:
        self._timed(self._sink.pair_completed, pair)

    def timeout_completed(self, record: TimeoutRecord) -> None:
        self._timed(self._sink.timeout_completed, record)


def parse_jsonl_rows(lines: Iterable[str]):
    """Yield ``(type, row)`` for every non-empty line of a campaign JSONL."""
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"JSONL line {number} is not valid JSON: {exc}") from None
        kind = row.get("type")
        if kind not in ("campaign", "run", "pair", "timeout"):
            raise ValueError(f"JSONL line {number} has unknown type {kind!r}")
        yield kind, row


class CampaignResumeError(ValueError):
    """A ``resume=True`` request that cannot be honoured (wrong header,
    corrupt file, missing path).  Distinct from the :class:`ValueError`\\ s
    a broken simulation may raise, so CLIs can report resume problems
    without swallowing genuine model bugs."""


def load_resume_state(
    path: str,
    campaign_specs: Sequence[ScenarioSpec],
    paired: bool,
    shard: Optional[Tuple[int, int]],
    shard_specs: Optional[Sequence[ScenarioSpec]] = None,
    shard_by_cost: bool = False,
):
    """Parse a partially written campaign JSONL for ``resume=True``.

    Returns ``(header_row, runs, pairs)``.  The header must describe the
    *same* campaign as the one being resumed — identical spec list, paired
    flag, shard (including the partitioner: a round-robin shard file
    cannot be resumed as a cost shard or vice versa) and schema —
    otherwise the resume is rejected: silently appending rows of one
    campaign to the file of another would merge into a plausible-looking
    fingerprint that corresponds to no real run.  (A differing ``workers``
    value is fine: worker count never affects the rows.)  Every recovered
    row must belong to a known spec, and run rows must match the spec's
    identity columns (workload, mode, depth, quantum_ns, seed, timing).
    When resuming one shard of a campaign, ``shard_specs`` names the specs
    of *this* shard: only their rows may appear in the file — a row from
    another shard (the signature of a re-partitioned cost shard, e.g.
    after ``COSTS.json`` changed) is rejected, because replaying it would
    produce a shard file the merge rightly refuses.  Rows do **not**
    record ``params`` or the trace-sink kind, so a resume cannot detect
    those changing between invocations — resuming assumes both are
    unchanged, like sharding does.  ``timeout`` rows are validated like
    run rows but *not* returned: the timed-out spec is re-executed and the
    healed file reproduces the uninterrupted fingerprint.  A truncated
    *final* line — the signature of a run that died mid-write — is
    dropped; corruption anywhere else still raises.
    """
    header: Optional[Dict[str, object]] = None
    runs: List[SpecRunRecord] = []
    pairs: List[PairRecord] = []
    timeouts: List[TimeoutRecord] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
            kind = row.get("type")
            if kind == "run":
                parsed = SpecRunRecord.from_row(row)
            elif kind == "pair":
                parsed = PairRecord.from_row(row)
            elif kind == "timeout":
                parsed = TimeoutRecord.from_row(row)
            elif kind == "campaign":
                parsed = row
                if header is not None:
                    raise CampaignResumeError(
                        f"{path} contains more than one campaign header row"
                    )
            else:
                raise ValueError(f"unknown row type {kind!r}")
        except CampaignResumeError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            if number == len(lines):
                break  # torn final line: the interrupted write, drop it
            raise CampaignResumeError(
                f"{path} line {number} is not a valid campaign row ({exc}); "
                f"cannot resume from a corrupt file"
            ) from None
        if kind == "campaign":
            if runs or pairs or timeouts:
                raise CampaignResumeError(
                    f"{path} does not start with a campaign header row"
                )
            header = parsed
        elif kind == "run":
            runs.append(parsed)
        elif kind == "timeout":
            timeouts.append(parsed)
        else:
            pairs.append(parsed)
    if header is None:
        raise CampaignResumeError(
            f"{path} does not start with a campaign header row"
        )
    expected = campaign_header_row(campaign_specs, 0, paired, shard, shard_by_cost)
    for key in ("schema", "specs", "paired", "shard"):
        if header.get(key) != expected[key]:
            raise CampaignResumeError(
                f"cannot resume {path}: its campaign header differs on "
                f"{key!r} ({header.get(key)!r} != {expected[key]!r}) — the "
                f"file belongs to a different campaign"
            )
    if shard is not None:
        # Pre-PR 5 files carry no shard_by key; they were always
        # round-robin ("index") partitioned.
        recorded_by = header.get("shard_by") or "index"
        if recorded_by != expected["shard_by"]:
            raise CampaignResumeError(
                f"cannot resume {path}: the file's shard was partitioned by "
                f"{recorded_by!r} but this campaign shards by "
                f"{expected['shard_by']!r} — shard membership would not match"
            )
    by_name = {spec.name: spec for spec in campaign_specs}
    in_shard = (
        {spec.name for spec in shard_specs} if shard_specs is not None else None
    )

    def check_shard_membership(kind: str, name: str) -> None:
        if in_shard is not None and name not in in_shard:
            raise CampaignResumeError(
                f"cannot resume {path}: {kind} row for spec {name!r} does "
                f"not belong to shard {expected['shard']} (the file mixes "
                f"rows of another shard — was the campaign re-partitioned, "
                f"e.g. by a changed COSTS.json?)"
            )

    seen_runs: Set[Tuple[str, str]] = set()
    for record in runs:
        spec = by_name.get(record.name)
        if spec is None:
            raise CampaignResumeError(
                f"cannot resume {path}: run row for unknown spec {record.name!r}"
            )
        check_shard_membership("run", record.name)
        expected_identity = spec.with_mode(record.mode).identity_row()
        row_identity = {
            key: getattr(record, key) for key in expected_identity
        }
        if row_identity != expected_identity:
            raise CampaignResumeError(
                f"cannot resume {path}: run row for spec {record.name!r} was "
                f"written by a different spec definition "
                f"({row_identity} != {expected_identity})"
            )
        key = (record.name, record.mode)
        if key in seen_runs:
            raise CampaignResumeError(
                f"cannot resume {path}: duplicate run row for spec "
                f"{record.name!r} mode {record.mode!r}"
            )
        seen_runs.add(key)
    seen_pairs: Set[str] = set()
    for pair in pairs:
        spec = by_name.get(pair.name)
        if spec is None:
            raise CampaignResumeError(
                f"cannot resume {path}: pair row for unknown spec {pair.name!r}"
            )
        check_shard_membership("pair", pair.name)
        if not spec_is_pairable(spec):
            raise CampaignResumeError(
                f"cannot resume {path}: pair row for non-pairable spec "
                f"{pair.name!r}"
            )
        if pair.name in seen_pairs:
            raise CampaignResumeError(
                f"cannot resume {path}: duplicate pair row for spec {pair.name!r}"
            )
        seen_pairs.add(pair.name)
    for timeout in timeouts:
        spec = by_name.get(timeout.name)
        if spec is None:
            raise CampaignResumeError(
                f"cannot resume {path}: timeout row for unknown spec "
                f"{timeout.name!r}"
            )
        check_shard_membership("timeout", timeout.name)
        expected_identity = spec.with_mode(timeout.mode).identity_row()
        row_identity = {
            key: getattr(timeout, key) for key in expected_identity
        }
        if row_identity != expected_identity:
            raise CampaignResumeError(
                f"cannot resume {path}: timeout row for spec "
                f"{timeout.name!r} was written by a different spec "
                f"definition ({row_identity} != {expected_identity})"
            )
    return header, runs, pairs


def _check_merge_completeness(
    headers: List[Dict[str, object]],
    runs: List[SpecRunRecord],
    pairs: List[PairRecord],
    timeouts: Sequence[TimeoutRecord] = (),
) -> None:
    """Reject incomplete merges: a missing shard, a truncated file or a
    dropped pair row must fail loudly instead of yielding a plausible
    partial fingerprint.  A spec with a ``timeout`` row is complete *as a
    timeout*: its run/pair rows are excused — the timeout row is its
    deterministic outcome until a resume re-runs it.  The excusal is by
    spec name, not (name, mode): when the half matching the spec's own
    mode is the one killed, the completed other half legitimately leaves
    no row at all (a half only writes a run row for the spec's own mode,
    and the pair never completes), and the merge cannot know the own mode
    from rows alone.  Contradictions it *can* see — a run row and a
    timeout row for the same (name, mode) — are rejected by the caller."""
    shards = [h.get("shard") for h in headers]
    if any(shards) and not all(shards):
        raise ValueError(
            "cannot mix sharded and unsharded campaign JSONL files in one merge"
        )
    if any(shards):
        # Shards are slices of ONE campaign: the headers record the whole
        # (pre-partitioning) spec list, which must be identical everywhere —
        # shards of different campaigns would otherwise merge into a
        # plausible fingerprint that corresponds to no real campaign.
        spec_lists = {tuple(h.get("specs", [])) for h in headers}
        if len(spec_lists) != 1:
            raise ValueError(
                "merged shard headers describe different campaigns "
                "(their spec lists differ)"
            )
        parsed = set()
        counts = set()
        for shard in shards:
            index_text, _, count_text = str(shard).partition("/")
            parsed.add(int(index_text))
            counts.add(int(count_text))
        if len(counts) != 1:
            raise ValueError(
                f"merged shard headers disagree on the shard count: {sorted(counts)}"
            )
        count = counts.pop()
        missing = sorted(set(range(count)) - parsed)
        if missing:
            raise ValueError(
                f"incomplete shard set: missing shard(s) "
                f"{', '.join(f'{m}/{count}' for m in missing)}"
            )
    timeout_names = {record.name for record in timeouts}
    run_names = {record.name for record in runs}
    expected = [str(name) for h in headers for name in h.get("specs", [])]
    missing_runs = sorted(set(expected) - run_names - timeout_names)
    if missing_runs:
        raise ValueError(
            f"no run row for spec(s) {', '.join(missing_runs)} — a shard "
            f"file is truncated or a campaign did not finish"
        )
    if headers and all(h.get("paired") for h in headers):
        pair_names = {pair.name for pair in pairs} | timeout_names
        missing_pairs = []
        for record in runs:
            spec = ScenarioSpec(
                name=record.name,
                workload=record.workload,
                mode=record.mode,
                depth=record.depth,
                quantum_ns=record.quantum_ns,
                seed=record.seed,
                timing=record.timing,
            )
            try:
                pairable = spec_is_pairable(spec)
            except KeyError:  # workload unknown to this checkout
                continue
            if pairable and record.name not in pair_names:
                missing_pairs.append(record.name)
        if missing_pairs:
            raise ValueError(
                f"no pair row for pairable spec(s) "
                f"{', '.join(sorted(missing_pairs))} — a shard file is "
                f"truncated or a campaign did not finish"
            )


def merge_jsonl(paths: Sequence[str]) -> "CampaignResult":
    """Merge campaign JSONL files (e.g. one per shard) into one result.

    The merged :meth:`CampaignResult.fingerprint` is byte-identical to what
    an unsharded run of the union of the shards would produce: the rows
    carry only deterministic fields and the aggregate sorts by spec name.
    Duplicate (name, mode) runs — the same spec in two shards — are
    rejected, as they would be in an unsharded campaign; so are incomplete
    merges (a missing shard of an ``i/N`` set, a header spec without its
    run row, a pairable run without its pair row), which would otherwise
    produce a plausible-looking partial fingerprint.  ``timeout`` rows are
    first-class: a budget-killed spec's timeout row stands in for its
    run/pair rows, and the merged fingerprint covers it.
    """
    runs: List[SpecRunRecord] = []
    pairs: List[PairRecord] = []
    timeouts: List[TimeoutRecord] = []
    headers: List[Dict[str, object]] = []
    for path in paths:
        first = True
        with open(path) as handle:
            for kind, row in parse_jsonl_rows(handle):
                if first and kind != "campaign":
                    raise ValueError(
                        f"{path} does not start with a campaign header row"
                    )
                first = False
                try:
                    if kind == "campaign":
                        schema = row.get("schema")
                        if schema != JSONL_SCHEMA:
                            raise ValueError(
                                f"{path} uses campaign JSONL schema "
                                f"{schema!r}; this version reads schema "
                                f"{JSONL_SCHEMA}"
                            )
                        headers.append(row)
                    elif kind == "run":
                        runs.append(SpecRunRecord.from_row(row))
                    elif kind == "timeout":
                        timeouts.append(TimeoutRecord.from_row(row))
                    else:
                        pairs.append(PairRecord.from_row(row))
                except KeyError as exc:
                    raise ValueError(
                        f"{path}: {kind} row is missing field {exc}"
                    ) from None
        if first:
            raise ValueError(f"{path} contains no campaign rows")
    seen_runs = set()
    for record in runs:
        key = (record.name, record.mode)
        if key in seen_runs:
            raise ValueError(
                f"duplicate run row for spec {record.name!r} mode "
                f"{record.mode!r} across the merged JSONL files"
            )
        seen_runs.add(key)
    seen_pairs = set()
    for pair in pairs:
        if pair.name in seen_pairs:
            raise ValueError(
                f"duplicate pair row for spec {pair.name!r} across the "
                f"merged JSONL files"
            )
        seen_pairs.add(pair.name)
    seen_timeouts = set()
    for timeout in timeouts:
        key = (timeout.name, timeout.mode)
        if key in seen_timeouts:
            raise ValueError(
                f"duplicate timeout row for spec {timeout.name!r} mode "
                f"{timeout.mode!r} across the merged JSONL files"
            )
        seen_timeouts.add(key)
        if key in seen_runs:
            # One (spec, mode) job either completed or was killed; a file
            # set claiming both is stitched from different campaign
            # executions (a resume always drops timeout rows before
            # re-running, so no single campaign can write both).
            raise ValueError(
                f"contradictory rows for spec {timeout.name!r} mode "
                f"{timeout.mode!r}: both a run row and a timeout row "
                f"across the merged JSONL files"
            )
        if timeout.name in seen_pairs:
            # A pair row proves both halves completed, so a timeout row
            # for the same spec can only come from a different execution
            # (e.g. shards written before and after a re-partition).
            raise ValueError(
                f"contradictory rows for spec {timeout.name!r}: both a "
                f"pair row and a timeout row across the merged JSONL files"
            )
    _check_merge_completeness(headers, runs, pairs, timeouts)
    workers = max((int(h.get("workers", 0)) for h in headers), default=0)
    return CampaignResult(
        runs=runs,
        pairs=pairs,
        workers=workers,
        wall_seconds=0.0,
        timeouts=timeouts,
    )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Aggregated outcome of one campaign execution."""

    runs: List[SpecRunRecord]
    pairs: List[PairRecord]
    workers: int
    wall_seconds: float
    #: ``(index, count)`` when this result covers one shard of a campaign.
    shard: Optional[Tuple[int, int]] = None
    #: Budget-killed jobs (see :class:`~repro.campaign.orchestrator.budget
    #: .TimeoutRecord`); empty for an unbudgeted or on-budget campaign.
    timeouts: List[TimeoutRecord] = field(default_factory=list)

    @property
    def all_pairs_equivalent(self) -> bool:
        return all(pair.equivalent for pair in self.pairs)

    @property
    def complete(self) -> bool:
        """True when no job was killed by a budget (``--resume`` heals an
        incomplete campaign by re-running its timed-out specs)."""
        return not self.timeouts

    def worker_pids(self) -> List[int]:
        """Distinct worker PIDs that executed work (provenance only).

        Pairs contribute the PIDs of both of their halves; records rebuilt
        from JSONL carry PID 0, which is filtered out."""
        pids = {record.worker_pid for record in self.runs}
        for pair in self.pairs:
            pids.update(pair.worker_pids)
        pids.discard(0)
        return sorted(pids)

    def aggregate_rows(self) -> Dict[str, List[Dict[str, object]]]:
        """The deterministic aggregate: identical for any worker count.

        The ``timeouts`` key appears only when a budget killed a job, so
        the fingerprint of every campaign without timeouts is unchanged
        from the pre-budget pipeline byte for byte.
        """
        rows = {
            "runs": [
                record.deterministic_row()
                for record in sorted(self.runs, key=lambda r: (r.name, r.mode))
            ],
            "pairs": [
                pair.deterministic_row()
                for pair in sorted(self.pairs, key=lambda p: p.name)
            ],
        }
        if self.timeouts:
            rows["timeouts"] = [
                record.deterministic_row()
                for record in sorted(
                    self.timeouts, key=lambda t: (t.name, t.mode)
                )
            ]
        return rows

    def canonical_json(self) -> str:
        return json.dumps(
            self.aggregate_rows(), sort_keys=True, separators=(",", ":")
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical aggregate (the comparison handle)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # ------------------------------------------------------------------
    def run_rows(self) -> List[Dict[str, object]]:
        """Printable per-run rows (wall times included, for humans)."""
        rows = []
        for record in sorted(self.runs, key=lambda r: (r.name, r.mode)):
            row = record.deterministic_row()
            row["extra"] = json.dumps(row["extra"], sort_keys=True)
            row["trace_digest"] = record.trace_digest[:12]
            row["wall_s"] = round(record.wall_seconds, 4)
            rows.append(row)
        return rows

    def pair_rows(self) -> List[Dict[str, object]]:
        rows = []
        for pair in sorted(self.pairs, key=lambda p: p.name):
            rows.append(
                {
                    "name": pair.name,
                    "equivalent": pair.equivalent,
                    "trace_lines": pair.reference_lines,
                    "reference_digest": pair.reference_digest[:12],
                    "smart_digest": pair.smart_digest[:12],
                    "wall_s": round(pair.wall_seconds, 4),
                }
            )
        return rows

    def table(self) -> str:
        columns = [
            "name", "workload", "mode", "depth", "seed", "context_switches",
            "trace_lines", "trace_digest", "wall_s",
        ]
        return dict_rows_table(self.run_rows(), columns, title="Campaign runs")

    def pairs_table(self) -> str:
        return dict_rows_table(
            self.pair_rows(),
            ["name", "equivalent", "trace_lines", "reference_digest",
             "smart_digest", "wall_s"],
            title="Paired reference/Smart equivalence (Section IV-A)",
        )

    def summary(self) -> str:
        shard = (
            f", shard={self.shard[0]}/{self.shard[1]}" if self.shard else ""
        )
        lines = [
            f"{len(self.runs)} runs, {len(self.pairs)} pairs, "
            f"workers={self.workers}{shard}, wall={self.wall_seconds:.2f}s",
            f"worker processes used: {len(self.worker_pids())}",
            f"all pairs equivalent: {self.all_pairs_equivalent}",
            f"campaign fingerprint: {self.fingerprint()}",
        ]
        if self.timeouts:
            lines.append(f"budget timeouts: {len(self.timeouts)}")
            for record in sorted(self.timeouts, key=lambda t: (t.name, t.mode)):
                lines.append(
                    f"TIMEOUT {record.name} [{record.mode}]: exceeded the "
                    f"{record.scope} limit of {record.limit_s}s "
                    f"(--resume re-runs it)"
                )
        for pair in self.pairs:
            if not pair.equivalent:
                lines.append(f"PAIR MISMATCH {pair.name}:\n{pair.report}")
        return "\n".join(lines)


class CampaignRunner:
    """Shards specs across worker processes and aggregates the records.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs inline in
        the calling process — no pool, bit-identical aggregate.
    paired:
        When True (default) every pairable spec additionally runs the
        reference/Smart equivalence diff.  The two runs of a pair are
        scheduled as independent jobs and recombined at aggregation, so
        they can execute on two different workers.
    mp_start_method:
        Optional :mod:`multiprocessing` start method ("fork", "spawn", ...);
        ``None`` uses the platform default.
    shard:
        Optional ``(index, count)``: run only the ``index``-th deterministic
        shard of the spec list (see :meth:`shard_specs`).  Merging the JSONL
        of all ``count`` shards with :func:`merge_jsonl` reproduces the
        unsharded fingerprint.
    shard_by_cost:
        With ``shard``: partition by estimated per-spec cost (the LPT
        partitioner of :mod:`repro.campaign.orchestrator.partition`)
        instead of round-robin.  Shard membership changes; the merged
        fingerprint does not.
    cost_model:
        The :class:`~repro.campaign.orchestrator.costs.CostModel` feeding
        ``shard_by_cost`` (``None`` = the cold-start heuristic).  Every
        shard of one campaign must use identical cost inputs, or the
        shards will not partition consistently.
    budget:
        Optional :class:`~repro.campaign.orchestrator.budget.RunBudget`.
        When a limit is set, jobs run in killable child processes (even
        at ``workers=1``): an overrunning job is terminated and recorded
        as a deterministic ``timeout`` row (see
        :class:`~repro.campaign.orchestrator.budget.TimeoutRecord`);
        ``--resume`` re-runs timed-out specs.  A budgeted campaign in
        which nothing times out aggregates byte-identically to an
        unbudgeted one.
    trace_sink:
        Kind of :class:`~repro.kernel.tracing.TraceSink` every worker
        simulation emits into (one of
        :data:`~repro.kernel.tracing.SINK_KINDS`).  The default
        ``"digest"`` streams the trace into its digest without ever
        materializing records; ``"list"`` restores the historical
        collector; ``"null"`` disables tracing — digests degenerate to the
        empty-trace digest on both sides of a pair, so trace validation is
        off and only the deterministic extras are compared.
    trace_out:
        Optional directory receiving one reordered trace file per run
        (``<spec>.<mode>.trace``); requires a spool-backed sink
        (``trace_sink="spool"``).
    auto_replay:
        When True, specs sharing an anchor (identical spec identity modulo
        name/depth/quantum — see
        :func:`~repro.campaign.evaluators.replay_group_key`) are routed
        through record-and-replay: the group's first spec is simulated
        once with a dependency recorder (its row is byte-identical to a
        plain simulation — recording only observes) and every other member
        is priced by replaying the spool (rows tagged
        ``"evaluator": "replay"``).  A group whose recording is poisoned,
        and any point outside the recording's validity envelope
        (:class:`~repro.replay.ReplayInvalid`), falls back to plain
        simulation — auto-replay never changes *which* rows exist, only
        how the eligible ones were computed.  Specs that would run as
        pairs are never routed (a pair diffs traces; replay produces
        none).  The routing pass runs inline in the parent — replay is an
        order of magnitude cheaper than simulation — and is therefore not
        covered by ``budget``.
    auto_replay_validate:
        With ``auto_replay``: cross-validate this many replayed points per
        group (evenly spaced) against fresh recorded simulations; any
        divergence raises :class:`~repro.replay.ReplayError`.  ``0``
        trusts the anchor self-check.
    telemetry_dir:
        Optional directory receiving the :mod:`repro.telemetry` sideband:
        the parent writes ``parent.jsonl`` (sink/recombine timing, replay
        routing counters, the overall ``campaign.run`` span), every worker
        process appends ``worker-<pid>.jsonl`` (queue-wait / execute /
        serialize spans plus the kernel and FIFO counters of its runs),
        and at the end everything is concatenated into ``telemetry.jsonl``.
        Telemetry is wall-clock data and stays strictly out of the
        deterministic rows — fingerprints are byte-identical with it on or
        off.  ``None`` (the default) costs one attribute check per run.
    progress:
        When True, render a live single-line progress ticker on stderr
        (specs done/total, rate, ETA — cost-weighted when ``cost_model``
        is given).  Display only; never touches stdout or the rows.
    """

    def __init__(
        self,
        workers: int = 1,
        paired: bool = True,
        mp_start_method: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
        trace_sink: str = DEFAULT_TRACE_SINK,
        trace_out: Optional[str] = None,
        shard_by_cost: bool = False,
        cost_model: Optional[CostModel] = None,
        budget: Optional[RunBudget] = None,
        auto_replay: bool = False,
        auto_replay_validate: int = 1,
        telemetry_dir: Optional[str] = None,
        progress: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard is not None:
            index, count = shard
            if count < 1:
                raise ValueError(f"shard count must be >= 1, got {count}")
            if not 0 <= index < count:
                raise ValueError(
                    f"shard index must be in [0, {count}), got {index}"
                )
            shard = (index, count)
        if shard_by_cost and shard is None:
            raise ValueError("shard_by_cost requires a shard=(index, count)")
        if cost_model is not None and not shard_by_cost and not progress:
            raise ValueError(
                "cost_model is only used with shard_by_cost or progress"
            )
        if trace_sink not in SINK_KINDS:
            raise ValueError(
                f"trace_sink must be one of {', '.join(SINK_KINDS)}, "
                f"got {trace_sink!r}"
            )
        if trace_out is not None and trace_sink != "spool":
            raise ValueError(
                f"trace_out requires trace_sink='spool', got {trace_sink!r}"
            )
        if auto_replay_validate < 0:
            raise ValueError(
                f"auto_replay_validate must be >= 0, got {auto_replay_validate}"
            )
        self.workers = workers
        self.paired = paired
        self.mp_start_method = mp_start_method
        self.shard = shard
        self.shard_by_cost = shard_by_cost
        self.cost_model = cost_model
        self.budget = budget
        self.trace_sink = trace_sink
        self.trace_out = trace_out
        self.auto_replay = auto_replay
        self.auto_replay_validate = auto_replay_validate
        self.telemetry_dir = telemetry_dir
        self.progress = progress
        self._telemetry = NULL_TELEMETRY
        self._ticker: Optional[ProgressTicker] = None
        self._job_count = 0

    # ------------------------------------------------------------------
    @staticmethod
    def shard_specs(
        specs: Sequence[ScenarioSpec], index: int, count: int
    ) -> List[ScenarioSpec]:
        """Deterministic shard ``index`` of ``count``: every ``count``-th
        spec starting at ``index`` (round-robin over the spec list order,
        so shards are balanced regardless of how the campaign groups
        expensive specs)."""
        return list(specs[index::count])

    # ------------------------------------------------------------------
    def _auto_replay_pass(self, specs: Sequence[ScenarioSpec], sink=None):
        """Route sweep groups through record-and-replay (see ``auto_replay``).

        Returns ``(remaining_specs, rows)``: the specs that must still be
        simulated by the normal job path, and the rows produced here (one
        plain simulated row per recorded anchor, one replay-tagged row per
        successfully replayed point).  Persisted to ``sink`` immediately,
        like pool results.
        """
        # Imported here: evaluators imports execute_spec/_record_from from
        # this module, so a module-level import would be circular.
        from ..replay import ReplayEngine, ReplayError, ReplayInvalid
        from .evaluators import (
            ReplayEvaluator,
            _validation_sample,
            compare_replay_to_spool,
            record_spool,
            replay_group_key,
            replay_record,
        )

        telemetry = self._telemetry
        groups: Dict[Tuple[object, ...], List[ScenarioSpec]] = {}
        for spec in specs:
            if self.paired and spec_is_pairable(spec):
                continue  # pairs diff traces; replay rows carry none
            groups.setdefault(replay_group_key(spec), []).append(spec)
        routed: Dict[str, SpecRunRecord] = {}
        for members in groups.values():
            if len(members) < 2:
                continue
            anchor = members[0]
            try:
                with telemetry.span("replay.record", spec=anchor.name):
                    evaluator = ReplayEvaluator(
                        anchor, trace_sink=self.trace_sink
                    )
            except ReplayError:
                # Poisoned recording or failed self-check: the whole group
                # stays on the simulation path.
                telemetry.counter("replay.poisoned_groups")
                continue
            assert evaluator.anchor_record is not None
            telemetry.counter("replay.groups_routed")
            routed[anchor.name] = evaluator.anchor_record
            replayed: List[Tuple[ScenarioSpec, object]] = []
            for point in members[1:]:
                point_t0 = time.monotonic() if telemetry.enabled else 0.0
                start = time.perf_counter()
                try:
                    result = evaluator.replay_point(point)
                except ReplayInvalid as exc:
                    # Outside the validity envelope: simulate it.  The
                    # refusal construct (a human-readable branch name) is
                    # counted so a sweep's envelope misses are attributable.
                    if telemetry.enabled:
                        construct = (
                            getattr(exc, "construct", None) or "unspecified"
                        )
                        telemetry.counter(f"replay.refusals.{construct}")
                    continue
                elapsed = time.perf_counter() - start
                if telemetry.enabled:
                    telemetry.span_at(
                        "replay.point", point_t0,
                        time.monotonic() - point_t0, spec=point.name,
                    )
                    telemetry.counter("replay.points_replayed")
                routed[point.name] = replay_record(point, result, elapsed)
                replayed.append((point, result))
            for picked in _validation_sample(
                len(replayed), self.auto_replay_validate
            ):
                point, result = replayed[picked]
                with telemetry.span("replay.validate", spec=point.name):
                    fresh_spool, _ = record_spool(point, self.trace_sink)
                    fresh_result = ReplayEngine(fresh_spool).self_check()
                    diffs = compare_replay_to_spool(
                        result, fresh_spool, fresh_result,
                        strict=evaluator.engine.strict,
                    )
                if diffs:
                    raise ReplayError(
                        f"auto-replayed point {point.label} diverges from a "
                        f"fresh simulation: " + "; ".join(diffs[:6])
                    )
        rows = [routed[spec.name] for spec in specs if spec.name in routed]
        if sink is not None:
            for row in rows:
                sink.run_completed(row)
        remaining = [spec for spec in specs if spec.name not in routed]
        return remaining, rows

    # ------------------------------------------------------------------
    def _execute(self, specs: Sequence[ScenarioSpec], mapper, sink=None):
        """Run the campaign body with a completion-order job executor.

        Each spec becomes either one ``single`` job, or — when ``paired``
        is on and the spec is pairable — two independent half jobs (one per
        mode) whose results are recombined here; the half matching
        ``spec.mode`` doubles as the spec's single-mode run, so no
        (spec, mode) simulates twice.  ``mapper`` yields completed
        ``(spec_index, half_mode, outcome)`` triples in any order, which is
        what lets pool workers stream results back as they finish (and the
        JSONL sink persist them immediately).  A budget-killed job arrives
        as a :class:`TimeoutRecord` outcome: it is persisted and
        aggregated but never recombined — a pair with a timed-out half
        simply has no pair row (the timeout row excuses it at merge time).
        """
        jobs = []
        for index, spec in enumerate(specs):
            if self.paired and spec_is_pairable(spec):
                jobs.append(self._job(index, MODE_REFERENCE, spec))
                jobs.append(self._job(index, MODE_SMART, spec))
            else:
                jobs.append(self._job(index, _JOB_SINGLE, spec))
        self._job_count = len(jobs)
        telemetry = self._telemetry
        ticker = self._ticker
        runs, pairs, timeouts = [], [], []
        halves: Dict[int, Dict[str, PairHalf]] = {}
        for index, half_mode, outcome in mapper(_execute_job, jobs):
            spec = specs[index]
            if isinstance(outcome, TimeoutRecord):
                timeouts.append(outcome)
                if sink is not None:
                    sink.timeout_completed(outcome)
                if ticker is not None:
                    ticker.item_done(spec.name, detail=f"timeout {spec.name}")
                continue
            if half_mode is _JOB_SINGLE:
                runs.append(outcome)
                if sink is not None:
                    sink.run_completed(outcome)
                if ticker is not None:
                    ticker.item_done(spec.name, detail=spec.name)
                continue
            half = outcome
            if half.mode == spec.mode:
                runs.append(half.record)
                if sink is not None:
                    sink.run_completed(half.record)
            pending = halves.setdefault(index, {})
            pending[half.mode] = half
            if len(pending) == 2:
                recombine_t0 = (
                    time.perf_counter() if telemetry.enabled else 0.0
                )
                pair = combine_pair(
                    pending[MODE_REFERENCE], pending[MODE_SMART]
                )
                if not pair.equivalent and self.trace_sink != "null":
                    # Failure path: the pool halves carry digests only, so
                    # re-run the pair inline over trace spools to upgrade
                    # the report to the full line-level diff
                    # (deterministic, hence identical for any worker
                    # count).  Not with tracing off: a null-sink mismatch
                    # is extras-only and the spool re-run would
                    # reintroduce the disabled trace validation.
                    pair = diff_pair_streaming(spec)
                if telemetry.enabled:
                    telemetry.counter(
                        "campaign.recombine_s",
                        time.perf_counter() - recombine_t0,
                    )
                    telemetry.counter("campaign.pairs_recombined")
                pairs.append(pair)
                if sink is not None:
                    sink.pair_completed(pair)
                if ticker is not None:
                    ticker.item_done(spec.name, detail=spec.name)
                del halves[index]
        return runs, pairs, timeouts

    def _job(self, index: int, half_mode: Optional[str], spec: ScenarioSpec):
        """Build one job tuple; telemetry extends it with the sideband
        directory and an enqueue stamp (see :func:`_execute_job`)."""
        job = (index, half_mode, spec, self.trace_sink, self.trace_out)
        if self.telemetry_dir is None:
            return job
        return job + (self.telemetry_dir, time.monotonic())

    def _merge_telemetry(self) -> None:
        """Concatenate the parent and per-worker sidebands into
        ``telemetry.jsonl``.  Every event carries its pid, so the merge is
        pure concatenation; the per-process source files are removed."""
        destination = os.path.join(self.telemetry_dir, MERGED_TELEMETRY)
        # Only the files this campaign's processes wrote — the directory
        # may hold unrelated JSONL (e.g. the campaign rows file).
        sources = [
            os.path.join(self.telemetry_dir, name)
            for name in sorted(os.listdir(self.telemetry_dir))
            if name == "parent.jsonl"
            or (name.startswith("worker-") and name.endswith(".jsonl"))
        ]
        if sources:
            merge_telemetry_files(sources, destination, remove_sources=True)
        # An inline (workers=1) run wrote its worker file from this very
        # process; drop the cached handle so a later run starts fresh.
        _WORKER_TELEMETRY.pop((self.telemetry_dir, os.getpid()), None)

    def _budget_mapper(self, func, jobs):
        """Completion-order mapper over killable child processes.

        The budgeted twin of the pool mapper: jobs run through
        :func:`repro.campaign.orchestrator.budget.run_with_budget`, which
        terminates any job overrunning ``budget.spec_timeout_s`` and
        abandons everything once ``budget.campaign_budget_s`` expires.  A
        killed/abandoned job is translated into its deterministic
        :class:`TimeoutRecord` here (the job tuple carries the spec).
        """
        import multiprocessing

        context = multiprocessing.get_context(self.mp_start_method)
        processes = max(1, min(self.workers, len(jobs)))
        for event in run_with_budget(
            func,
            jobs,
            budget=self.budget,
            processes=processes,
            mp_context=context,
        ):
            if event[0] == "result":
                yield event[1]
                continue
            _, job, scope = event
            index, half_mode, spec = job[0], job[1], job[2]
            mode = half_mode if half_mode is not _JOB_SINGLE else spec.mode
            limit = (
                self.budget.campaign_budget_s
                if scope == SCOPE_CAMPAIGN
                else self.budget.spec_timeout_s
            )
            yield index, half_mode, TimeoutRecord.for_spec(
                spec, mode, scope, limit
            )

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        jsonl: Optional[str] = None,
        resume: bool = False,
    ) -> CampaignResult:
        """Execute the campaign; see the class docstring.

        ``resume=True`` (requires ``jsonl``) re-reads an existing JSONL
        file of the *same* campaign (identical header; anything else is
        rejected), skips every spec whose run row — and pair row, when one
        is due — is already present, rewrites the file with the recovered
        rows and appends only the missing ones.  The aggregated result
        covers the whole campaign either way, so the final
        :meth:`CampaignResult.fingerprint` is byte-identical to an
        uninterrupted run.
        """
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate spec names in campaign: {duplicates}")
        for spec in specs:
            spec.validate()
        campaign_specs = specs
        if self.shard is not None:
            if self.shard_by_cost:
                shards = cost_shards(
                    campaign_specs,
                    self.shard[1],
                    self.cost_model,
                    self.paired,
                )
                specs = shards[self.shard[0]]
            else:
                specs = self.shard_specs(specs, *self.shard)
        if resume and not jsonl:
            raise CampaignResumeError(
                "resume=True requires a jsonl path to resume from"
            )
        header_row = None
        done_runs: List[SpecRunRecord] = []
        done_pairs: List[PairRecord] = []
        resuming_existing = resume and os.path.exists(jsonl)
        if resuming_existing:
            header_row, done_runs, done_pairs = load_resume_state(
                jsonl, campaign_specs, self.paired, self.shard,
                shard_specs=specs if self.shard is not None else None,
                shard_by_cost=self.shard_by_cost,
            )
        seen_runs = {(record.name, record.mode) for record in done_runs}
        seen_pairs = {pair.name for pair in done_pairs}
        todo = []
        for spec in specs:
            needs_pair = self.paired and spec_is_pairable(spec)
            if (spec.name, spec.mode) in seen_runs and (
                not needs_pair or spec.name in seen_pairs
            ):
                continue
            todo.append(spec)
        telemetry = NULL_TELEMETRY
        if self.telemetry_dir is not None:
            os.makedirs(self.telemetry_dir, exist_ok=True)
            telemetry = Telemetry(
                "campaign",
                path=os.path.join(self.telemetry_dir, "parent.jsonl"),
            )
        self._telemetry = telemetry
        if self.progress:
            costs = None
            if self.cost_model is not None:
                costs = {
                    spec.name: self.cost_model.spec_cost(spec, self.paired)
                    for spec in todo
                }
            self._ticker = ProgressTicker(
                len(todo), label="campaign", costs=costs
            )
        start = time.perf_counter()
        start_mono = time.monotonic()
        sink_file = None
        sink = None
        try:
            if jsonl and resuming_existing:
                # Rewrite the recovered prefix (healing a torn final line)
                # into a sibling temp file and atomically replace the
                # original, so the completed work is never the only copy
                # in a truncated file; then append the new rows.  The
                # replayed rows are marked seen so a partially complete
                # spec cannot persist a duplicate row.
                tmp_path = jsonl + ".resume-tmp"
                with open(tmp_path, "w") as tmp_file:
                    sink = JsonlSink(
                        tmp_file, campaign_specs, self.workers, self.paired,
                        self.shard, header_row=header_row,
                    )
                    sink.replay(done_runs, done_pairs)
                os.replace(tmp_path, jsonl)
                sink_file = open(jsonl, "a")
                sink.reattach(sink_file)
            elif jsonl:
                sink_file = open(jsonl, "w")
                sink = JsonlSink(
                    sink_file, campaign_specs, self.workers, self.paired,
                    self.shard, shard_by_cost=self.shard_by_cost,
                )
            specs = todo
            if telemetry.enabled:
                telemetry.gauge("campaign.workers", self.workers)
                telemetry.gauge("campaign.specs_total", len(campaign_specs))
                telemetry.gauge("campaign.specs_todo", len(specs))
                if sink is not None:
                    sink = _TimedSink(sink, telemetry)
            replay_rows: List[SpecRunRecord] = []
            if self.auto_replay and specs:
                specs, replay_rows = self._auto_replay_pass(specs, sink=sink)
            if self.budget is not None and self.budget.active and specs:
                # Budgeted execution always runs jobs in killable child
                # processes (even at workers=1): enforcing a wall-clock
                # limit on an inline simulation would require cooperation
                # from the overrunning code — exactly what a stuck spec
                # does not give.
                runs, pairs, timeouts = self._execute(
                    specs, self._budget_mapper, sink=sink
                )
            elif self.workers == 1 or not specs:
                runs, pairs, timeouts = self._execute(
                    specs,
                    lambda func, items: (func(item) for item in items),
                    sink=sink,
                )
            else:
                import multiprocessing

                context = multiprocessing.get_context(self.mp_start_method)
                # Up to two jobs per spec (the split pair halves).
                processes = max(1, min(self.workers, 2 * len(specs)))
                # One pool serves the whole campaign, so with workers > 1 all
                # simulations run in worker processes (the parent only
                # aggregates).  chunksize=1 keeps the load balanced: batching
                # jobs would strand queued specs behind one slow spec, and
                # imap_unordered streams results back in completion order so
                # the JSONL sink persists each row as soon as it exists.
                with context.Pool(processes=processes) as pool:
                    runs, pairs, timeouts = self._execute(
                        specs,
                        lambda func, items: pool.imap_unordered(
                            func, items, chunksize=1
                        ),
                        sink=sink,
                    )
        finally:
            if sink_file is not None:
                sink_file.close()
            self._telemetry = NULL_TELEMETRY
            if self._ticker is not None:
                self._ticker.finish()
                self._ticker = None
        wall = time.perf_counter() - start
        if telemetry.enabled:
            telemetry.span_at(
                "campaign.run", start_mono, time.monotonic() - start_mono,
                specs=len(campaign_specs), jobs=self._job_count,
                workers=self.workers,
            )
            telemetry.close()
            self._merge_telemetry()
        # Recovered rows and freshly executed rows are interchangeable
        # (runs are deterministic); keep the recovered copies so the
        # aggregate matches the persisted file exactly, and drop the
        # re-executed duplicates of partially complete specs.
        runs = done_runs + replay_rows + [
            record for record in runs
            if (record.name, record.mode) not in seen_runs
        ]
        pairs = done_pairs + [
            pair for pair in pairs if pair.name not in seen_pairs
        ]
        return CampaignResult(
            runs=runs,
            pairs=pairs,
            workers=self.workers,
            wall_seconds=wall,
            shard=self.shard,
            timeouts=timeouts,
        )
