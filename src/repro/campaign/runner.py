"""The parallel campaign engine.

A campaign is a list of :class:`~repro.campaign.spec.ScenarioSpec`; the
:class:`CampaignRunner` shards it across a :mod:`multiprocessing` pool.
Each worker process builds its **own** :class:`~repro.kernel.simulator
.Simulator` from the spec — runs are fully isolated and deterministic per
seed — and sends back a small picklable record.  Two guarantees matter:

* **Worker-count transparency** — the aggregated result (every field of
  :meth:`CampaignResult.aggregate_rows` and therefore
  :meth:`CampaignResult.fingerprint`) is byte-identical for any
  ``workers`` value, because the deterministic rows carry only simulated
  dates, counters and trace digests, never wall-clock values or PIDs, and
  are sorted by spec name.
* **Paired validation** — the Section IV-A methodology is a first-class
  campaign mode: every pairable spec is re-run in ``reference`` and
  ``smart`` modes inside one worker and the locally-timestamped traces are
  diffed with :mod:`repro.analysis.trace_diff`; an empty diff means the
  Smart FIFO changed neither the behaviour nor the timing of that spec.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import dict_rows_table
from ..analysis.trace_diff import compare_collectors
from ..kernel.simulator import Simulator
from .scenarios import build_scenario
from .spec import MODE_REFERENCE, MODE_SMART, ScenarioSpec, spec_is_pairable


def _trace_digest(sim: Simulator) -> str:
    """Digest of the *reordered* trace (the paper's comparison key)."""
    payload = "\n".join(sim.trace.sorted_lines()).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass
class SpecRunRecord:
    """Outcome of one spec executed in one mode."""

    name: str
    workload: str
    mode: str
    depth: int
    quantum_ns: Optional[int]
    seed: int
    timing: Optional[str]
    sim_end_fs: int
    context_switches: int
    method_invocations: int
    delta_cycles: int
    trace_lines: int
    trace_digest: str
    extra: Dict[str, object] = field(default_factory=dict)
    #: Wall-clock and process provenance: informative only, excluded from
    #: the deterministic aggregation.
    wall_seconds: float = 0.0
    worker_pid: int = 0

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workload": self.workload,
            "mode": self.mode,
            "depth": self.depth,
            "quantum_ns": self.quantum_ns,
            "seed": self.seed,
            "timing": self.timing,
            "sim_end_fs": self.sim_end_fs,
            "context_switches": self.context_switches,
            "method_invocations": self.method_invocations,
            "delta_cycles": self.delta_cycles,
            "trace_lines": self.trace_lines,
            "trace_digest": self.trace_digest,
            "extra": self.extra,
        }


@dataclass
class PairRecord:
    """Outcome of one paired reference/Smart equivalence run."""

    name: str
    equivalent: bool
    reference_digest: str
    smart_digest: str
    reference_lines: int
    candidate_lines: int
    #: Whether the deterministic extras (completion dates, checksums...)
    #: also matched — the observable the paper compares for workloads that
    #: do not emit trace lines.
    extras_match: bool = True
    #: Human-readable mismatch summary; empty when the diff is empty.
    report: str = ""
    wall_seconds: float = 0.0
    worker_pid: int = 0

    def deterministic_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "equivalent": self.equivalent,
            "reference_digest": self.reference_digest,
            "smart_digest": self.smart_digest,
            "reference_lines": self.reference_lines,
            "candidate_lines": self.candidate_lines,
            "extras_match": self.extras_match,
            "report": self.report,
        }


# ---------------------------------------------------------------------------
# Worker entry points (top-level functions: they must be picklable)
# ---------------------------------------------------------------------------
def _run_one(spec: ScenarioSpec):
    """Build and run ``spec`` in a fresh simulator; return (sim, built, wall)."""
    sim = Simulator(f"campaign_{spec.label}")
    built = build_scenario(sim, spec)
    start = time.perf_counter()
    built.scenario.run()
    wall = time.perf_counter() - start
    if built.verify is not None:
        built.verify()
    return sim, built, wall


def _record_from(spec: ScenarioSpec, sim: Simulator, built, wall: float) -> SpecRunRecord:
    return SpecRunRecord(
        name=spec.name,
        workload=spec.workload,
        mode=spec.mode,
        depth=spec.depth,
        quantum_ns=spec.quantum_ns,
        seed=spec.seed,
        timing=spec.timing,
        sim_end_fs=sim.now_fs,
        context_switches=sim.stats.context_switches,
        method_invocations=sim.stats.method_invocations,
        delta_cycles=sim.stats.delta_cycles,
        trace_lines=len(sim.trace),
        trace_digest=_trace_digest(sim),
        extra=built.extras() if built.extras is not None else {},
        wall_seconds=wall,
        worker_pid=os.getpid(),
    )


def execute_spec(spec: ScenarioSpec) -> SpecRunRecord:
    """Worker body of the single-mode campaign."""
    sim, built, wall = _run_one(spec)
    return _record_from(spec, sim, built, wall)


def execute_paired_spec(spec: ScenarioSpec):
    """Worker body of the paired equivalence campaign.

    Runs ``spec`` in reference and Smart mode inside this worker (traces
    are too large to ship back) and diffs the trace collectors *and* the
    deterministic extras: the traces implement the Section IV-A
    reorder-and-compare check, the extras (completion dates, checksums,
    monitor samples) cover workloads whose modules do not emit trace lines.

    Returns ``(SpecRunRecord, PairRecord)``: the run record is taken from
    the execution matching ``spec.mode``, so a paired campaign never
    simulates the same (spec, mode) twice — both simulations here are also
    the spec's single-mode result.  Runs are deterministic per seed, so the
    record is bit-identical to what :func:`execute_spec` would produce.
    """
    ref_spec = spec.with_mode(MODE_REFERENCE)
    smart_spec = spec.with_mode(MODE_SMART)
    ref_sim, ref_built, ref_wall = _run_one(ref_spec)
    smart_sim, smart_built, smart_wall = _run_one(smart_spec)
    comparison = compare_collectors(ref_sim.trace, smart_sim.trace)
    ref_extras = ref_built.extras() if ref_built.extras is not None else {}
    smart_extras = smart_built.extras() if smart_built.extras is not None else {}
    extras_match = ref_extras == smart_extras
    report = ""
    if not comparison.equivalent:
        report = comparison.report()
    if not extras_match:
        report = (report + "\n" if report else "") + (
            f"extras differ: reference={ref_extras!r} smart={smart_extras!r}"
        )
    pair = PairRecord(
        name=spec.name,
        equivalent=comparison.equivalent and extras_match,
        reference_digest=_trace_digest(ref_sim),
        smart_digest=_trace_digest(smart_sim),
        reference_lines=comparison.reference_count,
        candidate_lines=comparison.candidate_count,
        extras_match=extras_match,
        report=report,
        wall_seconds=ref_wall + smart_wall,
        worker_pid=os.getpid(),
    )
    if spec.mode == MODE_REFERENCE:
        record = _record_from(ref_spec, ref_sim, ref_built, ref_wall)
    else:
        record = _record_from(smart_spec, smart_sim, smart_built, smart_wall)
    return record, pair


def execute_pair(spec: ScenarioSpec) -> PairRecord:
    """Just the :class:`PairRecord` of :func:`execute_paired_spec`."""
    return execute_paired_spec(spec)[1]


def _execute_job(job):
    """Dispatch one tagged campaign job (see ``CampaignRunner._execute``)."""
    paired, spec = job
    return execute_paired_spec(spec) if paired else execute_spec(spec)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Aggregated outcome of one campaign execution."""

    runs: List[SpecRunRecord]
    pairs: List[PairRecord]
    workers: int
    wall_seconds: float

    @property
    def all_pairs_equivalent(self) -> bool:
        return all(pair.equivalent for pair in self.pairs)

    def worker_pids(self) -> List[int]:
        """Distinct worker PIDs that executed work (provenance only)."""
        pids = {record.worker_pid for record in self.runs}
        pids.update(pair.worker_pid for pair in self.pairs)
        return sorted(pids)

    def aggregate_rows(self) -> Dict[str, List[Dict[str, object]]]:
        """The deterministic aggregate: identical for any worker count."""
        return {
            "runs": [
                record.deterministic_row()
                for record in sorted(self.runs, key=lambda r: (r.name, r.mode))
            ],
            "pairs": [
                pair.deterministic_row()
                for pair in sorted(self.pairs, key=lambda p: p.name)
            ],
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.aggregate_rows(), sort_keys=True, separators=(",", ":")
        )

    def fingerprint(self) -> str:
        """SHA-256 over the canonical aggregate (the comparison handle)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # ------------------------------------------------------------------
    def run_rows(self) -> List[Dict[str, object]]:
        """Printable per-run rows (wall times included, for humans)."""
        rows = []
        for record in sorted(self.runs, key=lambda r: (r.name, r.mode)):
            row = record.deterministic_row()
            row["extra"] = json.dumps(row["extra"], sort_keys=True)
            row["trace_digest"] = record.trace_digest[:12]
            row["wall_s"] = round(record.wall_seconds, 4)
            rows.append(row)
        return rows

    def pair_rows(self) -> List[Dict[str, object]]:
        rows = []
        for pair in sorted(self.pairs, key=lambda p: p.name):
            rows.append(
                {
                    "name": pair.name,
                    "equivalent": pair.equivalent,
                    "trace_lines": pair.reference_lines,
                    "reference_digest": pair.reference_digest[:12],
                    "smart_digest": pair.smart_digest[:12],
                    "wall_s": round(pair.wall_seconds, 4),
                }
            )
        return rows

    def table(self) -> str:
        columns = [
            "name", "workload", "mode", "depth", "seed", "context_switches",
            "trace_lines", "trace_digest", "wall_s",
        ]
        return dict_rows_table(self.run_rows(), columns, title="Campaign runs")

    def pairs_table(self) -> str:
        return dict_rows_table(
            self.pair_rows(),
            ["name", "equivalent", "trace_lines", "reference_digest",
             "smart_digest", "wall_s"],
            title="Paired reference/Smart equivalence (Section IV-A)",
        )

    def summary(self) -> str:
        lines = [
            f"{len(self.runs)} runs, {len(self.pairs)} pairs, "
            f"workers={self.workers}, wall={self.wall_seconds:.2f}s",
            f"worker processes used: {len(self.worker_pids())}",
            f"all pairs equivalent: {self.all_pairs_equivalent}",
            f"campaign fingerprint: {self.fingerprint()}",
        ]
        for pair in self.pairs:
            if not pair.equivalent:
                lines.append(f"PAIR MISMATCH {pair.name}:\n{pair.report}")
        return "\n".join(lines)


class CampaignRunner:
    """Shards specs across worker processes and aggregates the records.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs inline in
        the calling process — no pool, bit-identical aggregate.
    paired:
        When True (default) every pairable spec additionally runs the
        reference/Smart equivalence diff.
    mp_start_method:
        Optional :mod:`multiprocessing` start method ("fork", "spawn", ...);
        ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: int = 1,
        paired: bool = True,
        mp_start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.paired = paired
        self.mp_start_method = mp_start_method

    # ------------------------------------------------------------------
    def _execute(self, specs: Sequence[ScenarioSpec], mapper):
        """Run the campaign body with a ``map``-shaped executor.

        All work goes through one ``mapper`` call (one pool barrier), as a
        list of ``(paired, spec)`` jobs.  When ``paired`` is on, pairable
        specs go through :func:`execute_paired_spec` only — their own-mode
        simulation is one of the two runs of the equivalence pair, so no
        (spec, mode) simulates twice.
        """
        jobs = [
            (self.paired and spec_is_pairable(spec), spec) for spec in specs
        ]
        runs, pairs = [], []
        for (paired, _), outcome in zip(jobs, mapper(_execute_job, jobs)):
            if paired:
                record, pair = outcome
                runs.append(record)
                pairs.append(pair)
            else:
                runs.append(outcome)
        return runs, pairs

    def run(self, specs: Sequence[ScenarioSpec]) -> CampaignResult:
        specs = list(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate spec names in campaign: {duplicates}")
        for spec in specs:
            spec.validate()
        start = time.perf_counter()
        if self.workers == 1 or not specs:
            runs, pairs = self._execute(
                specs, lambda func, items: [func(item) for item in items]
            )
        else:
            import multiprocessing

            context = multiprocessing.get_context(self.mp_start_method)
            processes = min(self.workers, len(specs))
            # One pool serves every map of the campaign, so with workers > 1
            # all simulations run in worker processes (the parent only
            # aggregates) and the pool is spun up exactly once.
            with context.Pool(processes=processes) as pool:
                runs, pairs = self._execute(
                    specs,
                    lambda func, items: pool.map(func, items) if items else [],
                )
        wall = time.perf_counter() - start
        return CampaignResult(
            runs=runs, pairs=pairs, workers=self.workers, wall_seconds=wall
        )
