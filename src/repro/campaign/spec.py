"""Declarative scenario specifications and the campaign workload registry.

A :class:`ScenarioSpec` is a small, picklable description of one simulation
run.  Specs are the unit of work of the campaign engine: the
:class:`~repro.campaign.runner.CampaignRunner` ships them to worker
processes, each worker builds a fresh :class:`~repro.kernel.simulator
.Simulator` from the spec and returns a deterministic record.

``ScenarioSpec`` fields
-----------------------

``name``
    Unique identifier of the spec inside a campaign; used to sort the
    aggregated results, so two specs of one campaign may not share a name.
``workload``
    Key into the workload registry (see :func:`register_workload`); one of
    :func:`registered_workloads`, e.g. ``"streaming"``, ``"video"``,
    ``"random_traffic"``, ``"bursty"``, ``"contention"``, ``"soc"``,
    ``"writer_reader"``, ``"noc_stress"``, ``"packet_stream"``,
    ``"mixed"``.
``mode``
    FIFO policy / decoupling mode: ``"reference"`` (regular or
    sync-per-access FIFOs, no temporal decoupling — the paper's timing
    ground truth) or ``"smart"`` (Smart FIFOs with temporal decoupling).
``depth``
    Depth of every FIFO of the scenario.
``quantum_ns``
    Global quantum in nanoseconds for quantum-decoupled runs
    (``timing="quantum"``); ``None`` otherwise.
``seed``
    Seed of every randomized generator of the workload; two runs of the
    same spec are bit-identical.
``timing``
    Optional timing-annotation override for workloads that support more
    than the two paired modes: ``"untimed"`` or ``"quantum"`` (currently
    honoured by the ``streaming`` workload).  ``None`` derives the timing
    from ``mode``.
``params``
    Free-form workload-specific sizes (e.g. ``n_blocks`` for streaming,
    ``n_writers`` for contention); every builder documents its keys.
``burst``
    When True, workloads that support span (burst) FIFO accesses move
    their payloads through ``read_burst``/``write_burst`` instead of
    word-by-word loops.  Burst transfers are bit-exact with the word path
    (same dates, traces and deterministic counters), so the flag is a pure
    execution-speed knob and is deliberately **excluded** from
    :meth:`ScenarioSpec.identity_row` — a burst campaign reproduces the
    word-mode fingerprint byte for byte.

Pairability
-----------

The equivalence campaign of Section IV-A re-runs a spec in ``reference``
and ``smart`` modes and diffs the locally-timestamped traces.  Not every
spec supports that: quantum/untimed runs change the timing *by design*, and
the arbiter-contention scenario has no reference twin (arbitration delays
are a property of the decoupled schedule — its oracle is
:meth:`~repro.workloads.contention.ArbiterContentionScenario.verify`).
:func:`spec_is_pairable` encodes the rule.  Since PR 3 the two runs of a
pair are scheduled as independent worker jobs and recombined at
aggregation (see :func:`repro.campaign.runner.combine_pair`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

MODE_REFERENCE = "reference"
MODE_SMART = "smart"
MODES = (MODE_REFERENCE, MODE_SMART)

#: Timing overrides accepted in :attr:`ScenarioSpec.timing`.
TIMING_OVERRIDES = ("untimed", "quantum")


@dataclass
class ScenarioSpec:
    """One declarative simulation run (see the module docstring)."""

    name: str
    workload: str
    mode: str = MODE_SMART
    depth: int = 4
    quantum_ns: Optional[int] = None
    seed: int = 1
    timing: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    #: Pure speed knob (see the module docstring); never part of the
    #: deterministic identity of a run.
    burst: bool = False

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise ValueError("ScenarioSpec.name must be non-empty")
        if self.workload not in _REGISTRY:
            raise ValueError(
                f"unknown workload {self.workload!r}; registered: "
                f"{', '.join(registered_workloads())}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.depth <= 0:
            raise ValueError(f"depth must be positive, got {self.depth}")
        if self.timing is not None and self.timing not in TIMING_OVERRIDES:
            raise ValueError(
                f"timing override must be one of {TIMING_OVERRIDES}, "
                f"got {self.timing!r}"
            )
        if self.timing == "quantum" and self.quantum_ns is None:
            raise ValueError(f"spec {self.name}: timing='quantum' needs quantum_ns")
        if self.quantum_ns is not None and self.timing != "quantum":
            raise ValueError(
                f"spec {self.name}: quantum_ns={self.quantum_ns} is only "
                "meaningful with timing='quantum' (it would be recorded in "
                "the results but never applied)"
            )

    def with_mode(self, mode: str) -> "ScenarioSpec":
        """A copy of this spec running in another FIFO/decoupling mode."""
        return replace(self, mode=mode, params=dict(self.params))

    @property
    def label(self) -> str:
        return f"{self.name}[{self.mode}]"

    def identity_row(self) -> Dict[str, object]:
        """The deterministic identification columns of result rows."""
        return {
            "name": self.name,
            "workload": self.workload,
            "mode": self.mode,
            "depth": self.depth,
            "quantum_ns": self.quantum_ns,
            "seed": self.seed,
            "timing": self.timing,
        }


# ---------------------------------------------------------------------------
# Workload registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BuiltScenario:
    """What a workload builder returns: the scenario plus result hooks.

    ``scenario`` must expose ``run()``; ``verify`` (optional) raises on a
    broken run; ``extras`` (optional) returns extra *deterministic*,
    JSON-serializable scalars for the aggregated record — never wall-clock
    values, which would break the byte-identical aggregation guarantee.
    """

    scenario: object
    verify: Optional[Callable[[], None]] = None
    extras: Optional[Callable[[], Dict[str, object]]] = None


@dataclass(frozen=True)
class WorkloadEntry:
    """Registry entry: how to build a workload and what it supports."""

    key: str
    builder: Callable  # (Simulator, ScenarioSpec) -> BuiltScenario
    pairable: bool = True
    description: str = ""
    #: Names accepted in ``ScenarioSpec.params`` for this workload; a spec
    #: carrying any other key is rejected instead of silently running the
    #: default scenario under a typoed sweep parameter.
    param_keys: Tuple[str, ...] = ()


_REGISTRY: Dict[str, WorkloadEntry] = {}


def register_workload(
    key: str,
    *,
    pairable: bool = True,
    description: str = "",
    param_keys: Tuple[str, ...] = (),
):
    """Decorator registering a builder under ``key`` (last wins)."""

    def decorate(builder: Callable) -> Callable:
        _REGISTRY[key] = WorkloadEntry(
            key=key,
            builder=builder,
            pairable=pairable,
            description=description,
            param_keys=tuple(param_keys),
        )
        return builder

    return decorate


def workload_entry(key: str) -> WorkloadEntry:
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown workload {key!r}; registered: "
            f"{', '.join(registered_workloads())}"
        ) from None


def registered_workloads() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def spec_is_pairable(spec: ScenarioSpec) -> bool:
    """True when the spec can run the paired reference/Smart trace diff."""
    if spec.timing is not None:
        return False
    return workload_entry(spec.workload).pairable


def describe_specs(specs: List[ScenarioSpec]) -> List[Dict[str, object]]:
    """Identification rows plus pairability, for ``campaign --list``."""
    rows = []
    for spec in specs:
        row = spec.identity_row()
        row["pairable"] = spec_is_pairable(spec)
        row["params"] = (
            " ".join(f"{k}={spec.params[k]}" for k in sorted(spec.params)) or "-"
        )
        rows.append(row)
    return rows
