"""FIFO channel library.

Implementations:

* :class:`~repro.fifo.regular_fifo.RegularFifo` — the ``sc_fifo``
  equivalent, for non-decoupled processes;
* :class:`~repro.fifo.sync_fifo.SyncFifo` — a regular FIFO with a
  ``sync()`` at the beginning of each access, the timing-correct but slow
  way to use FIFOs from decoupled processes (Section II-B);
* :class:`~repro.fifo.smart_fifo.SmartFifo` — the paper's contribution:
  temporal-decoupling-aware FIFO with blocking, non-blocking and monitor
  interfaces (Section III);
* :class:`~repro.fifo.packet_fifo.PacketSmartFifo` — the Smart FIFO
  extension handling packetization used by the case-study network
  interfaces (Section IV-C);
* :class:`~repro.fifo.arbiter.WriteArbiter` /
  :class:`~repro.fifo.arbiter.ReadArbiter` — per-side arbiters required
  when several processes share a FIFO side.
"""

from .arbiter import ReadArbiter, WriteArbiter
from .cells import Cell, CellRing, CellView, NEVER
from .interfaces import (
    FifoInterface,
    FifoMonitorInterface,
    FifoReaderInterface,
    FifoWriterInterface,
)
from .packet_fifo import PacketSmartFifo
from .ports import FifoMonitorPort, FifoReadPort, FifoWritePort
from .regular_fifo import RegularFifo
from .smart_fifo import SmartFifo
from .sync_fifo import SyncFifo

__all__ = [
    "Cell",
    "CellRing",
    "CellView",
    "FifoInterface",
    "FifoMonitorInterface",
    "FifoMonitorPort",
    "FifoReadPort",
    "FifoReaderInterface",
    "FifoWritePort",
    "FifoWriterInterface",
    "NEVER",
    "PacketSmartFifo",
    "ReadArbiter",
    "RegularFifo",
    "SmartFifo",
    "SyncFifo",
    "WriteArbiter",
]
