"""The sync-per-access FIFO.

Section II-B of the paper describes the straightforward way to combine a
regular FIFO with temporally decoupled processes: "take a regular FIFO and
add a ``sync()`` at the beginning of each public method".  The result is
functionally and temporally correct — the paper uses it as the reference
for timing — but pays one context switch per access, which is exactly what
the Smart FIFO avoids.

:class:`SyncFifo` is that adapter.  It is the FIFO used by the ``TDless``
flavour of the case-study SoC (Section IV-C compares it against the Smart
FIFO) and by the mutation/equivalence tests as the timing oracle when the
calling processes are decoupled.
"""

from __future__ import annotations

from typing import Any, Union

from ..kernel.module import Module
from ..kernel.simulator import Simulator
from ..td.decoupling import sync
from ..td.local_time import get_local_time_manager
from .interfaces import FifoInterface
from .regular_fifo import RegularFifo


class SyncFifo(Module, FifoInterface):
    """A regular FIFO whose every public access first synchronizes the caller."""

    def __init__(self, parent: Union[Simulator, Module], name: str, depth: int = 16):
        super().__init__(parent, name)
        self._inner = RegularFifo(self, "inner", depth)

    # ------------------------------------------------------------------
    # Monitor interface
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._inner.depth

    @property
    def size(self) -> int:
        return self._inner.size

    def _record_sync(self) -> None:
        """Record the head ``sync()`` of one access (record-and-replay).

        The inner regular FIFO records the push/pop itself; only the
        synchronization in front of it would otherwise be invisible to the
        dependency spool.
        """
        recorder = self.sim.dep_recorder
        if recorder is not None:
            recorder.sync_point(
                get_local_time_manager(self.sim).local_fs(
                    self.sim.scheduler.current_process
                )
            )

    def get_size(self):
        """Synchronize the caller, then return the regular FIFO size."""
        self._record_sync()
        yield from sync(sim=self.sim)
        size = yield from self._inner.get_size()
        return size

    # ------------------------------------------------------------------
    # Writer interface
    # ------------------------------------------------------------------
    def write(self, data: Any):
        """Synchronize the caller, then perform a regular blocking write."""
        self._record_sync()
        yield from sync(sim=self.sim)
        yield from self._inner.write(data)

    def nb_write(self, data: Any) -> bool:
        """Non-blocking write; only meaningful for synchronized callers."""
        return self._inner.nb_write(data)

    def is_full(self) -> bool:
        return self._inner.is_full()

    @property
    def not_full_event(self):
        return self._inner.not_full_event

    # ------------------------------------------------------------------
    # Reader interface
    # ------------------------------------------------------------------
    def read(self):
        """Synchronize the caller, then perform a regular blocking read."""
        self._record_sync()
        yield from sync(sim=self.sim)
        data = yield from self._inner.read()
        return data

    def nb_read(self):
        return self._inner.nb_read()

    def is_empty(self) -> bool:
        return self._inner.is_empty()

    @property
    def not_empty_event(self):
        return self._inner.not_empty_event

    # ------------------------------------------------------------------
    @property
    def total_written(self) -> int:
        return self._inner.total_written

    @property
    def total_read(self) -> int:
        return self._inner.total_read

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SyncFifo({self.full_name!r}, depth={self.depth}, size={self.size})"
