"""FIFO interfaces.

The Smart FIFO of the paper exposes three interfaces (Fig. 4):

* a **writer-side interface** — blocking ``write`` plus the non-blocking
  helpers ``is_full`` / ``nb_write`` and the ``not_full_event``; accesses
  must carry non-decreasing local dates and are expected at a high rate;
* a **reader-side interface** — blocking ``read`` plus ``is_empty`` /
  ``nb_read`` and the ``not_empty_event``; same date-ordering requirement;
* a **monitor interface** — ``get_size``, a low-rate access used by embedded
  software for debug and dynamic performance tuning.

Every FIFO implementation of this package (regular, sync-wrapped, smart,
packet-aware) implements the same three interfaces, so the benchmark models
and the case-study SoC can swap implementations without touching the rest
of the design.  Blocking calls are generators and must be driven with
``yield from`` from thread processes; non-blocking calls are plain methods
usable from method processes.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence, Union

from ..kernel.errors import FifoError
from ..kernel.event import Event

#: Per-word gap of a burst: one constant fs value, or one fs value per word.
GapSpec = Union[int, Sequence[int]]


def _require_plain_burst(gap_fs: GapSpec, dates_out: Optional[list]) -> None:
    """Reject the timed-burst extras on FIFOs without local dates."""
    if gap_fs if isinstance(gap_fs, int) else any(gap_fs):
        raise FifoError(
            "this FIFO has no per-word local dates; bursts must use gap_fs=0"
        )
    if dates_out is not None:
        raise FifoError(
            "this FIFO has no per-word local dates; dates_out is unsupported"
        )


class FifoWriterInterface(abc.ABC):
    """Write side of a bounded FIFO."""

    @abc.abstractmethod
    def write(self, data: Any):
        """Blocking write (generator).  Use as ``yield from fifo.write(x)``.

        Blocks (synchronizing the caller when it is decoupled) while the
        FIFO is full, then stores ``data``.
        """

    @abc.abstractmethod
    def nb_write(self, data: Any) -> bool:
        """Non-blocking write; returns False (and stores nothing) when full."""

    def write_burst(self, words: Sequence[Any], gap_fs: GapSpec = 0,
                    dates_out: Optional[list] = None):
        """Blocking burst write (generator): every word of ``words``, with
        ``gap_fs`` femtoseconds of caller-local time after each word.

        Semantically identical to ``for w in words: yield from write(w)``
        interleaved with local-time advances — implementations may move
        whole spans at once, but blocking boundaries, dates and counters
        must stay bit-exact with the word loop.  When ``dates_out`` is a
        list, the per-word access dates (fs) are appended to it.  The
        default implementation is the word loop itself; it has no notion
        of local dates, so it only accepts plain (gap-free) bursts.
        """
        _require_plain_burst(gap_fs, dates_out)
        for word in words:
            yield from self.write(word)

    def nb_write_burst(self, words: Sequence[Any]) -> int:
        """Non-blocking burst write: store a leading run of ``words``,
        stopping at the first refused word; returns the number stored.
        Equivalent to repeated :meth:`nb_write` at the caller's date."""
        count = 0
        for word in words:
            if not self.nb_write(word):
                break
            count += 1
        return count

    @abc.abstractmethod
    def is_full(self) -> bool:
        """External view of fullness at the caller's local date."""

    @property
    @abc.abstractmethod
    def not_full_event(self) -> Event:
        """Event notified when the FIFO stops being (externally) full."""


class FifoReaderInterface(abc.ABC):
    """Read side of a bounded FIFO."""

    @abc.abstractmethod
    def read(self):
        """Blocking read (generator).  Use as ``x = yield from fifo.read()``."""

    @abc.abstractmethod
    def nb_read(self):
        """Non-blocking read; raises :class:`~repro.kernel.errors.FifoError`
        if the FIFO is externally empty (guard with :meth:`is_empty`)."""

    def read_burst(self, count: int, gap_fs: GapSpec = 0,
                   dates_out: Optional[list] = None):
        """Blocking burst read (generator): ``count`` words, with ``gap_fs``
        femtoseconds of caller-local time after each word; returns the list
        of words read.  Same bit-exactness contract as
        :meth:`FifoWriterInterface.write_burst`; the default implementation
        is the plain word loop (gap-free bursts only).
        """
        _require_plain_burst(gap_fs, dates_out)
        words: List[Any] = []
        for _ in range(count):
            word = yield from self.read()
            words.append(word)
        return words

    def nb_read_burst(self, count: int) -> List[Any]:
        """Non-blocking burst read: drain up to ``count`` immediately
        available words; returns the (possibly shorter) list.  Equivalent
        to repeated ``is_empty``-guarded :meth:`nb_read` at the caller's
        date."""
        words: List[Any] = []
        for _ in range(count):
            if self.is_empty():
                break
            words.append(self.nb_read())
        return words

    @abc.abstractmethod
    def is_empty(self) -> bool:
        """External view of emptiness at the caller's local date."""

    @property
    @abc.abstractmethod
    def not_empty_event(self) -> Event:
        """Event notified when the FIFO stops being (externally) empty."""


class FifoMonitorInterface(abc.ABC):
    """Monitor (filling level) side of a bounded FIFO."""

    @abc.abstractmethod
    def get_size(self):
        """Blocking size query (generator): number of items really present
        at the caller's date.  ``size = yield from fifo.get_size()``."""

    @property
    @abc.abstractmethod
    def depth(self) -> int:
        """The capacity of the modelled hardware FIFO."""


class FifoInterface(FifoWriterInterface, FifoReaderInterface, FifoMonitorInterface):
    """Convenience ABC grouping the three Smart FIFO interfaces."""
