"""FIFO interfaces.

The Smart FIFO of the paper exposes three interfaces (Fig. 4):

* a **writer-side interface** — blocking ``write`` plus the non-blocking
  helpers ``is_full`` / ``nb_write`` and the ``not_full_event``; accesses
  must carry non-decreasing local dates and are expected at a high rate;
* a **reader-side interface** — blocking ``read`` plus ``is_empty`` /
  ``nb_read`` and the ``not_empty_event``; same date-ordering requirement;
* a **monitor interface** — ``get_size``, a low-rate access used by embedded
  software for debug and dynamic performance tuning.

Every FIFO implementation of this package (regular, sync-wrapped, smart,
packet-aware) implements the same three interfaces, so the benchmark models
and the case-study SoC can swap implementations without touching the rest
of the design.  Blocking calls are generators and must be driven with
``yield from`` from thread processes; non-blocking calls are plain methods
usable from method processes.
"""

from __future__ import annotations

import abc
from typing import Any

from ..kernel.event import Event


class FifoWriterInterface(abc.ABC):
    """Write side of a bounded FIFO."""

    @abc.abstractmethod
    def write(self, data: Any):
        """Blocking write (generator).  Use as ``yield from fifo.write(x)``.

        Blocks (synchronizing the caller when it is decoupled) while the
        FIFO is full, then stores ``data``.
        """

    @abc.abstractmethod
    def nb_write(self, data: Any) -> bool:
        """Non-blocking write; returns False (and stores nothing) when full."""

    @abc.abstractmethod
    def is_full(self) -> bool:
        """External view of fullness at the caller's local date."""

    @property
    @abc.abstractmethod
    def not_full_event(self) -> Event:
        """Event notified when the FIFO stops being (externally) full."""


class FifoReaderInterface(abc.ABC):
    """Read side of a bounded FIFO."""

    @abc.abstractmethod
    def read(self):
        """Blocking read (generator).  Use as ``x = yield from fifo.read()``."""

    @abc.abstractmethod
    def nb_read(self):
        """Non-blocking read; raises :class:`~repro.kernel.errors.FifoError`
        if the FIFO is externally empty (guard with :meth:`is_empty`)."""

    @abc.abstractmethod
    def is_empty(self) -> bool:
        """External view of emptiness at the caller's local date."""

    @property
    @abc.abstractmethod
    def not_empty_event(self) -> Event:
        """Event notified when the FIFO stops being (externally) empty."""


class FifoMonitorInterface(abc.ABC):
    """Monitor (filling level) side of a bounded FIFO."""

    @abc.abstractmethod
    def get_size(self):
        """Blocking size query (generator): number of items really present
        at the caller's date.  ``size = yield from fifo.get_size()``."""

    @property
    @abc.abstractmethod
    def depth(self) -> int:
        """The capacity of the modelled hardware FIFO."""


class FifoInterface(FifoWriterInterface, FifoReaderInterface, FifoMonitorInterface):
    """Convenience ABC grouping the three Smart FIFO interfaces."""
