"""Side arbiters for the Smart FIFO.

Section III of the paper: *"The Smart FIFO assumes that each side is always
accessed by the same process; if it is not the case in the design, then an
arbiter must be added to ensure that two successive accesses on the same
side cannot have decreasing local dates (i.e., time must go forward on each
side, but no ordering with the other side is required)."*

:class:`WriteArbiter` and :class:`ReadArbiter` implement that arbiter for
decoupled threads: they model the FIFO port as a shared resource that is
*busy* until the date of the last granted access, so a process whose local
date is behind the last access date is simply delayed (its local date is
raised) until the port is free again.  This keeps the per-side dates
monotonic while preserving temporal decoupling (no context switch is
introduced by the arbiter itself).

Blocking accesses wait for FIFO capacity *before* taking their grant (via
``SmartFifo.wait_writable`` / ``wait_readable`` when available): the real
hardware arbiter only grants the port when the transfer can proceed, and
granting earlier would let later-granted processes overtake a sleeping
one, producing decreasing per-side dates.  One restriction follows: do not
front a ``SmartFifo(sync_on_access=True)`` with an arbiter — its
unconditional sync *after* the grant reopens that window.  Sync-per-access
callers are synchronized anyway, so their kernel dates are naturally
monotonic and they need no date arbitration in the first place.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from ..kernel.errors import FifoError
from ..kernel.module import Module
from ..kernel.process import WaitEvent
from ..kernel.simtime import SimTime, ZERO_TIME, as_time
from ..kernel.simulator import Simulator
from ..kernel.tracing import DEP_SMART_READ, DEP_SMART_WRITE
from ..td.decoupling import sync
from ..td.local_time import get_local_time_manager
from .cells import NEVER
from .interfaces import FifoReaderInterface, FifoWriterInterface
from .smart_fifo import SmartFifo


class _SideArbiter(Module):
    """Common machinery: serialize accesses by raising late callers."""

    #: Which FIFO side the arbiter fronts: 0 = write, 1 = read (set by the
    #: concrete subclasses; recorded with the arbiter registration so the
    #: replay engine knows which capacity wait precedes each grant).
    _SIDE = -1

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        fifo,
        access_duration: SimTime = ZERO_TIME,
        record_grants: bool = False,
    ):
        super().__init__(parent, name)
        if getattr(fifo, "sync_on_access", False):
            # See the module docstring: the unconditional sync *after* the
            # grant reopens the block-after-grant window, and sync-per-access
            # callers need no date arbitration anyway.
            raise FifoError(
                f"arbiter {name!r}: cannot front a sync_on_access FIFO "
                f"({getattr(fifo, 'full_name', fifo)!r}); sync-per-access "
                "callers are synchronized and need no date arbitration"
            )
        self.fifo = fifo
        #: Minimum time the port stays busy after a granted access; models
        #: the arbitration/transfer cycle of the real hardware port.
        self.access_duration = access_duration
        self._port_free_fs = NEVER
        #: Number of accesses whose caller had to be delayed by arbitration.
        self.arbitrated_accesses = 0
        self.total_accesses = 0
        #: Monotonicity bookkeeping is O(1): the Section III invariant —
        #: time must go forward on each side — is tracked with the date of
        #: the last grant only.  Pass ``record_grants=True`` to additionally
        #: keep the full grant history in :attr:`grant_dates_fs` (one int
        #: per access: oracle/debug use, not for long production runs).
        self._last_grant_fs = NEVER
        self._grants_monotonic = True
        #: Local dates (fs) at which accesses were granted, in grant order;
        #: ``None`` unless ``record_grants`` was requested.
        self.grant_dates_fs: Optional[List[int]] = [] if record_grants else None
        # Dependency recording (record-and-replay): the port-free arithmetic
        # of every grant is replayed from the spool, so the arbiter registers
        # itself alongside the FIFO it fronts.
        recorder = self.sim.dep_recorder
        if recorder is not None:
            self._dep = recorder
            self._arb_idx = recorder.register_arbiter(
                self, getattr(fifo, "_dep_idx", -1), self._SIDE
            )
        else:
            self._dep = None
            self._arb_idx = -1

    def set_access_duration(self, duration, unit=None) -> None:
        self.access_duration = as_time(duration) if unit is None else as_time(duration, unit)

    def _grant(self) -> None:
        """Raise the caller's local date to the port-free date if needed."""
        process = self.sim.scheduler.current_process
        manager = get_local_time_manager(self.sim)
        local_fs = manager.local_fs(process)
        self.total_accesses += 1
        if local_fs < self._port_free_fs:
            self.arbitrated_accesses += 1
            if process is not None:
                local_fs = manager.advance_to(process, self._port_free_fs)
            else:
                local_fs = self._port_free_fs
        if local_fs < self._last_grant_fs:
            self._grants_monotonic = False
        self._last_grant_fs = local_fs
        if self.grant_dates_fs is not None:
            self.grant_dates_fs.append(local_fs)
        self._port_free_fs = local_fs + self.access_duration.femtoseconds
        if self._dep is not None:
            self._dep.grant(
                self._arb_idx, local_fs, self.access_duration.femtoseconds
            )

    def _grant_snapshot(self):
        """State to restore with :meth:`_rollback_grant` if a non-blocking
        access is refused after its grant."""
        return (
            self._port_free_fs,
            self.total_accesses,
            self.arbitrated_accesses,
            self._last_grant_fs,
            self._grants_monotonic,
            len(self.grant_dates_fs) if self.grant_dates_fs is not None else 0,
        )

    def _rollback_grant(self, snapshot) -> None:
        """Undo the bookkeeping of the last :meth:`_grant`.

        A refused non-blocking access never occupied the port, so it must
        not appear in the counters or the grant-date oracle, nor keep the
        port busy.  (The caller's local date, if the grant raised it, stays
        raised — time cannot go backwards for a process.)
        """
        (
            self._port_free_fs,
            self.total_accesses,
            self.arbitrated_accesses,
            self._last_grant_fs,
            self._grants_monotonic,
            grants,
        ) = snapshot
        if self.grant_dates_fs is not None:
            del self.grant_dates_fs[grants:]

    @property
    def last_grant_fs(self) -> int:
        """Local date (fs) of the last granted access (NEVER before any)."""
        return self._last_grant_fs

    def grants_monotonic(self) -> bool:
        """True when the granted dates never decreased (the invariant the
        arbiter exists to enforce).  Tracked in O(1), available whether or
        not the full grant history is recorded."""
        return self._grants_monotonic


class WriteArbiter(_SideArbiter, FifoWriterInterface):
    """Serializes several writer processes in front of one FIFO write side."""

    _SIDE = 0

    def write(self, data: Any):
        # Block for a free cell *before* granting the port: a grant taken
        # while the FIFO is full would be overtaken (at a later date) by
        # writers granted afterwards while this one sleeps, and the write
        # side would see decreasing dates.  The real hardware arbiter only
        # grants the port when the transfer can actually proceed.
        waiter = getattr(self.fifo, "wait_writable", None)
        if waiter is not None:
            yield from waiter()
        self._grant()
        yield from self.fifo.write(data)

    def nb_write(self, data: Any) -> bool:
        if self._dep is not None:
            # A refused non-blocking write rolls the grant bookkeeping back,
            # but the grant record already landed in the spool and cannot be
            # unrecorded — the stream would replay a grant that never held.
            self._dep.poison(
                f"nb_write through arbiter {self.full_name}"
            )
        snapshot = self._grant_snapshot()
        self._grant()
        if self.fifo.nb_write(data):
            return True
        self._rollback_grant(snapshot)
        return False

    def write_burst(self, words: Sequence[Any], gap_fs=0, dates_out=None):
        """Burst write through the arbiter: the word algorithm flattened
        into one generator frame.

        A true span is unsound here: a mid-burst capacity block suspends
        this writer while competing writers take grants and move the
        port-free date, so every word must wait/grant/write individually.
        The win is structural — one generator frame and one Python loop for
        the whole burst instead of three frames per word.  ``gap_fs``
        (constant, or one entry per word) advances the caller's local date
        after each word, exactly like an ``advance`` after each word-loop
        access; bit-exact with that loop by construction.
        """
        n = len(words)
        gap_const, gaps = SmartFifo._span_gaps(gap_fs, n, "write")
        fifo = self.fifo
        dep = self._dep
        fifo_idx = getattr(fifo, "_dep_idx", -1)
        cells = fifo._cells
        depth = cells.depth
        process = self.sim.scheduler.current_process
        manager = get_local_time_manager(self.sim)
        for i in range(n):
            # wait_writable, inlined (same records, same counters).
            if dep is not None:
                dep.wait_cap(fifo_idx, 0)
            while cells.busy_count == depth:
                fifo.blocking_waits += 1
                fifo._blocked_writers += 1
                try:
                    yield from sync(sim=self.sim)
                    if cells.busy_count == depth:
                        yield WaitEvent(fifo._cell_freed)
                finally:
                    fifo._blocked_writers -= 1
            self._grant()
            fifo._do_write(process, manager, words[i])
            if dep is not None:
                dep.word(DEP_SMART_WRITE, fifo_idx, fifo._last_write_fs)
            if dates_out is not None:
                dates_out.append(fifo._last_write_fs)
            gap = gap_const if gaps is None else gaps[i]
            manager.advance_fs(process, gap)
            if dep is not None:
                dep.inc(gap)

    def is_full(self) -> bool:
        return self.fifo.is_full()

    @property
    def not_full_event(self):
        return self.fifo.not_full_event


class ReadArbiter(_SideArbiter, FifoReaderInterface):
    """Serializes several reader processes in front of one FIFO read side."""

    _SIDE = 1

    def read(self):
        # Symmetric to WriteArbiter.write: wait for a busy cell first, then
        # grant, so grant order equals actual access order even when the
        # FIFO runs internally empty.
        waiter = getattr(self.fifo, "wait_readable", None)
        if waiter is not None:
            yield from waiter()
        self._grant()
        data = yield from self.fifo.read()
        return data

    def nb_read(self):
        if self._dep is not None:
            # See WriteArbiter.nb_write: the rollback cannot unrecord the
            # grant, so the non-blocking path stays non-replayable.
            self._dep.poison(
                f"nb_read through arbiter {self.full_name}"
            )
        snapshot = self._grant_snapshot()
        self._grant()
        try:
            return self.fifo.nb_read()
        except Exception:
            self._rollback_grant(snapshot)
            raise

    def read_burst(self, count: int, gap_fs=0, dates_out=None):
        """Burst read through the arbiter (see :meth:`WriteArbiter.write_burst`).

        Returns the ``count`` words read, like repeated :meth:`read` calls.
        """
        gap_const, gaps = SmartFifo._span_gaps(gap_fs, count, "read")
        fifo = self.fifo
        dep = self._dep
        fifo_idx = getattr(fifo, "_dep_idx", -1)
        cells = fifo._cells
        process = self.sim.scheduler.current_process
        manager = get_local_time_manager(self.sim)
        words: List[Any] = []
        for i in range(count):
            # wait_readable, inlined (same records, same counters).
            if dep is not None:
                dep.wait_cap(fifo_idx, 1)
            while cells.busy_count == 0:
                fifo.blocking_waits += 1
                fifo._blocked_readers += 1
                try:
                    yield from sync(sim=self.sim)
                    if cells.busy_count == 0:
                        yield WaitEvent(fifo._cell_filled)
                finally:
                    fifo._blocked_readers -= 1
            self._grant()
            words.append(fifo._do_read(process, manager))
            if dep is not None:
                dep.word(DEP_SMART_READ, fifo_idx, fifo._last_read_fs)
            if dates_out is not None:
                dates_out.append(fifo._last_read_fs)
            gap = gap_const if gaps is None else gaps[i]
            manager.advance_fs(process, gap)
            if dep is not None:
                dep.inc(gap)
        return words

    def is_empty(self) -> bool:
        return self.fifo.is_empty()

    @property
    def not_empty_event(self):
        return self.fifo.not_empty_event
