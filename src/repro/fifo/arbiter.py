"""Side arbiters for the Smart FIFO.

Section III of the paper: *"The Smart FIFO assumes that each side is always
accessed by the same process; if it is not the case in the design, then an
arbiter must be added to ensure that two successive accesses on the same
side cannot have decreasing local dates (i.e., time must go forward on each
side, but no ordering with the other side is required)."*

:class:`WriteArbiter` and :class:`ReadArbiter` implement that arbiter for
decoupled threads: they model the FIFO port as a shared resource that is
*busy* until the date of the last granted access, so a process whose local
date is behind the last access date is simply delayed (its local date is
raised) until the port is free again.  This keeps the per-side dates
monotonic while preserving temporal decoupling (no context switch is
introduced by the arbiter itself).
"""

from __future__ import annotations

from typing import Any, Union

from ..kernel.module import Module
from ..kernel.simtime import SimTime, ZERO_TIME, as_time
from ..kernel.simulator import Simulator
from ..td.local_time import get_local_time_manager
from .cells import NEVER
from .interfaces import FifoReaderInterface, FifoWriterInterface


class _SideArbiter(Module):
    """Common machinery: serialize accesses by raising late callers."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        fifo,
        access_duration: SimTime = ZERO_TIME,
    ):
        super().__init__(parent, name)
        self.fifo = fifo
        #: Minimum time the port stays busy after a granted access; models
        #: the arbitration/transfer cycle of the real hardware port.
        self.access_duration = access_duration
        self._port_free_fs = NEVER
        #: Number of accesses whose caller had to be delayed by arbitration.
        self.arbitrated_accesses = 0
        self.total_accesses = 0

    def set_access_duration(self, duration, unit=None) -> None:
        self.access_duration = as_time(duration) if unit is None else as_time(duration, unit)

    def _grant(self) -> None:
        """Raise the caller's local date to the port-free date if needed."""
        process = self.sim.scheduler.current_process
        manager = get_local_time_manager(self.sim)
        local_fs = manager.local_fs(process)
        self.total_accesses += 1
        if local_fs < self._port_free_fs:
            self.arbitrated_accesses += 1
            if process is not None:
                local_fs = manager.advance_to(process, self._port_free_fs)
            else:
                local_fs = self._port_free_fs
        self._port_free_fs = local_fs + self.access_duration.femtoseconds


class WriteArbiter(_SideArbiter, FifoWriterInterface):
    """Serializes several writer processes in front of one FIFO write side."""

    def write(self, data: Any):
        self._grant()
        yield from self.fifo.write(data)

    def nb_write(self, data: Any) -> bool:
        self._grant()
        return self.fifo.nb_write(data)

    def is_full(self) -> bool:
        return self.fifo.is_full()

    @property
    def not_full_event(self):
        return self.fifo.not_full_event


class ReadArbiter(_SideArbiter, FifoReaderInterface):
    """Serializes several reader processes in front of one FIFO read side."""

    def read(self):
        self._grant()
        data = yield from self.fifo.read()
        return data

    def nb_read(self):
        self._grant()
        return self.fifo.nb_read()

    def is_empty(self) -> bool:
        return self.fifo.is_empty()

    @property
    def not_empty_event(self):
        return self.fifo.not_empty_event
