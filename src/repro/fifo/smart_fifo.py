"""The Smart FIFO (Section III of the paper).

The Smart FIFO is the paper's contribution: a model of a bounded hardware
FIFO that is aware of the local dates of temporally decoupled processes.

* Each **data item** carries the local date at which it was written (the
  *insertion date*); a blocking :meth:`read` raises the reader's local date
  up to that insertion date instead of synchronizing with the kernel.
* Each **freed cell** carries the local date at which it was read (the
  *freeing date*); a blocking :meth:`write` raises the writer's local date
  up to that freeing date, which models the back-pressure of the bounded
  hardware FIFO.
* A context switch only happens when the FIFO is *internally* full (write)
  or *internally* empty (read): the writer/reader synchronizes and waits
  until the peer frees/fills a cell.

The non-blocking interface (Section III-B) lets ``SC_METHOD``-style
processes use the FIFO: :meth:`is_empty` / :meth:`is_full` give the
*external* view of the FIFO at the caller's date, and the
:attr:`not_empty_event` / :attr:`not_full_event` events are notified with a
*delayed* notification so that they fire exactly at the date the real FIFO
changes state.

The monitor interface (Section III-C) computes the *real* filling level at
the (synchronized) caller's date from the per-cell timestamps.

The goal — and the property checked extensively by the test suite — is that
a model using Smart FIFOs with temporal decoupling produces **exactly the
same dates** as the same model using regular FIFOs without temporal
decoupling; only the schedule and the number of delta cycles may change.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import Any, List, Optional, Sequence, Union

from ..kernel.errors import FifoError, TimingError
from ..kernel.event import Event
from ..kernel.tracing import (
    BR_GET_SIZE,
    BR_IS_EMPTY,
    BR_IS_FULL,
    BR_NB_READ,
    BR_NB_WRITE,
    BR_PEEK_SIZE,
    DEP_SMART_READ,
    DEP_SMART_WRITE,
    DEP_SPAN_READ,
    DEP_SPAN_WRITE,
)
from ..kernel.module import Module
from ..kernel.process import Process, WaitEvent
from ..kernel.simtime import SimTime
from ..kernel.simulator import Simulator
from ..td.decoupling import sync
from ..td.local_time import LocalTimeManager, get_local_time_manager
from .cells import CellRing, NEVER
from .interfaces import FifoInterface


class SmartFifo(Module, FifoInterface):
    """A bounded FIFO aware of the local time of decoupled processes.

    Parameters
    ----------
    parent, name:
        Standard module hierarchy arguments.
    depth:
        Number of cells of the modelled hardware FIFO.
    enforce_side_ordering:
        When True (default) the FIFO checks that successive accesses on the
        same side carry non-decreasing dates, as required by Section III of
        the paper; violations raise :class:`TimingError`.  Designs where two
        processes share a side must insert a
        :class:`~repro.fifo.arbiter.WriteArbiter` /
        :class:`~repro.fifo.arbiter.ReadArbiter`.
    always_notify_external:
        When False (default) the delayed external notifications are only
        scheduled when a process actually listens to the corresponding
        event, which keeps the kernel's timed queue small.  Set to True to
        schedule them unconditionally (useful in unit tests).
    sync_on_access:
        When True every blocking access starts by synchronizing the caller,
        which turns this FIFO into the "regular FIFO plus sync() at each
        access" reference of Section II-B (one context switch per access,
        same timing).  The case-study benchmark uses this flag to build the
        slow-but-accurate flavour the paper compares the Smart FIFO against.
    """

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        depth: int = 16,
        enforce_side_ordering: bool = True,
        always_notify_external: bool = False,
        sync_on_access: bool = False,
    ):
        super().__init__(parent, name)
        self._cells = CellRing(depth)
        self._enforce_side_ordering = enforce_side_ordering
        self._always_notify_external = always_notify_external
        self.sync_on_access = sync_on_access
        # Hot-path caches: the scheduler and the local-time map never change
        # after construction and are consulted on every access.
        self._scheduler = self.sim.scheduler
        self._manager = get_local_time_manager(self.sim)

        # Internal events used to wake a blocked blocking access.
        self._cell_filled = self.create_event("cell_filled")
        self._cell_freed = self.create_event("cell_freed")
        # External events of the non-blocking interface (delayed notifications).
        self._not_empty_event = self.create_event("not_empty")
        self._not_full_event = self.create_event("not_full")

        self._blocked_readers = 0
        self._blocked_writers = 0
        self._last_write_fs = NEVER
        self._last_read_fs = NEVER

        #: Number of items written / read since construction.
        self.total_written = 0
        self.total_read = 0
        #: Number of times a blocking access had to suspend the caller
        #: (i.e. context switches caused by this FIFO).
        self.blocking_waits = 0
        #: Burst-path routing counters: spans moved as one bulk cell
        #: transfer vs bursts forced onto the per-word fallback by an
        #: external observer.  Deterministic (they count branch decisions
        #: of the burst fast path), but reported only on the telemetry
        #: sideband — never part of campaign rows.
        self.burst_span_writes = 0
        self.burst_word_writes = 0
        self.burst_span_reads = 0
        self.burst_word_reads = 0

        # Dependency recording (record-and-replay): picked up from the
        # simulator at construction time, None on the normal hot path.
        recorder = self.sim.dep_recorder
        if recorder is not None:
            self._dep = recorder
            self._dep_idx = recorder.register_fifo(
                self, kind="smart", depth=depth, sync_on_access=sync_on_access
            )
            if always_notify_external:
                # Replay drops external (delayed) notifications entirely,
                # which is only exact when they are never scheduled.
                recorder.poison(
                    f"always_notify_external Smart FIFO {self.full_name}"
                )
        else:
            self._dep = None
            self._dep_idx = -1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _caller_date_fs(self) -> int:
        # Inlined LocalTimeManager.local_fs_fast: the local date is cached
        # on the process object, so the caller's date is one attribute read.
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            return now_fs
        local_fs = process.local_fs
        return local_fs if local_fs > now_fs else now_fs

    def _notify_external(self, event: Event, date_fs: int, forced: bool = False) -> None:
        """Schedule a delayed notification of ``event`` at ``date_fs``.

        The notification fires at the real (hardware) date of the FIFO state
        change, which may be in the future of the current global date when
        the access was performed by a decoupled process.

        As an optimisation over the paper's rules, data-path notifications
        (from the write/read methods) are skipped when no process observes
        the event.  Notifications triggered by an explicit state query
        (``is_empty``, ``is_full``, ``packet_available``, a refused
        non-blocking access) pass ``forced=True``: the querying process is
        about to wait on the event (it is not registered yet while its
        method body is still running), so the notification must always be
        scheduled.
        """
        if not forced and not self._always_notify_external and not event.listener_count:
            return
        delay_fs = date_fs - self._scheduler.now_fs
        event.notify_fs(delay_fs if delay_fs > 0 else 0)

    def _ordering_error(self, side: str, date_fs: int) -> None:
        """Raise the Section-III ordering violation error for ``side``."""
        last = self._last_write_fs if side == "write" else self._last_read_fs
        raise TimingError(
            f"Smart FIFO {self.full_name}: {side} accesses with decreasing "
            f"dates ({SimTime.from_femtoseconds(last)} then "
            f"{SimTime.from_femtoseconds(date_fs)}); each side must be "
            f"accessed by a single process or through an arbiter"
        )

    # ------------------------------------------------------------------
    # Monitor interface (Section III-C)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._cells.depth

    def get_size(self):
        """Blocking size query: synchronize the caller, then count the cells
        that are *really* busy at the (now synchronized) caller's date."""
        dep = self._dep
        if dep is not None:
            # The head sync would otherwise be invisible to the spool (the
            # free ``sync`` helper does not record); the level itself is a
            # branch outcome the replay engine re-derives and verifies.
            dep.sync_point(
                self._manager.local_fs(self._scheduler.current_process)
            )
        yield from sync(sim=self.sim)
        level = self._cells.real_size_at(self.sim.now_fs)
        if dep is not None:
            dep.branch(BR_GET_SIZE, self._dep_idx, level, self.sim.now_fs)
        return level

    def get_free_count(self):
        """Blocking free-slot query (``depth - get_size``)."""
        size = yield from self.get_size()
        return self._cells.depth - size

    def size_at(self, date: SimTime) -> int:
        """Real filling level at an arbitrary date (pure observation)."""
        return self._cells.real_size_at(date.femtoseconds)

    def peek_size(self) -> int:
        """Real filling level at the caller's local date, without syncing.

        Extension over the paper's monitor interface: usable from method
        processes (which cannot synchronize) and from decoupled threads that
        only need an estimate consistent with their own local date.
        """
        date_fs = self._caller_date_fs()
        level = self._cells.real_size_at(date_fs)
        if self._dep is not None:
            self._dep.branch(BR_PEEK_SIZE, self._dep_idx, level, date_fs)
        return level

    @property
    def internal_size(self) -> int:
        """Number of internally busy cells (not the real hardware size)."""
        return self._cells.busy_count

    # ------------------------------------------------------------------
    # Writer-side interface (Section III-A)
    # ------------------------------------------------------------------
    @property
    def not_full_event(self) -> Event:
        return self._not_full_event

    def is_full(self) -> bool:
        """External view of fullness at the caller's local date.

        True iff all cells are internally busy, or the first free cell will
        only be freed in the caller's future (the real FIFO still holds the
        previous item in that cell).  When the answer is True because of a
        future freeing date, the external ``not_full_event`` is (re)armed at
        that date so that the canonical method pattern
        ``if fifo.is_full(): next_trigger(fifo.not_full_event); return``
        cannot miss the wake-up.
        """
        cells = self._cells
        if cells.busy_count == cells.depth:
            full = True
        else:
            freeing_fs = cells.head_free_freeing_fs()
            if freeing_fs > self._caller_date_fs():
                self._notify_external(
                    self._not_full_event, freeing_fs, forced=True
                )
                full = True
            else:
                full = False
        if self._dep is not None:
            self._dep.branch(
                BR_IS_FULL, self._dep_idx, int(full), self._caller_date_fs()
            )
        return full

    def write(self, data: Any):
        """Blocking write (``yield from fifo.write(x)``).

        Algorithm of Section III-A:

        1. while all cells are internally busy, synchronize the writer and
           wait until the reader frees a cell (this is the only case that
           costs context switches);
        2. if the freeing date of the first free cell is in the writer's
           future, raise the writer's local date up to it;
        3. fill the cell, record the insertion date, advance the free index;
        4. wake up a blocked reader, if any, and schedule the external
           ``not_empty`` notification when the FIFO was internally empty.
        """
        if self.sync_on_access:
            yield from sync(sim=self.sim)
        cells = self._cells
        depth = cells.depth
        while cells.busy_count == depth:
            self.blocking_waits += 1
            self._blocked_writers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == depth:
                    yield WaitEvent(self._cell_freed)
            finally:
                self._blocked_writers -= 1
        self._do_write(self._scheduler.current_process, self._manager, data)
        if self._dep is not None:
            self._dep.word(DEP_SMART_WRITE, self._dep_idx, self._last_write_fs)

    def wait_writable(self):
        """Block (sync + wait) until the FIFO is not *internally* full.

        Mirror of the blocking loop at the head of :meth:`write`, exposed so
        arbiters can wait for a free cell *before* granting the shared port:
        granting first and blocking afterwards would let a later-granted
        process slip its item in at a later date while the earlier-granted
        one is still asleep, breaking the per-side date ordering the arbiter
        exists to enforce.  (The loop is intentionally duplicated rather
        than shared with :meth:`write`: the write path is the hottest
        generator of the whole model and must not pay for an extra
        delegation frame.)
        """
        if self._dep is not None:
            self._dep.wait_cap(self._dep_idx, 0)
        cells = self._cells
        depth = cells.depth
        while cells.busy_count == depth:
            self.blocking_waits += 1
            self._blocked_writers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == depth:
                    yield WaitEvent(self._cell_freed)
            finally:
                self._blocked_writers -= 1

    def nb_write(self, data: Any) -> bool:
        """Non-blocking write for method processes.

        Returns False without writing when the FIFO is externally full at
        the caller's date (guard with :meth:`is_full`).
        """
        cells = self._cells
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        if cells.busy_count == cells.depth:
            if self._dep is not None:
                self._dep.branch(BR_NB_WRITE, self._dep_idx, 0, local_fs)
            return False
        freeing_fs = cells.head_free_freeing_fs()
        if freeing_fs > local_fs:
            # Externally full until the freeing date: arm the not_full event
            # so a method process retrying on it cannot miss the wake-up.
            self._notify_external(self._not_full_event, freeing_fs, forced=True)
            if self._dep is not None:
                self._dep.branch(BR_NB_WRITE, self._dep_idx, 0, local_fs)
            return False
        self._do_write(process, self._manager, data, local_fs)
        if self._dep is not None:
            self._dep.branch(
                BR_NB_WRITE, self._dep_idx, 1, self._last_write_fs
            )
        return True

    def _do_write(
        self,
        process: Optional[Process],
        manager: LocalTimeManager,
        data: Any,
        local_fs: int = -1,
    ) -> None:
        """Perform the write at the caller's date.

        ``local_fs`` may carry the caller's already-computed local date
        (guarded callers like :meth:`nb_write`); -1 means "compute it here".
        """
        cells = self._cells
        now_fs = self._scheduler.now_fs
        if local_fs < 0:
            if process is None:
                local_fs = now_fs
            else:
                local_fs = process.local_fs
                if local_fs < now_fs:
                    local_fs = now_fs
        freeing_fs = cells.head_free_freeing_fs()
        if freeing_fs > local_fs:
            if process is not None:
                local_fs = manager.advance_to(process, freeing_fs)
            else:
                local_fs = freeing_fs
        if self._enforce_side_ordering and local_fs < self._last_write_fs:
            self._ordering_error("write", local_fs)
        was_internally_empty = cells.busy_count == 0
        cells.push(data, local_fs)
        self._last_write_fs = local_fs
        self.total_written += 1
        # Wake a reader blocked inside a blocking read.
        if self._blocked_readers:
            self._cell_filled.notify_fs(0)
        # External not_empty notification, case 1 of Section III-B: all the
        # cells were free before this write.  The notification is delayed
        # until the insertion date of the new first busy cell.
        if was_internally_empty:
            self._notify_external(self._not_empty_event, local_fs)
        # Symmetric bookkeeping for not_full: after this push, if the FIFO is
        # not internally full but the next free cell will only be freed in
        # the future, the real FIFO is full until that date.
        if cells.busy_count < cells.depth and (
            self._always_notify_external or self._not_full_event.listener_count
        ):
            next_free_fs = cells.head_free_freeing_fs()
            if next_free_fs > now_fs:
                self._notify_external(self._not_full_event, next_free_fs)

    # ------------------------------------------------------------------
    # Burst (span) transfers
    # ------------------------------------------------------------------
    @staticmethod
    def _span_gaps(gap_fs, count: int, side: str):
        """Normalize a burst gap spec to ``(constant_fs, per_word_list)``."""
        if isinstance(gap_fs, int):
            if gap_fs < 0:
                raise FifoError(f"{side}_burst gap_fs must be >= 0")
            return gap_fs, None
        gaps = list(gap_fs)
        if len(gaps) != count:
            raise FifoError(
                f"{side}_burst got {len(gaps)} per-word gaps for {count} words"
            )
        if any(gap < 0 for gap in gaps):
            raise FifoError(f"{side}_burst gaps must be >= 0")
        return 0, gaps

    @staticmethod
    def _span_dates(local_fs: int, count: int, gap_fs: int,
                    gaps: Optional[List[int]], start: int) -> array:
        """Access dates of one fast-path span: the pure gap schedule from
        ``local_fs`` (the word-mode recurrence collapses to it once the
        span's worst-case cell date is known to be <= ``local_fs``)."""
        if gaps is None:
            if gap_fs:
                return array(
                    "q", range(local_fs, local_fs + count * gap_fs, gap_fs)
                )
            return array("q", [local_fs]) * count
        return array(
            "q", accumulate(gaps[start:start + count - 1], initial=local_fs)
        )

    def _notify_after_span_write(self, was_internally_empty: bool,
                                 first_date_fs: int) -> None:
        """External not_empty arming of one write span.

        Word mode only notifies when the first push of the span found the
        FIFO internally empty (case 1 of Section III-B); the later pushes
        of the same span cannot re-trigger it.  ``PacketSmartFifo``
        overrides this: it notifies after *every* insertion, and within
        one monotone-date span the earliest pending notification wins, so
        a single notify at the span's first date is bit-exact there too.
        """
        if was_internally_empty:
            self._notify_external(self._not_empty_event, first_date_fs)

    def write_burst(self, words: Sequence[Any], gap_fs=0,
                    dates_out: Optional[list] = None):
        """Blocking burst write: every word of ``words`` with ``gap_fs``
        femtoseconds of caller-local time after each word (``gap_fs`` may
        be one int or one int per word).

        Bit-exact with ``for w in words: yield from write(w)`` interleaved
        with per-word local-time advances: spans split at the internal
        blocking boundary exactly where the word loop would context
        switch, the ordering checks see the same dates, and the amortized
        notifications collapse to the same pending kernel state (the only
        intentionally different counter is ``KernelStats.event_notifications``,
        which is not part of the deterministic row).  When ``dates_out``
        is a list the per-word insertion dates (fs) are appended to it.
        """
        n = len(words)
        if n == 0:
            return
        gap_fs, gaps = self._span_gaps(gap_fs, n, "write")
        if self.sync_on_access:
            # Reference flavour: the word loop, one sync per access.
            manager = self._manager
            scheduler = self._scheduler
            dep = self._dep
            for index in range(n):
                yield from self.write(words[index])
                if dates_out is not None:
                    dates_out.append(self._last_write_fs)
                process = scheduler.current_process
                if process is not None:
                    gap = gap_fs if gaps is None else gaps[index]
                    manager.advance_fs(process, gap)
                    if dep is not None:
                        dep.inc(gap)
            return
        dep = self._dep
        if dep is not None and dates_out is None:
            dates_out = []
        dep_start = len(dates_out) if dep is not None else 0
        cells = self._cells
        depth = cells.depth
        written = 0
        while written < n:
            while cells.busy_count == depth:
                self.blocking_waits += 1
                self._blocked_writers += 1
                try:
                    yield from sync(sim=self.sim)
                    if cells.busy_count == depth:
                        yield WaitEvent(self._cell_freed)
                finally:
                    self._blocked_writers -= 1
            written += self._write_span(words, written, n, gap_fs, gaps,
                                        dates_out)
        if dep is not None:
            dep.span(DEP_SPAN_WRITE, self._dep_idx, n, gap_fs, gaps,
                     dates_out[dep_start:])

    def _write_span(self, words: Sequence[Any], start: int, n: int,
                    gap_fs: int, gaps: Optional[List[int]],
                    dates_out: Optional[list]) -> int:
        """Move one span of ``min(remaining, free)`` words; returns its size.

        Callers guarantee the ring is not internally full.  With an
        external ``not_full`` observer the span falls back to the word
        path (a listener could see the per-word trailing arming), which
        still cannot block because k never exceeds the free cells.
        Without observers the span is always one bulk transfer: either
        the pure gap schedule when every target cell is already free at
        the caller's date (one worst-case guard instead of k), or the
        exact word recurrence ``d_i = max(d_{i-1} + gap_{i-1},
        freeing_i)`` run over the head freeing dates.
        """
        cells = self._cells
        k = cells.depth - cells.busy_count
        remaining = n - start
        if k > remaining:
            k = remaining
        scheduler = self._scheduler
        process = scheduler.current_process
        manager = self._manager
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        if (
            self._always_notify_external
            or self._not_full_event.listener_count
            or process is None
        ):
            self.burst_word_writes += 1
            for index in range(start, start + k):
                self._do_write(process, manager, words[index])
                if dates_out is not None:
                    dates_out.append(self._last_write_fs)
                if process is not None:
                    manager.advance_fs(
                        process, gap_fs if gaps is None else gaps[index]
                    )
            return k
        self.burst_span_writes += 1
        if cells.head_free_ready_fs(k) <= local_fs:
            dates = self._span_dates(local_fs, k, gap_fs, gaps, start)
            final_fs = dates[-1] + (
                gap_fs if gaps is None else gaps[start + k - 1]
            )
        else:
            dates = cells.head_free_freeing_span(k)
            prev = local_fs
            if gaps is None:
                for index in range(k):
                    date_fs = dates[index]
                    if date_fs < prev:
                        date_fs = prev
                        dates[index] = prev
                    prev = date_fs + gap_fs
            else:
                for index in range(k):
                    date_fs = dates[index]
                    if date_fs < prev:
                        date_fs = prev
                        dates[index] = prev
                    prev = date_fs + gaps[start + index]
            final_fs = prev
        if self._enforce_side_ordering and dates[0] < self._last_write_fs:
            # Dates are monotone, so only the span's first word can trip
            # the ordering check — exactly like the word loop would.
            self._ordering_error("write", dates[0])
        was_internally_empty = cells.busy_count == 0
        cells.push_span(words[start:start + k], dates)
        self._last_write_fs = dates[-1]
        self.total_written += k
        if dates_out is not None:
            dates_out.extend(dates)
        manager.advance_to(process, final_fs)
        if self._blocked_readers:
            self._cell_filled.notify_fs(0)
        self._notify_after_span_write(was_internally_empty, dates[0])
        return k

    def nb_write_burst(self, words: Sequence[Any]) -> int:
        """Non-blocking burst write: bit-exact with repeated
        :meth:`nb_write` (store a leading run, arm ``not_full`` at the
        head freeing date when refusing early)."""
        n = len(words)
        if n == 0:
            return 0
        if self._always_notify_external or self._not_full_event.listener_count:
            # Word-path fallback: per-word nb_write records its own branches.
            self.burst_word_writes += 1
            return super().nb_write_burst(words)
        self.burst_span_writes += 1
        cells = self._cells
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        k = cells.head_free_span(n, local_fs)
        if self._dep is not None:
            # The record stream of the repeated-nb_write loop: one accepted
            # branch per stored word (all at the caller's date — the span
            # guard guarantees every target cell is free by then), then one
            # refusal branch when the burst stops early.
            for _ in range(k):
                self._dep.branch(BR_NB_WRITE, self._dep_idx, 1, local_fs)
            if k < n:
                self._dep.branch(BR_NB_WRITE, self._dep_idx, 0, local_fs)
        if k:
            if self._enforce_side_ordering and local_fs < self._last_write_fs:
                self._ordering_error("write", local_fs)
            was_internally_empty = cells.busy_count == 0
            cells.push_span(words[:k] if k < n else words,
                            array("q", [local_fs]) * k)
            self._last_write_fs = local_fs
            self.total_written += k
            if self._blocked_readers:
                self._cell_filled.notify_fs(0)
            self._notify_after_span_write(was_internally_empty, local_fs)
        if k < n and cells.busy_count < cells.depth:
            # The first refused word-mode nb_write arms not_full at the
            # head freeing date so a retrying method cannot miss the wake.
            self._notify_external(
                self._not_full_event, cells.head_free_freeing_fs(), forced=True
            )
        return k

    # ------------------------------------------------------------------
    # Reader-side interface (Section III-A)
    # ------------------------------------------------------------------
    @property
    def not_empty_event(self) -> Event:
        return self._not_empty_event

    def is_empty(self) -> bool:
        """External view of emptiness at the caller's local date.

        True iff all cells are internally free, or the insertion date of the
        first busy cell is in the caller's future.  In the latter case the
        external ``not_empty_event`` is (re)armed at that insertion date.
        """
        cells = self._cells
        if cells.busy_count == 0:
            empty = True
        else:
            insertion_fs = cells.head_busy_insertion_fs()
            if insertion_fs > self._caller_date_fs():
                self._notify_external(
                    self._not_empty_event, insertion_fs, forced=True
                )
                empty = True
            else:
                empty = False
        if self._dep is not None:
            self._dep.branch(
                BR_IS_EMPTY, self._dep_idx, int(empty), self._caller_date_fs()
            )
        return empty

    def read(self):
        """Blocking read (``x = yield from fifo.read()``).

        Symmetric to :meth:`write`: wait until a cell is internally busy,
        raise the reader's local date up to the insertion date of the first
        busy cell if needed, free the cell (recording the freeing date),
        notify the write side, and return the data.
        """
        if self.sync_on_access:
            yield from sync(sim=self.sim)
        cells = self._cells
        while cells.busy_count == 0:
            self.blocking_waits += 1
            self._blocked_readers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == 0:
                    yield WaitEvent(self._cell_filled)
            finally:
                self._blocked_readers -= 1
        data = self._do_read(self._scheduler.current_process, self._manager)
        if self._dep is not None:
            self._dep.word(DEP_SMART_READ, self._dep_idx, self._last_read_fs)
        return data

    def wait_readable(self):
        """Block (sync + wait) until the FIFO is not *internally* empty.

        Mirror of the blocking loop at the head of :meth:`read`; see
        :meth:`wait_writable` for why arbiters need it.
        """
        if self._dep is not None:
            self._dep.wait_cap(self._dep_idx, 1)
        cells = self._cells
        while cells.busy_count == 0:
            self.blocking_waits += 1
            self._blocked_readers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == 0:
                    yield WaitEvent(self._cell_filled)
            finally:
                self._blocked_readers -= 1

    def nb_read(self):
        """Non-blocking read for method processes.

        Raises :class:`FifoError` when the FIFO is externally empty at the
        caller's date (guard with :meth:`is_empty`).
        """
        cells = self._cells
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        if cells.busy_count:
            insertion_fs = cells.head_busy_insertion_fs()
            if insertion_fs <= local_fs:
                data = self._do_read(process, self._manager, local_fs)
                if self._dep is not None:
                    self._dep.branch(
                        BR_NB_READ, self._dep_idx, 1, self._last_read_fs
                    )
                return data
            # Arm the not_empty event at the date the item really arrives.
            self._notify_external(self._not_empty_event, insertion_fs, forced=True)
        if self._dep is not None:
            self._dep.branch(BR_NB_READ, self._dep_idx, 0, local_fs)
        raise FifoError(
            f"nb_read on externally empty Smart FIFO {self.full_name}"
        )

    def _do_read(
        self,
        process: Optional[Process],
        manager: LocalTimeManager,
        local_fs: int = -1,
    ):
        """Perform the read at the caller's date (see :meth:`_do_write`)."""
        cells = self._cells
        now_fs = self._scheduler.now_fs
        insertion_fs = cells.head_busy_insertion_fs()
        if local_fs < 0:
            if process is None:
                local_fs = now_fs
            else:
                local_fs = process.local_fs
                if local_fs < now_fs:
                    local_fs = now_fs
        if insertion_fs > local_fs:
            if process is not None:
                local_fs = manager.advance_to(process, insertion_fs)
            else:
                local_fs = insertion_fs
        if self._enforce_side_ordering and local_fs < self._last_read_fs:
            self._ordering_error("read", local_fs)
        was_internally_full = cells.busy_count == cells.depth
        data = cells.pop(local_fs)
        self._last_read_fs = local_fs
        self.total_read += 1
        # Wake a writer blocked inside a blocking write.
        if self._blocked_writers:
            self._cell_freed.notify_fs(0)
        # External not_full notification, case 1 (symmetric of Section III-B):
        # all the cells were busy before this read; the real FIFO stops being
        # full at the freeing date.
        if was_internally_full:
            self._notify_external(self._not_full_event, local_fs)
        # External not_empty notification, case 2 of Section III-B: the next
        # busy cell exists but its insertion date is in the future; the real
        # FIFO becomes non-empty (again) only at that date.
        if cells.busy_count and (
            self._always_notify_external or self._not_empty_event.listener_count
        ):
            next_insertion_fs = cells.head_busy_insertion_fs()
            if next_insertion_fs > now_fs:
                self._notify_external(self._not_empty_event, next_insertion_fs)
        return data

    def read_burst(self, count: int, gap_fs=0,
                   dates_out: Optional[list] = None):
        """Blocking burst read: ``count`` words with ``gap_fs`` femtoseconds
        of caller-local time after each word (one int or one int per
        word); returns the list of words.  Bit-exact with the word loop —
        see :meth:`write_burst` for the contract.  When ``dates_out`` is a
        list the per-word read dates (fs) are appended to it."""
        if count <= 0:
            return []
        gap_fs, gaps = self._span_gaps(gap_fs, count, "read")
        words: List[Any] = []
        if self.sync_on_access:
            # Reference flavour: the word loop, one sync per access.
            manager = self._manager
            scheduler = self._scheduler
            dep = self._dep
            for index in range(count):
                word = yield from self.read()
                words.append(word)
                if dates_out is not None:
                    dates_out.append(self._last_read_fs)
                process = scheduler.current_process
                if process is not None:
                    gap = gap_fs if gaps is None else gaps[index]
                    manager.advance_fs(process, gap)
                    if dep is not None:
                        dep.inc(gap)
            return words
        dep = self._dep
        if dep is not None and dates_out is None:
            dates_out = []
        dep_start = len(dates_out) if dep is not None else 0
        cells = self._cells
        while len(words) < count:
            while cells.busy_count == 0:
                self.blocking_waits += 1
                self._blocked_readers += 1
                try:
                    yield from sync(sim=self.sim)
                    if cells.busy_count == 0:
                        yield WaitEvent(self._cell_filled)
                finally:
                    self._blocked_readers -= 1
            self._read_span(words, count, gap_fs, gaps, dates_out)
        if dep is not None:
            dep.span(DEP_SPAN_READ, self._dep_idx, count, gap_fs, gaps,
                     dates_out[dep_start:])
        return words

    def _read_span(self, words: List[Any], count: int, gap_fs: int,
                   gaps: Optional[List[int]],
                   dates_out: Optional[list]) -> None:
        """Drain one span of ``min(remaining, busy)`` words into ``words``.

        Callers guarantee the ring is not internally empty; symmetric twin
        of :meth:`_write_span`: word-path fallback only for external
        ``not_empty`` observers, pure gap schedule when the span's
        worst-case insertion date has passed, otherwise the exact word
        recurrence ``d_i = max(d_{i-1} + gap_{i-1}, insertion_i)`` over
        the head insertion dates — one ``pop_span`` either way."""
        cells = self._cells
        taken = len(words)
        k = cells.busy_count
        remaining = count - taken
        if k > remaining:
            k = remaining
        scheduler = self._scheduler
        process = scheduler.current_process
        manager = self._manager
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        if (
            self._always_notify_external
            or self._not_empty_event.listener_count
            or process is None
        ):
            self.burst_word_reads += 1
            for index in range(taken, taken + k):
                words.append(self._do_read(process, manager))
                if dates_out is not None:
                    dates_out.append(self._last_read_fs)
                if process is not None:
                    manager.advance_fs(
                        process, gap_fs if gaps is None else gaps[index]
                    )
            return
        self.burst_span_reads += 1
        if cells.head_busy_completion_fs(k) <= local_fs:
            dates = self._span_dates(local_fs, k, gap_fs, gaps, taken)
            final_fs = dates[-1] + (
                gap_fs if gaps is None else gaps[taken + k - 1]
            )
        else:
            dates = cells.head_busy_insertion_span(k)
            prev = local_fs
            if gaps is None:
                for index in range(k):
                    date_fs = dates[index]
                    if date_fs < prev:
                        date_fs = prev
                        dates[index] = prev
                    prev = date_fs + gap_fs
            else:
                for index in range(k):
                    date_fs = dates[index]
                    if date_fs < prev:
                        date_fs = prev
                        dates[index] = prev
                    prev = date_fs + gaps[taken + index]
            final_fs = prev
        if self._enforce_side_ordering and dates[0] < self._last_read_fs:
            # Dates are monotone, so only the span's first word can trip
            # the ordering check — exactly like the word loop would.
            self._ordering_error("read", dates[0])
        was_internally_full = cells.busy_count == cells.depth
        words.extend(cells.pop_span(k, dates))
        self._last_read_fs = dates[-1]
        self.total_read += k
        if dates_out is not None:
            dates_out.extend(dates)
        manager.advance_to(process, final_fs)
        if self._blocked_writers:
            self._cell_freed.notify_fs(0)
        if was_internally_full:
            self._notify_external(self._not_full_event, dates[0])

    def nb_read_burst(self, count: int) -> List[Any]:
        """Non-blocking burst read: bit-exact with the ``is_empty``-guarded
        repeated :meth:`nb_read` loop (drain a leading run, arm
        ``not_empty`` at the head insertion date when stopping early)."""
        if count <= 0:
            return []
        if self._always_notify_external or self._not_empty_event.listener_count:
            # Word-path fallback: per-word nb_read records its own branches.
            self.burst_word_reads += 1
            return super().nb_read_burst(count)
        self.burst_span_reads += 1
        cells = self._cells
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        k = cells.head_busy_span(count, local_fs)
        if self._dep is not None:
            # Record stream of the guarded word loop: one drained branch per
            # word (all at the caller's date), one refusal when stopping
            # short of ``count``.
            for _ in range(k):
                self._dep.branch(BR_NB_READ, self._dep_idx, 1, local_fs)
            if k < count:
                self._dep.branch(BR_NB_READ, self._dep_idx, 0, local_fs)
        words: List[Any] = []
        if k:
            if self._enforce_side_ordering and local_fs < self._last_read_fs:
                self._ordering_error("read", local_fs)
            was_internally_full = cells.busy_count == cells.depth
            words = cells.pop_span(k, array("q", [local_fs]) * k)
            self._last_read_fs = local_fs
            self.total_read += k
            if self._blocked_writers:
                self._cell_freed.notify_fs(0)
            if was_internally_full:
                self._notify_external(self._not_full_event, local_fs)
        if k < count and cells.busy_count:
            # The word loop's refusing is_empty arms not_empty at the head
            # insertion date; replicate it when stopping early.
            self._notify_external(
                self._not_empty_event, cells.head_busy_insertion_fs(),
                forced=True,
            )
        return words

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SmartFifo({self.full_name!r}, depth={self.depth}, "
            f"internal_size={self.internal_size})"
        )
