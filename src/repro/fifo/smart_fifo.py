"""The Smart FIFO (Section III of the paper).

The Smart FIFO is the paper's contribution: a model of a bounded hardware
FIFO that is aware of the local dates of temporally decoupled processes.

* Each **data item** carries the local date at which it was written (the
  *insertion date*); a blocking :meth:`read` raises the reader's local date
  up to that insertion date instead of synchronizing with the kernel.
* Each **freed cell** carries the local date at which it was read (the
  *freeing date*); a blocking :meth:`write` raises the writer's local date
  up to that freeing date, which models the back-pressure of the bounded
  hardware FIFO.
* A context switch only happens when the FIFO is *internally* full (write)
  or *internally* empty (read): the writer/reader synchronizes and waits
  until the peer frees/fills a cell.

The non-blocking interface (Section III-B) lets ``SC_METHOD``-style
processes use the FIFO: :meth:`is_empty` / :meth:`is_full` give the
*external* view of the FIFO at the caller's date, and the
:attr:`not_empty_event` / :attr:`not_full_event` events are notified with a
*delayed* notification so that they fire exactly at the date the real FIFO
changes state.

The monitor interface (Section III-C) computes the *real* filling level at
the (synchronized) caller's date from the per-cell timestamps.

The goal — and the property checked extensively by the test suite — is that
a model using Smart FIFOs with temporal decoupling produces **exactly the
same dates** as the same model using regular FIFOs without temporal
decoupling; only the schedule and the number of delta cycles may change.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..kernel.errors import FifoError, TimingError
from ..kernel.event import Event
from ..kernel.module import Module
from ..kernel.process import Process, WaitEvent
from ..kernel.simtime import SimTime
from ..kernel.simulator import Simulator
from ..td.decoupling import sync
from ..td.local_time import LocalTimeManager, get_local_time_manager
from .cells import CellRing, NEVER
from .interfaces import FifoInterface


class SmartFifo(Module, FifoInterface):
    """A bounded FIFO aware of the local time of decoupled processes.

    Parameters
    ----------
    parent, name:
        Standard module hierarchy arguments.
    depth:
        Number of cells of the modelled hardware FIFO.
    enforce_side_ordering:
        When True (default) the FIFO checks that successive accesses on the
        same side carry non-decreasing dates, as required by Section III of
        the paper; violations raise :class:`TimingError`.  Designs where two
        processes share a side must insert a
        :class:`~repro.fifo.arbiter.WriteArbiter` /
        :class:`~repro.fifo.arbiter.ReadArbiter`.
    always_notify_external:
        When False (default) the delayed external notifications are only
        scheduled when a process actually listens to the corresponding
        event, which keeps the kernel's timed queue small.  Set to True to
        schedule them unconditionally (useful in unit tests).
    sync_on_access:
        When True every blocking access starts by synchronizing the caller,
        which turns this FIFO into the "regular FIFO plus sync() at each
        access" reference of Section II-B (one context switch per access,
        same timing).  The case-study benchmark uses this flag to build the
        slow-but-accurate flavour the paper compares the Smart FIFO against.
    """

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        depth: int = 16,
        enforce_side_ordering: bool = True,
        always_notify_external: bool = False,
        sync_on_access: bool = False,
    ):
        super().__init__(parent, name)
        self._cells = CellRing(depth)
        self._enforce_side_ordering = enforce_side_ordering
        self._always_notify_external = always_notify_external
        self.sync_on_access = sync_on_access
        # Hot-path caches: the scheduler and the local-time map never change
        # after construction and are consulted on every access.
        self._scheduler = self.sim.scheduler
        self._manager = get_local_time_manager(self.sim)

        # Internal events used to wake a blocked blocking access.
        self._cell_filled = self.create_event("cell_filled")
        self._cell_freed = self.create_event("cell_freed")
        # External events of the non-blocking interface (delayed notifications).
        self._not_empty_event = self.create_event("not_empty")
        self._not_full_event = self.create_event("not_full")

        self._blocked_readers = 0
        self._blocked_writers = 0
        self._last_write_fs = NEVER
        self._last_read_fs = NEVER

        #: Number of items written / read since construction.
        self.total_written = 0
        self.total_read = 0
        #: Number of times a blocking access had to suspend the caller
        #: (i.e. context switches caused by this FIFO).
        self.blocking_waits = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _caller_date_fs(self) -> int:
        # Inlined LocalTimeManager.local_fs_fast: the local date is cached
        # on the process object, so the caller's date is one attribute read.
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            return now_fs
        local_fs = process.local_fs
        return local_fs if local_fs > now_fs else now_fs

    def _notify_external(self, event: Event, date_fs: int, forced: bool = False) -> None:
        """Schedule a delayed notification of ``event`` at ``date_fs``.

        The notification fires at the real (hardware) date of the FIFO state
        change, which may be in the future of the current global date when
        the access was performed by a decoupled process.

        As an optimisation over the paper's rules, data-path notifications
        (from the write/read methods) are skipped when no process observes
        the event.  Notifications triggered by an explicit state query
        (``is_empty``, ``is_full``, ``packet_available``, a refused
        non-blocking access) pass ``forced=True``: the querying process is
        about to wait on the event (it is not registered yet while its
        method body is still running), so the notification must always be
        scheduled.
        """
        if not forced and not self._always_notify_external and not event.listener_count:
            return
        delay_fs = date_fs - self._scheduler.now_fs
        event.notify_fs(delay_fs if delay_fs > 0 else 0)

    def _ordering_error(self, side: str, date_fs: int) -> None:
        """Raise the Section-III ordering violation error for ``side``."""
        last = self._last_write_fs if side == "write" else self._last_read_fs
        raise TimingError(
            f"Smart FIFO {self.full_name}: {side} accesses with decreasing "
            f"dates ({SimTime.from_femtoseconds(last)} then "
            f"{SimTime.from_femtoseconds(date_fs)}); each side must be "
            f"accessed by a single process or through an arbiter"
        )

    # ------------------------------------------------------------------
    # Monitor interface (Section III-C)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._cells.depth

    def get_size(self):
        """Blocking size query: synchronize the caller, then count the cells
        that are *really* busy at the (now synchronized) caller's date."""
        yield from sync(sim=self.sim)
        return self._cells.real_size_at(self.sim.now_fs)

    def get_free_count(self):
        """Blocking free-slot query (``depth - get_size``)."""
        size = yield from self.get_size()
        return self._cells.depth - size

    def size_at(self, date: SimTime) -> int:
        """Real filling level at an arbitrary date (pure observation)."""
        return self._cells.real_size_at(date.femtoseconds)

    def peek_size(self) -> int:
        """Real filling level at the caller's local date, without syncing.

        Extension over the paper's monitor interface: usable from method
        processes (which cannot synchronize) and from decoupled threads that
        only need an estimate consistent with their own local date.
        """
        return self._cells.real_size_at(self._caller_date_fs())

    @property
    def internal_size(self) -> int:
        """Number of internally busy cells (not the real hardware size)."""
        return self._cells.busy_count

    # ------------------------------------------------------------------
    # Writer-side interface (Section III-A)
    # ------------------------------------------------------------------
    @property
    def not_full_event(self) -> Event:
        return self._not_full_event

    def is_full(self) -> bool:
        """External view of fullness at the caller's local date.

        True iff all cells are internally busy, or the first free cell will
        only be freed in the caller's future (the real FIFO still holds the
        previous item in that cell).  When the answer is True because of a
        future freeing date, the external ``not_full_event`` is (re)armed at
        that date so that the canonical method pattern
        ``if fifo.is_full(): next_trigger(fifo.not_full_event); return``
        cannot miss the wake-up.
        """
        cells = self._cells
        if cells.busy_count == cells.depth:
            return True
        freeing_fs = cells.head_free_freeing_fs()
        if freeing_fs > self._caller_date_fs():
            self._notify_external(self._not_full_event, freeing_fs, forced=True)
            return True
        return False

    def write(self, data: Any):
        """Blocking write (``yield from fifo.write(x)``).

        Algorithm of Section III-A:

        1. while all cells are internally busy, synchronize the writer and
           wait until the reader frees a cell (this is the only case that
           costs context switches);
        2. if the freeing date of the first free cell is in the writer's
           future, raise the writer's local date up to it;
        3. fill the cell, record the insertion date, advance the free index;
        4. wake up a blocked reader, if any, and schedule the external
           ``not_empty`` notification when the FIFO was internally empty.
        """
        if self.sync_on_access:
            yield from sync(sim=self.sim)
        cells = self._cells
        depth = cells.depth
        while cells.busy_count == depth:
            self.blocking_waits += 1
            self._blocked_writers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == depth:
                    yield WaitEvent(self._cell_freed)
            finally:
                self._blocked_writers -= 1
        self._do_write(self._scheduler.current_process, self._manager, data)

    def wait_writable(self):
        """Block (sync + wait) until the FIFO is not *internally* full.

        Mirror of the blocking loop at the head of :meth:`write`, exposed so
        arbiters can wait for a free cell *before* granting the shared port:
        granting first and blocking afterwards would let a later-granted
        process slip its item in at a later date while the earlier-granted
        one is still asleep, breaking the per-side date ordering the arbiter
        exists to enforce.  (The loop is intentionally duplicated rather
        than shared with :meth:`write`: the write path is the hottest
        generator of the whole model and must not pay for an extra
        delegation frame.)
        """
        cells = self._cells
        depth = cells.depth
        while cells.busy_count == depth:
            self.blocking_waits += 1
            self._blocked_writers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == depth:
                    yield WaitEvent(self._cell_freed)
            finally:
                self._blocked_writers -= 1

    def nb_write(self, data: Any) -> bool:
        """Non-blocking write for method processes.

        Returns False without writing when the FIFO is externally full at
        the caller's date (guard with :meth:`is_full`).
        """
        cells = self._cells
        if cells.busy_count == cells.depth:
            return False
        freeing_fs = cells.head_free_freeing_fs()
        scheduler = self._scheduler
        process = scheduler.current_process
        now_fs = scheduler.now_fs
        if process is None:
            local_fs = now_fs
        else:
            local_fs = process.local_fs
            if local_fs < now_fs:
                local_fs = now_fs
        if freeing_fs > local_fs:
            # Externally full until the freeing date: arm the not_full event
            # so a method process retrying on it cannot miss the wake-up.
            self._notify_external(self._not_full_event, freeing_fs, forced=True)
            return False
        self._do_write(process, self._manager, data, local_fs)
        return True

    def _do_write(
        self,
        process: Optional[Process],
        manager: LocalTimeManager,
        data: Any,
        local_fs: int = -1,
    ) -> None:
        """Perform the write at the caller's date.

        ``local_fs`` may carry the caller's already-computed local date
        (guarded callers like :meth:`nb_write`); -1 means "compute it here".
        """
        cells = self._cells
        now_fs = self._scheduler.now_fs
        if local_fs < 0:
            if process is None:
                local_fs = now_fs
            else:
                local_fs = process.local_fs
                if local_fs < now_fs:
                    local_fs = now_fs
        freeing_fs = cells.head_free_freeing_fs()
        if freeing_fs > local_fs:
            if process is not None:
                local_fs = manager.advance_to(process, freeing_fs)
            else:
                local_fs = freeing_fs
        if self._enforce_side_ordering and local_fs < self._last_write_fs:
            self._ordering_error("write", local_fs)
        was_internally_empty = cells.busy_count == 0
        cells.push(data, local_fs)
        self._last_write_fs = local_fs
        self.total_written += 1
        # Wake a reader blocked inside a blocking read.
        if self._blocked_readers:
            self._cell_filled.notify_fs(0)
        # External not_empty notification, case 1 of Section III-B: all the
        # cells were free before this write.  The notification is delayed
        # until the insertion date of the new first busy cell.
        if was_internally_empty:
            self._notify_external(self._not_empty_event, local_fs)
        # Symmetric bookkeeping for not_full: after this push, if the FIFO is
        # not internally full but the next free cell will only be freed in
        # the future, the real FIFO is full until that date.
        if cells.busy_count < cells.depth and (
            self._always_notify_external or self._not_full_event.listener_count
        ):
            next_free_fs = cells.head_free_freeing_fs()
            if next_free_fs > now_fs:
                self._notify_external(self._not_full_event, next_free_fs)

    # ------------------------------------------------------------------
    # Reader-side interface (Section III-A)
    # ------------------------------------------------------------------
    @property
    def not_empty_event(self) -> Event:
        return self._not_empty_event

    def is_empty(self) -> bool:
        """External view of emptiness at the caller's local date.

        True iff all cells are internally free, or the insertion date of the
        first busy cell is in the caller's future.  In the latter case the
        external ``not_empty_event`` is (re)armed at that insertion date.
        """
        cells = self._cells
        if cells.busy_count == 0:
            return True
        insertion_fs = cells.head_busy_insertion_fs()
        if insertion_fs > self._caller_date_fs():
            self._notify_external(self._not_empty_event, insertion_fs, forced=True)
            return True
        return False

    def read(self):
        """Blocking read (``x = yield from fifo.read()``).

        Symmetric to :meth:`write`: wait until a cell is internally busy,
        raise the reader's local date up to the insertion date of the first
        busy cell if needed, free the cell (recording the freeing date),
        notify the write side, and return the data.
        """
        if self.sync_on_access:
            yield from sync(sim=self.sim)
        cells = self._cells
        while cells.busy_count == 0:
            self.blocking_waits += 1
            self._blocked_readers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == 0:
                    yield WaitEvent(self._cell_filled)
            finally:
                self._blocked_readers -= 1
        return self._do_read(self._scheduler.current_process, self._manager)

    def wait_readable(self):
        """Block (sync + wait) until the FIFO is not *internally* empty.

        Mirror of the blocking loop at the head of :meth:`read`; see
        :meth:`wait_writable` for why arbiters need it.
        """
        cells = self._cells
        while cells.busy_count == 0:
            self.blocking_waits += 1
            self._blocked_readers += 1
            try:
                yield from sync(sim=self.sim)
                if cells.busy_count == 0:
                    yield WaitEvent(self._cell_filled)
            finally:
                self._blocked_readers -= 1

    def nb_read(self):
        """Non-blocking read for method processes.

        Raises :class:`FifoError` when the FIFO is externally empty at the
        caller's date (guard with :meth:`is_empty`).
        """
        cells = self._cells
        if cells.busy_count:
            insertion_fs = cells.head_busy_insertion_fs()
            scheduler = self._scheduler
            process = scheduler.current_process
            now_fs = scheduler.now_fs
            if process is None:
                local_fs = now_fs
            else:
                local_fs = process.local_fs
                if local_fs < now_fs:
                    local_fs = now_fs
            if insertion_fs <= local_fs:
                return self._do_read(process, self._manager, local_fs)
            # Arm the not_empty event at the date the item really arrives.
            self._notify_external(self._not_empty_event, insertion_fs, forced=True)
        raise FifoError(
            f"nb_read on externally empty Smart FIFO {self.full_name}"
        )

    def _do_read(
        self,
        process: Optional[Process],
        manager: LocalTimeManager,
        local_fs: int = -1,
    ):
        """Perform the read at the caller's date (see :meth:`_do_write`)."""
        cells = self._cells
        now_fs = self._scheduler.now_fs
        insertion_fs = cells.head_busy_insertion_fs()
        if local_fs < 0:
            if process is None:
                local_fs = now_fs
            else:
                local_fs = process.local_fs
                if local_fs < now_fs:
                    local_fs = now_fs
        if insertion_fs > local_fs:
            if process is not None:
                local_fs = manager.advance_to(process, insertion_fs)
            else:
                local_fs = insertion_fs
        if self._enforce_side_ordering and local_fs < self._last_read_fs:
            self._ordering_error("read", local_fs)
        was_internally_full = cells.busy_count == cells.depth
        data = cells.pop(local_fs)
        self._last_read_fs = local_fs
        self.total_read += 1
        # Wake a writer blocked inside a blocking write.
        if self._blocked_writers:
            self._cell_freed.notify_fs(0)
        # External not_full notification, case 1 (symmetric of Section III-B):
        # all the cells were busy before this read; the real FIFO stops being
        # full at the freeing date.
        if was_internally_full:
            self._notify_external(self._not_full_event, local_fs)
        # External not_empty notification, case 2 of Section III-B: the next
        # busy cell exists but its insertion date is in the future; the real
        # FIFO becomes non-empty (again) only at that date.
        if cells.busy_count and (
            self._always_notify_external or self._not_empty_event.listener_count
        ):
            next_insertion_fs = cells.head_busy_insertion_fs()
            if next_insertion_fs > now_fs:
                self._notify_external(self._not_empty_event, next_insertion_fs)
        return data

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SmartFifo({self.full_name!r}, depth={self.depth}, "
            f"internal_size={self.internal_size})"
        )
