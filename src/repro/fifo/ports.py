"""FIFO ports.

Thin typed ports that let a module declare "I write into some FIFO" /
"I read from some FIFO" without knowing which implementation (regular,
sync-wrapped, smart, packet-aware) will be bound at elaboration.  This is
how the benchmark models of Fig. 5 and the case-study accelerators are
written once and instantiated with every FIFO policy.
"""

from __future__ import annotations

from typing import Any

from ..kernel.module import Module
from ..kernel.port import Port
from .interfaces import (
    FifoMonitorInterface,
    FifoReaderInterface,
    FifoWriterInterface,
)


class FifoWritePort(Port):
    """Port bound to the write side of a FIFO."""

    def __init__(self, owner: Module, name: str, optional: bool = False):
        super().__init__(owner, name, FifoWriterInterface, optional=optional)

    def _on_bound(self, interface) -> None:
        # Shadow the delegating methods with the channel's own bound methods
        # so a port access costs no extra call on the word-transfer hot path.
        self.write = interface.write
        self.nb_write = interface.nb_write
        self.is_full = interface.is_full

    def write(self, data: Any):
        """Blocking write through the bound FIFO (generator)."""
        return self.get().write(data)

    def nb_write(self, data: Any) -> bool:
        return self.get().nb_write(data)

    def is_full(self) -> bool:
        return self.get().is_full()

    @property
    def not_full_event(self):
        return self.get().not_full_event


class FifoReadPort(Port):
    """Port bound to the read side of a FIFO."""

    def __init__(self, owner: Module, name: str, optional: bool = False):
        super().__init__(owner, name, FifoReaderInterface, optional=optional)

    def _on_bound(self, interface) -> None:
        # See FifoWritePort._on_bound.
        self.read = interface.read
        self.nb_read = interface.nb_read
        self.is_empty = interface.is_empty

    def read(self):
        """Blocking read through the bound FIFO (generator)."""
        return self.get().read()

    def nb_read(self):
        return self.get().nb_read()

    def is_empty(self) -> bool:
        return self.get().is_empty()

    @property
    def not_empty_event(self):
        return self.get().not_empty_event


class FifoMonitorPort(Port):
    """Port bound to the monitor side of a FIFO."""

    def __init__(self, owner: Module, name: str, optional: bool = False):
        super().__init__(owner, name, FifoMonitorInterface, optional=optional)

    def get_size(self):
        """Blocking size query through the bound FIFO (generator)."""
        return self.get().get_size()

    @property
    def depth(self) -> int:
        return self.get().depth
