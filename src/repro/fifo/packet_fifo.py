"""Packet-aware Smart FIFO.

The case study of the paper (Section IV-C) connects hardware accelerators
to the stream NoC through *network interfaces* that packetize the data
streams.  The paper notes that the Smart FIFO between an accelerator and a
network interface "had to be slightly extended to manage efficiently the
packetization".

:class:`PacketSmartFifo` is that extension: on top of the word-level Smart
FIFO interface it offers packet-level accesses that move a whole burst of
``packet_size`` words in one call while keeping the per-word timestamps
exact:

* :meth:`write_packet` writes all the words of a packet, the caller's local
  date only being adjusted by the FIFO back-pressure (as with repeated
  :meth:`~repro.fifo.smart_fifo.SmartFifo.write` calls, but without
  re-entering the blocking machinery per word when room is available);
* :meth:`read_packet` returns ``packet_size`` words, raising the reader's
  local date to the insertion date of the *last* word of the packet, which
  is when the real network interface could forward the complete packet;
* :meth:`packet_available` / :meth:`nb_read_packet` give method processes
  (the network interfaces are ``SC_METHOD`` based) a packet-level
  non-blocking view.
"""

from __future__ import annotations

from typing import Any, List, Union

from ..kernel.errors import FifoError
from ..kernel.module import Module
from ..kernel.simulator import Simulator
from .smart_fifo import SmartFifo


class PacketSmartFifo(SmartFifo):
    """A Smart FIFO with packet-granularity helper accesses."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        depth: int = 16,
        packet_size: int = 4,
        **kwargs,
    ):
        super().__init__(parent, name, depth, **kwargs)
        if packet_size <= 0:
            raise FifoError(f"packet size must be positive, got {packet_size}")
        if packet_size > depth:
            raise FifoError(
                f"packet size {packet_size} cannot exceed the FIFO depth {depth}"
            )
        self.packet_size = packet_size
        #: Number of complete packets transferred through the packet API.
        self.packets_written = 0
        self.packets_read = 0

    # ------------------------------------------------------------------
    # Packet-level blocking interface (decoupled threads)
    # ------------------------------------------------------------------
    def write_packet(self, words: List[Any]):
        """Blocking write of a full packet (word by word, exact timestamps).

        Words that fit without blocking bypass the word-level generator
        machinery ("without re-entering the blocking machinery per word
        when room is available"); only a word hitting an internally full
        FIFO goes through the suspending :meth:`write` path.
        """
        if len(words) != self.packet_size:
            raise FifoError(
                f"write_packet expects {self.packet_size} words, got {len(words)}"
            )
        cells = self._cells
        depth = cells.depth
        for word in words:
            if self.sync_on_access or cells.busy_count == depth:
                yield from self.write(word)
            else:
                self._do_write(self._scheduler.current_process, self._manager, word)
        self.packets_written += 1

    def read_packet(self):
        """Blocking read of a full packet.

        The reader's local date after the call is the insertion date of the
        last word (or its own local date if later), i.e. the date at which
        the complete packet is available for forwarding.
        """
        cells = self._cells
        words = []
        for _ in range(self.packet_size):
            if self.sync_on_access or cells.busy_count == 0:
                word = yield from self.read()
            else:
                word = self._do_read(self._scheduler.current_process, self._manager)
            words.append(word)
        self.packets_read += 1
        return words

    # ------------------------------------------------------------------
    # Packet-level non-blocking interface (method processes)
    # ------------------------------------------------------------------
    def packet_available(self) -> bool:
        """True when a full packet is externally available at the caller's date."""
        date_fs = self._caller_date_fs()
        available = self._cells.count_busy_inserted_by(date_fs)
        if available >= self.packet_size:
            return True
        # Re-arm the not_empty event at the date the packet completes, if the
        # missing words are already internally present.
        pending_dates = self._cells.busy_insertions_after(date_fs)
        missing = self.packet_size - available
        if len(pending_dates) >= missing:
            self._notify_external(
                self._not_empty_event, pending_dates[missing - 1], forced=True
            )
        return False

    def nb_read_packet(self) -> List[Any]:
        """Non-blocking read of a full packet (guard with :meth:`packet_available`)."""
        if not self.packet_available():
            raise FifoError(
                f"nb_read_packet on {self.full_name}: no complete packet available"
            )
        if self._enforce_side_ordering:
            # The guard proved packet_size words are externally available at
            # the caller's date, and side ordering makes insertion dates
            # monotone along the ring, so the head cells can be drained
            # directly.  Without side ordering a head cell may still carry a
            # future date, so the per-word guarded path below applies.
            process = self._scheduler.current_process
            manager = self._manager
            words = [
                self._do_read(process, manager) for _ in range(self.packet_size)
            ]
        else:
            words = [self.nb_read() for _ in range(self.packet_size)]
        self.packets_read += 1
        return words

    def space_for_packet(self) -> bool:
        """True when a full packet can be written without blocking."""
        date_fs = self._caller_date_fs()
        free = self._cells.count_free_freed_by(date_fs)
        if free >= self.packet_size:
            return True
        # Arm the not_full event at the date enough cells will have been
        # freed, when those frees were already performed internally.
        pending_dates = self._cells.free_freeings_after(date_fs)
        missing = self.packet_size - free
        if len(pending_dates) >= missing:
            self._notify_external(
                self._not_full_event, pending_dates[missing - 1], forced=True
            )
        return False

    # ------------------------------------------------------------------
    # Packetization extension (Section IV-C)
    # ------------------------------------------------------------------
    def _do_write(self, process, manager, data, local_fs: int = -1) -> None:
        """Write one word and notify packet-level listeners.

        The word-level Smart FIFO only notifies ``not_empty`` on the
        empty-to-non-empty transition; a packet-level consumer however needs
        to be woken when the word *completing* a packet arrives, which can
        happen while the FIFO is already non-empty.  This is the "slight
        extension to manage efficiently the packetization" mentioned by the
        paper: every insertion schedules a (delayed) notification; pending
        notifications collapse to the earliest date and
        :meth:`packet_available` re-arms later dates as needed.
        """
        super()._do_write(process, manager, data, local_fs)
        self._notify_external(self._not_empty_event, self._last_write_fs)

    def nb_write_packet(self, words: List[Any]) -> bool:
        """Non-blocking write of a full packet; False when not enough room."""
        if len(words) != self.packet_size:
            raise FifoError(
                f"nb_write_packet expects {self.packet_size} words, got {len(words)}"
            )
        if not self.space_for_packet():
            return False
        for word in words:
            if not self.nb_write(word):  # pragma: no cover - guarded above
                raise FifoError(f"nb_write_packet lost room on {self.full_name}")
        self.packets_written += 1
        return True
