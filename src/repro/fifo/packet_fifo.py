"""Packet-aware Smart FIFO.

The case study of the paper (Section IV-C) connects hardware accelerators
to the stream NoC through *network interfaces* that packetize the data
streams.  The paper notes that the Smart FIFO between an accelerator and a
network interface "had to be slightly extended to manage efficiently the
packetization".

:class:`PacketSmartFifo` is that extension: on top of the word-level Smart
FIFO interface it offers packet-level accesses that move a whole burst of
``packet_size`` words in one call while keeping the per-word timestamps
exact:

* :meth:`write_packet` writes all the words of a packet, the caller's local
  date only being adjusted by the FIFO back-pressure (as with repeated
  :meth:`~repro.fifo.smart_fifo.SmartFifo.write` calls, but without
  re-entering the blocking machinery per word when room is available);
* :meth:`read_packet` returns ``packet_size`` words, raising the reader's
  local date to the insertion date of the *last* word of the packet, which
  is when the real network interface could forward the complete packet;
* :meth:`packet_available` / :meth:`nb_read_packet` give method processes
  (the network interfaces are ``SC_METHOD`` based) a packet-level
  non-blocking view.
"""

from __future__ import annotations

from typing import Any, List, Union

from ..kernel.errors import FifoError
from ..kernel.module import Module
from ..kernel.simulator import Simulator
from ..kernel.tracing import (
    BR_NB_READ,
    BR_PKT_AVAILABLE,
    BR_PKT_SPACE,
    DEP_SMART_READ,
    DEP_SMART_WRITE,
)
from .smart_fifo import SmartFifo


class PacketSmartFifo(SmartFifo):
    """A Smart FIFO with packet-granularity helper accesses."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        depth: int = 16,
        packet_size: int = 4,
        burst: bool = False,
        **kwargs,
    ):
        super().__init__(parent, name, depth, **kwargs)
        if packet_size <= 0:
            raise FifoError(f"packet size must be positive, got {packet_size}")
        if packet_size > depth:
            raise FifoError(
                f"packet size {packet_size} cannot exceed the FIFO depth {depth}"
            )
        self.packet_size = packet_size
        if self._dep is not None:
            # The packet-level probes are verified against the replayed cell
            # ring, which needs the packet size alongside the depth.
            self._dep.annotate_fifo(self._dep_idx, packet_size=packet_size)
        #: When True the packet-level accesses delegate to the burst (span)
        #: APIs instead of per-word loops — bit-exact dates, fewer Python
        #: dispatches per packet.
        self.burst_packets = burst
        #: Number of complete packets transferred through the packet API.
        self.packets_written = 0
        self.packets_read = 0

    # ------------------------------------------------------------------
    # Packet-level blocking interface (decoupled threads)
    # ------------------------------------------------------------------
    def write_packet(self, words: List[Any]):
        """Blocking write of a full packet (word by word, exact timestamps).

        Words that fit without blocking bypass the word-level generator
        machinery ("without re-entering the blocking machinery per word
        when room is available"); only a word hitting an internally full
        FIFO goes through the suspending :meth:`write` path.
        """
        if len(words) != self.packet_size:
            raise FifoError(
                f"write_packet expects {self.packet_size} words, got {len(words)}"
            )
        if self.burst_packets:
            yield from self.write_burst(words)
            self.packets_written += 1
            return
        cells = self._cells
        depth = cells.depth
        for word in words:
            if self.sync_on_access or cells.busy_count == depth:
                yield from self.write(word)
            else:
                self._do_write(self._scheduler.current_process, self._manager, word)
                if self._dep is not None:
                    self._dep.word(
                        DEP_SMART_WRITE, self._dep_idx, self._last_write_fs
                    )
        # Count the packet only once the last word has landed: an exception
        # (or an abandoned generator) mid-packet must not leave the counter
        # claiming a full transfer.
        self.packets_written += 1

    def read_packet(self):
        """Blocking read of a full packet.

        The reader's local date after the call is the insertion date of the
        last word (or its own local date if later), i.e. the date at which
        the complete packet is available for forwarding.
        """
        if self.burst_packets:
            words = yield from self.read_burst(self.packet_size)
            self.packets_read += 1
            return words
        cells = self._cells
        words = []
        for _ in range(self.packet_size):
            if self.sync_on_access or cells.busy_count == 0:
                word = yield from self.read()
            else:
                word = self._do_read(self._scheduler.current_process, self._manager)
                if self._dep is not None:
                    self._dep.word(
                        DEP_SMART_READ, self._dep_idx, self._last_read_fs
                    )
            words.append(word)
        self.packets_read += 1
        return words

    # ------------------------------------------------------------------
    # Packet-level non-blocking interface (method processes)
    # ------------------------------------------------------------------
    def packet_available(self) -> bool:
        """True when a full packet is externally available at the caller's date.

        "Available" means the *head* ``packet_size`` cells (pop order) all
        hold words inserted by the caller's date, so a True guard promises
        that :meth:`nb_read_packet` succeeds — also without side ordering,
        where counting any ``packet_size`` available cells would overlook a
        future-dated head cell and break the guard-then-act pattern.  (With
        side ordering, insertion dates are monotone along the ring and the
        head-first check coincides with the count.)
        """
        date_fs = self._caller_date_fs()
        cells = self._cells
        size = self.packet_size
        if cells.head_busy_inserted_by(size, date_fs):
            if self._dep is not None:
                self._dep.branch(BR_PKT_AVAILABLE, self._dep_idx, 1, date_fs)
            return True
        # Re-arm the not_empty event at the date the head packet completes,
        # if all of its words are already internally present.
        completion_fs = cells.head_busy_completion_fs(size)
        if completion_fs > date_fs:
            self._notify_external(
                self._not_empty_event, completion_fs, forced=True
            )
        if self._dep is not None:
            self._dep.branch(BR_PKT_AVAILABLE, self._dep_idx, 0, date_fs)
        return False

    def nb_read_packet(self) -> List[Any]:
        """Non-blocking read of a full packet (guard with :meth:`packet_available`).

        The read is **atomic**: it either returns all ``packet_size`` words
        or raises without consuming anything (and without touching
        ``packets_read``).  The :meth:`packet_available` guard checks the
        *head* cells specifically, so a True guard can never be followed by
        a torn word-by-word drain — also without side ordering.
        """
        if not self.packet_available():
            raise FifoError(
                f"nb_read_packet on {self.full_name}: no complete packet available"
            )
        if self.burst_packets:
            # The guard promises the head packet_size words are available,
            # so the span drains the full packet in one pop_span (which
            # records the per-word drained branches itself).
            words = self.nb_read_burst(self.packet_size)
        else:
            process = self._scheduler.current_process
            manager = self._manager
            dep = self._dep
            words = []
            for _ in range(self.packet_size):
                words.append(self._do_read(process, manager))
                if dep is not None:
                    dep.branch(
                        BR_NB_READ, self._dep_idx, 1, self._last_read_fs
                    )
        # Count the packet only once the last word is out: a raise above
        # must never leave the counters claiming a transfer.
        self.packets_read += 1
        return words

    def space_for_packet(self) -> bool:
        """True when a full packet can be written without blocking.

        Mirror of :meth:`packet_available`: the *head* ``packet_size`` free
        cells (push order) must all be really freed at the caller's date,
        so a True guard promises that :meth:`nb_write_packet` succeeds.
        """
        date_fs = self._caller_date_fs()
        cells = self._cells
        size = self.packet_size
        if cells.head_free_freed_by(size, date_fs):
            if self._dep is not None:
                self._dep.branch(BR_PKT_SPACE, self._dep_idx, 1, date_fs)
            return True
        # Arm the not_full event at the date the head room really exists,
        # when those frees were already performed internally.
        ready_fs = cells.head_free_ready_fs(size)
        if ready_fs > date_fs:
            self._notify_external(self._not_full_event, ready_fs, forced=True)
        if self._dep is not None:
            self._dep.branch(BR_PKT_SPACE, self._dep_idx, 0, date_fs)
        return False

    # ------------------------------------------------------------------
    # Packetization extension (Section IV-C)
    # ------------------------------------------------------------------
    def _do_write(self, process, manager, data, local_fs: int = -1) -> None:
        """Write one word and notify packet-level listeners.

        The word-level Smart FIFO only notifies ``not_empty`` on the
        empty-to-non-empty transition; a packet-level consumer however needs
        to be woken when the word *completing* a packet arrives, which can
        happen while the FIFO is already non-empty.  This is the "slight
        extension to manage efficiently the packetization" mentioned by the
        paper: every insertion schedules a (delayed) notification; pending
        notifications collapse to the earliest date and
        :meth:`packet_available` re-arms later dates as needed.
        """
        super()._do_write(process, manager, data, local_fs)
        self._notify_external(self._not_empty_event, self._last_write_fs)

    def _notify_after_span_write(self, was_internally_empty: bool,
                                 first_date_fs: int) -> None:
        """Span twin of the packetization extension above.

        Word mode schedules one delayed not_empty per insertion; within a
        span the dates are monotone non-decreasing and no delta boundary
        passes, so all of them collapse onto the earliest pending one —
        a single notification at the span's first date is bit-exact.
        """
        self._notify_external(self._not_empty_event, first_date_fs)

    def nb_write_packet(self, words: List[Any]) -> bool:
        """Non-blocking write of a full packet; False when not enough room.

        Symmetric atomicity guarantee of :meth:`nb_read_packet`: either the
        whole packet is written and counted, or nothing is — a length
        mismatch or insufficient room raises/returns before the first word
        lands (the :meth:`space_for_packet` guard checks the *head* free
        cells), so ``packets_written`` can never claim a torn transfer.
        """
        if len(words) != self.packet_size:
            raise FifoError(
                f"nb_write_packet expects {self.packet_size} words, got {len(words)}"
            )
        if not self.space_for_packet():
            return False
        if self.burst_packets:
            # The guard promises head room for the whole packet, so the
            # span lands it in one push_span.
            if self.nb_write_burst(words) != self.packet_size:
                raise FifoError(  # pragma: no cover - guarded above
                    f"nb_write_packet lost room on {self.full_name}"
                )
        else:
            for word in words:
                if not self.nb_write(word):  # pragma: no cover - guarded above
                    raise FifoError(
                        f"nb_write_packet lost room on {self.full_name}"
                    )
        self.packets_written += 1
        return True
