"""The regular (non-decoupled) FIFO.

:class:`RegularFifo` is the equivalent of ``sc_fifo``: a bounded FIFO whose
blocking accesses suspend the calling thread (one context switch per
blocked access) and whose events are notified with a delta delay.  It knows
nothing about local dates: it is meant to be used either

* by non-decoupled threads (the paper's reference executions and the
  ``TDless`` / ``untimed`` models of Fig. 5), or
* by non-decoupled ``SC_METHOD`` code such as the NoC routers of the case
  study (through :meth:`nb_read` / :meth:`nb_write`).

Decoupled threads must not use it directly — they would corrupt the timing
exactly as illustrated by Fig. 3 of the paper.  They should use either
:class:`~repro.fifo.sync_fifo.SyncFifo` (same timing, one context switch
per access) or :class:`~repro.fifo.smart_fifo.SmartFifo` (same timing,
almost no context switch).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Sequence, Union

from ..kernel.errors import FifoError
from ..kernel.module import Module
from ..kernel.process import WaitEvent
from ..kernel.simtime import ZERO_TIME
from ..kernel.simulator import Simulator
from ..kernel.tracing import (
    BR_REG_IS_EMPTY,
    BR_REG_IS_FULL,
    BR_REG_NB_READ,
    BR_REG_NB_WRITE,
    BR_REG_PEEK,
    BR_REG_SIZE,
    DEP_REG_READ,
    DEP_REG_WRITE,
)
from .interfaces import FifoInterface, _require_plain_burst


class RegularFifo(Module, FifoInterface):
    """A bounded FIFO with ``sc_fifo``-like blocking semantics."""

    def __init__(self, parent: Union[Simulator, Module], name: str, depth: int = 16):
        super().__init__(parent, name)
        if depth <= 0:
            raise FifoError(f"FIFO {name!r}: depth must be positive, got {depth}")
        self._depth = depth
        self._items: Deque[Any] = deque()
        self._data_written_event = self.create_event("data_written")
        self._data_read_event = self.create_event("data_read")
        #: Counters mirrored by the Smart FIFO, used by tests and benchmarks.
        self.total_written = 0
        self.total_read = 0
        # Dependency recording (record-and-replay): picked up from the
        # simulator at construction time, None on the normal hot path.
        recorder = self.sim.dep_recorder
        if recorder is not None:
            self._dep = recorder
            self._dep_idx = recorder.register_fifo(
                self, kind="regular", depth=depth
            )
        else:
            self._dep = None
            self._dep_idx = -1

    # ------------------------------------------------------------------
    # Monitor interface
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._depth

    @property
    def size(self) -> int:
        """Current number of stored items (immediate view)."""
        return len(self._items)

    def num_available(self) -> int:
        return len(self._items)

    def num_free(self) -> int:
        return self._depth - len(self._items)

    def get_size(self):
        """Blocking-style size query (generator for interface uniformity)."""
        yield from ()
        if self._dep is not None:
            self._record_probe(BR_REG_SIZE)
        return len(self._items)

    def _record_probe(self, construct: int) -> None:
        """Record one occupancy probe (record-and-replay).

        The *occupancy seen* is recorded as the outcome — exact-occupancy
        matching is what lets the replay engine order pinned method
        accesses deterministically; the boolean the caller branched on is
        recomputed from it (and from the replayed depth) at verify time.
        """
        self._dep.branch(
            construct, self._dep_idx, len(self._items),
            self.sim.scheduler.now_fs,
        )

    # ------------------------------------------------------------------
    # Writer interface
    # ------------------------------------------------------------------
    def is_full(self) -> bool:
        if self._dep is not None:
            self._record_probe(BR_REG_IS_FULL)
        return len(self._items) >= self._depth

    @property
    def not_full_event(self):
        return self._data_read_event

    def write(self, data: Any):
        """Blocking write: waits (suspends the thread) while the FIFO is full."""
        while len(self._items) >= self._depth:
            yield WaitEvent(self._data_read_event)
        self._push(data)
        if self._dep is not None:
            self._dep.regular(
                DEP_REG_WRITE, self._dep_idx, self.sim.scheduler.now_fs
            )

    def nb_write(self, data: Any) -> bool:
        if self._dep is not None:
            self._record_probe(BR_REG_NB_WRITE)
        if len(self._items) >= self._depth:
            return False
        self._push(data)
        return True

    def write_burst(self, words: Sequence[Any], gap_fs=0, dates_out=None):
        """Native burst write: bulk-extend whole free spans with one delta
        notification per span instead of one per word.

        Bit-exact with the word loop: ``write`` only suspends when full,
        so the word loop fills all free slots without yielding; within one
        evaluation the per-word delta notifications collapse into a single
        pending one, which is exactly what the span emits.  A regular FIFO
        has no local dates, so only plain (gap-free) bursts are accepted.
        """
        _require_plain_burst(gap_fs, dates_out)
        if self._dep is not None:
            self._dep.poison(f"write_burst on recorded FIFO {self.full_name}")
        items = self._items
        index, n = 0, len(words)
        while index < n:
            while len(items) >= self._depth:
                yield WaitEvent(self._data_read_event)
            chunk = min(self._depth - len(items), n - index)
            items.extend(words[index:index + chunk])
            self.total_written += chunk
            self._data_written_event.notify(ZERO_TIME)
            index += chunk

    def nb_write_burst(self, words: Sequence[Any]) -> int:
        """Native non-blocking burst write (one notification per call)."""
        if self._dep is not None:
            self._dep.poison(f"nb_write_burst on recorded FIFO {self.full_name}")
        chunk = min(self._depth - len(self._items), len(words))
        if chunk:
            self._items.extend(words[:chunk] if chunk < len(words) else words)
            self.total_written += chunk
            self._data_written_event.notify(ZERO_TIME)
        return chunk

    def _push(self, data: Any) -> None:
        self._items.append(data)
        self.total_written += 1
        self._data_written_event.notify(ZERO_TIME)

    # ------------------------------------------------------------------
    # Reader interface
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        if self._dep is not None:
            self._record_probe(BR_REG_IS_EMPTY)
        return not self._items

    @property
    def not_empty_event(self):
        return self._data_written_event

    def read(self):
        """Blocking read: waits (suspends the thread) while the FIFO is empty."""
        while not self._items:
            yield WaitEvent(self._data_written_event)
        data = self._pop()
        if self._dep is not None:
            self._dep.regular(
                DEP_REG_READ, self._dep_idx, self.sim.scheduler.now_fs
            )
        return data

    def nb_read(self):
        if self._dep is not None:
            self._record_probe(BR_REG_NB_READ)
        if not self._items:
            raise FifoError(f"nb_read on empty FIFO {self.full_name}")
        return self._pop()

    def peek(self):
        """Return the head item without removing it (raises when empty)."""
        if self._dep is not None:
            self._record_probe(BR_REG_PEEK)
        if not self._items:
            raise FifoError(f"peek on empty FIFO {self.full_name}")
        return self._items[0]

    def read_burst(self, count: int, gap_fs=0, dates_out=None):
        """Native burst read: drain whole available spans with one delta
        notification per span (see :meth:`write_burst` for why that is
        bit-exact with the word loop)."""
        _require_plain_burst(gap_fs, dates_out)
        if self._dep is not None:
            self._dep.poison(f"read_burst on recorded FIFO {self.full_name}")
        items = self._items
        words: List[Any] = []
        while len(words) < count:
            while not items:
                yield WaitEvent(self._data_written_event)
            chunk = min(len(items), count - len(words))
            for _ in range(chunk):
                words.append(items.popleft())
            self.total_read += chunk
            self._data_read_event.notify(ZERO_TIME)
        return words

    def nb_read_burst(self, count: int) -> List[Any]:
        """Native non-blocking burst read (one notification per call)."""
        if self._dep is not None:
            self._dep.poison(f"nb_read_burst on recorded FIFO {self.full_name}")
        items = self._items
        chunk = min(len(items), count)
        if chunk <= 0:
            return []
        words = [items.popleft() for _ in range(chunk)]
        self.total_read += chunk
        self._data_read_event.notify(ZERO_TIME)
        return words

    def _pop(self) -> Any:
        data = self._items.popleft()
        self.total_read += 1
        self._data_read_event.notify(ZERO_TIME)
        return data

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegularFifo({self.full_name!r}, depth={self._depth}, "
            f"size={len(self._items)})"
        )
