"""Timestamped cell ring of the Smart FIFO.

Section III-A of the paper: *"Internally, the Smart FIFO contains as many
cells as the hardware FIFO it models.  Each cell is either free or busy,
and in addition to the data, we store both the last data insertion date and
the last freeing date for each cell.  One index points to the first free
cell and another to the first busy cell."*

:class:`CellRing` implements exactly that structure plus the interpretation
rules of the monitor interface (Section III-C), which need both dates to
decide whether a cell is *really* busy at a given observation date.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..kernel.errors import FifoError

#: Sentinel date meaning "never happened" (before any simulated date).
NEVER = -1


@dataclass
class Cell:
    """One hardware FIFO slot with its timestamp history."""

    data: Any = None
    busy: bool = False
    #: Local date of the last data insertion into this cell (NEVER if none).
    insertion_fs: int = NEVER
    #: Local date of the last freeing (read) of this cell (NEVER if none).
    freeing_fs: int = NEVER

    def really_busy_at(self, date_fs: int) -> bool:
        """Is this cell occupied in the *real* FIFO at ``date_fs``?

        Interpretation rules of Section III-C:

        * an internally **busy** cell is really busy if the insertion date is
          in the past, or if the previous freeing date is in the future
          (internally the cell has been freed and filled again since the
          observation date, so at the observation date it still held the
          previous item);
        * an internally **free** cell is really busy if the freeing date is
          in the future and the previous insertion date is in the past (the
          item it held at the observation date had not yet left).
        """
        if self.busy:
            return self.insertion_fs <= date_fs or self.freeing_fs > date_fs
        return self.freeing_fs > date_fs and self.insertion_fs <= date_fs


class CellRing:
    """The bounded ring of timestamped cells."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise FifoError(f"Smart FIFO depth must be positive, got {depth}")
        self._cells: List[Cell] = [Cell() for _ in range(depth)]
        self._depth = depth
        self._first_free = 0
        self._first_busy = 0
        self._busy_count = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._depth

    @property
    def busy_count(self) -> int:
        """Number of internally busy cells (not the real FIFO size)."""
        return self._busy_count

    @property
    def internally_full(self) -> bool:
        return self._busy_count == self._depth

    @property
    def internally_empty(self) -> bool:
        return self._busy_count == 0

    def first_free_cell(self) -> Optional[Cell]:
        """The cell the next write will fill, or None when internally full."""
        if self.internally_full:
            return None
        return self._cells[self._first_free]

    def first_busy_cell(self) -> Optional[Cell]:
        """The cell the next read will empty, or None when internally empty."""
        if self.internally_empty:
            return None
        return self._cells[self._first_busy]

    def second_busy_cell(self) -> Optional[Cell]:
        """The busy cell that will become the head after one pop."""
        if self._busy_count < 2:
            return None
        return self._cells[(self._first_busy + 1) % self._depth]

    def cells(self):
        """Iterate over all cells (monitor interface)."""
        return iter(self._cells)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def push(self, data: Any, insertion_fs: int, cell: Optional[Cell] = None) -> Cell:
        """Fill the first free cell at ``insertion_fs``; return that cell.

        Callers that already fetched the first free cell (to inspect its
        freeing date) can pass it to avoid a second lookup.
        """
        if cell is None:
            cell = self.first_free_cell()
            if cell is None:
                raise FifoError("push on an internally full Smart FIFO")
        cell.data = data
        cell.busy = True
        cell.insertion_fs = insertion_fs
        self._first_free = (self._first_free + 1) % self._depth
        self._busy_count += 1
        return cell

    def pop(self, freeing_fs: int, cell: Optional[Cell] = None) -> Any:
        """Free the first busy cell at ``freeing_fs``; return its data.

        As for :meth:`push`, the already-fetched head cell may be passed in.
        """
        if cell is None:
            cell = self.first_busy_cell()
            if cell is None:
                raise FifoError("pop on an internally empty Smart FIFO")
        data = cell.data
        cell.data = None
        cell.busy = False
        cell.freeing_fs = freeing_fs
        self._first_busy = (self._first_busy + 1) % self._depth
        self._busy_count -= 1
        return data

    # ------------------------------------------------------------------
    # Monitor interpretation
    # ------------------------------------------------------------------
    def real_size_at(self, date_fs: int) -> int:
        """Number of items the modelled hardware FIFO holds at ``date_fs``."""
        return sum(1 for cell in self._cells if cell.really_busy_at(date_fs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellRing(depth={self._depth}, busy={self._busy_count}, "
            f"head={self._first_busy}, tail={self._first_free})"
        )
