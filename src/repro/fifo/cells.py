"""Timestamped cell ring of the Smart FIFO.

Section III-A of the paper: *"Internally, the Smart FIFO contains as many
cells as the hardware FIFO it models.  Each cell is either free or busy,
and in addition to the data, we store both the last data insertion date and
the last freeing date for each cell.  One index points to the first free
cell and another to the first busy cell."*

:class:`CellRing` implements exactly that structure plus the interpretation
rules of the monitor interface (Section III-C), which need both dates to
decide whether a cell is *really* busy at a given observation date.

Storage layout (hot-path note): the per-cell timestamps live in two
preallocated ``array('q')`` buffers and the busy flags in a ``bytearray``,
indexed by the cached head/tail positions — no per-cell Python object is
touched on the push/pop path.  The object-style views (:meth:`cells`,
:meth:`first_busy_cell`, ...) materialise lightweight :class:`CellView`
proxies over that storage and are meant for the (low-rate) monitor
interface and the tests; :class:`Cell` remains available as a standalone
value type for direct experimentation with the Section III-C rules.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Optional

from ..kernel.errors import FifoError

#: Sentinel date meaning "never happened" (before any simulated date).
NEVER = -1


def _really_busy(busy: int, insertion_fs: int, freeing_fs: int, date_fs: int) -> bool:
    """The occupancy-interpretation rules of Section III-C.

    * an internally **busy** cell is really busy if the insertion date is
      in the past, or if the previous freeing date is in the future
      (internally the cell has been freed and filled again since the
      observation date, so at the observation date it still held the
      previous item);
    * an internally **free** cell is really busy if the freeing date is
      in the future and the previous insertion date is in the past (the
      item it held at the observation date had not yet left).
    """
    if busy:
        return insertion_fs <= date_fs or freeing_fs > date_fs
    return freeing_fs > date_fs and insertion_fs <= date_fs


class Cell:
    """One hardware FIFO slot with its timestamp history (value type)."""

    __slots__ = ("data", "busy", "insertion_fs", "freeing_fs")

    def __init__(
        self,
        data: Any = None,
        busy: bool = False,
        insertion_fs: int = NEVER,
        freeing_fs: int = NEVER,
    ):
        self.data = data
        self.busy = busy
        #: Local date of the last data insertion into this cell (NEVER if none).
        self.insertion_fs = insertion_fs
        #: Local date of the last freeing (read) of this cell (NEVER if none).
        self.freeing_fs = freeing_fs

    def really_busy_at(self, date_fs: int) -> bool:
        """Is this cell occupied in the *real* FIFO at ``date_fs``?"""
        return _really_busy(self.busy, self.insertion_fs, self.freeing_fs, date_fs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cell(data={self.data!r}, busy={self.busy}, "
            f"insertion_fs={self.insertion_fs}, freeing_fs={self.freeing_fs})"
        )


class CellView:
    """Live, read-only view of one slot of a :class:`CellRing`.

    Unlike :class:`Cell` this proxies the ring's flat storage, so it keeps
    reflecting later word-level pushes/pops of the same slot.  Span
    transfers (:meth:`CellRing.push_span` / :meth:`CellRing.pop_span`)
    rewrite many slots in one bulk copy; a view held across one would
    silently show recycled-cell data, so every accessor raises
    :class:`FifoError` once the ring's mutation counter has moved past the
    value captured at view construction.
    """

    __slots__ = ("_ring", "_index", "_mark")

    def __init__(self, ring: "CellRing", index: int):
        self._ring = ring
        self._index = index
        self._mark = ring.mutations

    def _check_fresh(self) -> None:
        if self._ring.mutations != self._mark:
            raise FifoError(
                f"stale CellView of slot #{self._index}: the ring performed "
                f"{self._ring.mutations - self._mark} span transfer(s) since "
                "this view was taken — re-fetch the view instead of holding "
                "it across push_span/pop_span"
            )

    @property
    def data(self) -> Any:
        self._check_fresh()
        return self._ring._data[self._index]

    @property
    def busy(self) -> bool:
        self._check_fresh()
        return bool(self._ring._busy[self._index])

    @property
    def insertion_fs(self) -> int:
        self._check_fresh()
        return self._ring._insertion[self._index]

    @property
    def freeing_fs(self) -> int:
        self._check_fresh()
        return self._ring._freeing[self._index]

    def really_busy_at(self, date_fs: int) -> bool:
        self._check_fresh()
        ring, index = self._ring, self._index
        return _really_busy(
            ring._busy[index],
            ring._insertion[index],
            ring._freeing[index],
            date_fs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellView(#{self._index}, data={self.data!r}, busy={self.busy}, "
            f"insertion_fs={self.insertion_fs}, freeing_fs={self.freeing_fs})"
        )


class CellRing:
    """The bounded ring of timestamped cells (flat-buffer storage)."""

    __slots__ = (
        "depth",
        "busy_count",
        "mutations",
        "span_words",
        "_data",
        "_busy",
        "_insertion",
        "_freeing",
        "_first_free",
        "_first_busy",
    )

    def __init__(self, depth: int):
        if depth <= 0:
            raise FifoError(f"Smart FIFO depth must be positive, got {depth}")
        #: Number of cells (immutable after construction).
        self.depth = depth
        #: Number of internally busy cells (not the real FIFO size).
        self.busy_count = 0
        #: Monotonic counter bumped by every span transfer; CellViews use it
        #: to detect that the slots under them were bulk-rewritten.
        self.mutations = 0
        #: Words moved by span transfers (push_span + pop_span) — the
        #: numerator of the span-vs-word hit rate on the telemetry
        #: sideband (``total_written + total_read`` is the denominator).
        self.span_words = 0
        self._data: List[Any] = [None] * depth
        self._busy = bytearray(depth)
        self._insertion = array("q", [NEVER]) * depth
        self._freeing = array("q", [NEVER]) * depth
        self._first_free = 0
        self._first_busy = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def internally_full(self) -> bool:
        return self.busy_count == self.depth

    @property
    def internally_empty(self) -> bool:
        return self.busy_count == 0

    def head_free_freeing_fs(self) -> int:
        """Freeing date of the cell the next push will fill.

        Callers must have checked that the ring is not internally full.
        """
        return self._freeing[self._first_free]

    def head_busy_insertion_fs(self) -> int:
        """Insertion date of the cell the next pop will free.

        Callers must have checked that the ring is not internally empty.
        """
        return self._insertion[self._first_busy]

    def first_free_cell(self) -> Optional[CellView]:
        """The cell the next write will fill, or None when internally full."""
        if self.busy_count == self.depth:
            return None
        return CellView(self, self._first_free)

    def first_busy_cell(self) -> Optional[CellView]:
        """The cell the next read will empty, or None when internally empty."""
        if self.busy_count == 0:
            return None
        return CellView(self, self._first_busy)

    def second_busy_cell(self) -> Optional[CellView]:
        """The busy cell that will become the head after one pop."""
        if self.busy_count < 2:
            return None
        return CellView(self, (self._first_busy + 1) % self.depth)

    def cells(self) -> Iterator[CellView]:
        """Iterate over all cells (monitor interface)."""
        for index in range(self.depth):
            yield CellView(self, index)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def push(self, data: Any, insertion_fs: int) -> None:
        """Fill the first free cell at ``insertion_fs``."""
        if self.busy_count == self.depth:
            raise FifoError("push on an internally full Smart FIFO")
        index = self._first_free
        self._data[index] = data
        self._busy[index] = 1
        self._insertion[index] = insertion_fs
        self._first_free = (index + 1) % self.depth
        self.busy_count += 1

    def pop(self, freeing_fs: int) -> Any:
        """Free the first busy cell at ``freeing_fs``; return its data."""
        if self.busy_count == 0:
            raise FifoError("pop on an internally empty Smart FIFO")
        index = self._first_busy
        data = self._data[index]
        self._data[index] = None
        self._busy[index] = 0
        self._freeing[index] = freeing_fs
        self._first_busy = (index + 1) % self.depth
        self.busy_count -= 1
        return data

    # ------------------------------------------------------------------
    # Span mutations (burst transfers)
    # ------------------------------------------------------------------
    def push_span(self, items, insertion_dates: array) -> None:
        """Fill the first ``len(items)`` free cells in one bulk copy.

        ``insertion_dates`` must be an ``array('q')`` of the same length as
        ``items``; entry *i* becomes the insertion date of the cell holding
        ``items[i]``.  The caller is responsible for the date recurrence and
        the worst-case-date guard (:meth:`head_free_ready_fs`) — this method
        only moves storage: at most two wraparound slice assignments per
        buffer instead of ``k`` word pushes.
        """
        count = len(items)
        if count == 0:
            return
        if count > self.depth - self.busy_count:
            raise FifoError(
                f"push_span of {count} words overruns the "
                f"{self.depth - self.busy_count} free cells"
            )
        self.mutations += 1
        self.span_words += count
        depth = self.depth
        start = self._first_free
        first = min(count, depth - start)
        end = start + first
        self._data[start:end] = items[:first]
        self._busy[start:end] = b"\x01" * first
        self._insertion[start:end] = insertion_dates[:first]
        rest = count - first
        if rest:
            self._data[0:rest] = items[first:]
            self._busy[0:rest] = b"\x01" * rest
            self._insertion[0:rest] = insertion_dates[first:]
        self._first_free = (start + count) % depth
        self.busy_count += count

    def pop_span(self, count: int, freeing_dates: array) -> List[Any]:
        """Free the first ``count`` busy cells in one bulk copy.

        ``freeing_dates`` must be an ``array('q')`` of length ``count``;
        entry *i* becomes the freeing date of the *i*-th popped cell.
        Returns the popped data in pop order.  Symmetric storage-only twin
        of :meth:`push_span` (guard: :meth:`head_busy_completion_fs`).
        """
        if count == 0:
            return []
        if count > self.busy_count:
            raise FifoError(
                f"pop_span of {count} words overruns the "
                f"{self.busy_count} busy cells"
            )
        self.mutations += 1
        self.span_words += count
        depth = self.depth
        start = self._first_busy
        first = min(count, depth - start)
        end = start + first
        data = self._data[start:end]
        self._data[start:end] = [None] * first
        self._busy[start:end] = b"\x00" * first
        self._freeing[start:end] = freeing_dates[:first]
        rest = count - first
        if rest:
            data.extend(self._data[0:rest])
            self._data[0:rest] = [None] * rest
            self._busy[0:rest] = b"\x00" * rest
            self._freeing[0:rest] = freeing_dates[first:]
        self._first_busy = (start + count) % depth
        self.busy_count -= count
        return data

    def head_busy_insertion_span(self, count: int) -> array:
        """Insertion dates of the first ``count`` busy cells in pop order.

        At most two slice copies; callers must have checked ``count``
        against :attr:`busy_count`.  The returned ``array('q')`` is a
        fresh copy the caller may overwrite in place (the burst read path
        turns it into the per-word freeing dates of the span).
        """
        insertion = self._insertion
        start = self._first_busy
        first = count if count <= self.depth - start else self.depth - start
        dates = insertion[start:start + first]
        if count > first:
            dates.extend(insertion[:count - first])
        return dates

    def head_free_freeing_span(self, count: int) -> array:
        """Freeing dates of the first ``count`` free cells in push order.

        Symmetric twin of :meth:`head_busy_insertion_span` for the burst
        write path (callers must have checked ``count`` against the free
        cell count)."""
        freeing = self._freeing
        start = self._first_free
        first = count if count <= self.depth - start else self.depth - start
        dates = freeing[start:start + first]
        if count > first:
            dates.extend(freeing[:count - first])
        return dates

    def head_free_span(self, limit: int, date_fs: int) -> int:
        """Number of leading free cells (push order, capped at ``limit``)
        really freed by ``date_fs`` — the size of the span a non-blocking
        burst write can move at that date."""
        free = self.depth - self.busy_count
        if limit > free:
            limit = free
        busy = self._busy
        freeing = self._freeing
        index = self._first_free
        count = 0
        while count < limit and not busy[index] and freeing[index] <= date_fs:
            count += 1
            index = (index + 1) % self.depth
        return count

    def head_busy_span(self, limit: int, date_fs: int) -> int:
        """Number of leading busy cells (pop order, capped at ``limit``)
        whose item is really present by ``date_fs`` — the size of the span
        a non-blocking burst read can move at that date."""
        if limit > self.busy_count:
            limit = self.busy_count
        busy = self._busy
        insertion = self._insertion
        index = self._first_busy
        count = 0
        while count < limit and busy[index] and insertion[index] <= date_fs:
            count += 1
            index = (index + 1) % self.depth
        return count

    # ------------------------------------------------------------------
    # Monitor interpretation
    # ------------------------------------------------------------------
    def real_size_at(self, date_fs: int) -> int:
        """Number of items the modelled hardware FIFO holds at ``date_fs``."""
        busy = self._busy
        insertion = self._insertion
        freeing = self._freeing
        count = 0
        for index in range(self.depth):
            if busy[index]:
                if insertion[index] <= date_fs or freeing[index] > date_fs:
                    count += 1
            elif freeing[index] > date_fs and insertion[index] <= date_fs:
                count += 1
        return count

    def count_busy_inserted_by(self, date_fs: int) -> int:
        """Busy cells whose item is already present at ``date_fs``."""
        busy = self._busy
        insertion = self._insertion
        count = 0
        for index in range(self.depth):
            if busy[index] and insertion[index] <= date_fs:
                count += 1
        return count

    def busy_insertions_after(self, date_fs: int) -> List[int]:
        """Sorted insertion dates of busy cells still in the future of
        ``date_fs`` (packetization helper)."""
        busy = self._busy
        insertion = self._insertion
        dates = [
            insertion[index]
            for index in range(self.depth)
            if busy[index] and insertion[index] > date_fs
        ]
        dates.sort()
        return dates

    def count_free_freed_by(self, date_fs: int) -> int:
        """Free cells whose slot is really available at ``date_fs``."""
        busy = self._busy
        freeing = self._freeing
        count = 0
        for index in range(self.depth):
            if not busy[index] and freeing[index] <= date_fs:
                count += 1
        return count

    def free_freeings_after(self, date_fs: int) -> List[int]:
        """Sorted freeing dates of free cells still in the future of
        ``date_fs`` (packetization helper)."""
        busy = self._busy
        freeing = self._freeing
        dates = [
            freeing[index]
            for index in range(self.depth)
            if not busy[index] and freeing[index] > date_fs
        ]
        dates.sort()
        return dates

    def head_busy_inserted_by(self, count: int, date_fs: int) -> bool:
        """True when the first ``count`` busy cells *in pop order* all hold
        items inserted by ``date_fs``.

        This is the atomicity guard of packet-granularity reads: without
        side ordering, :meth:`count_busy_inserted_by` can be satisfied by
        non-head cells while a head cell still carries a future date, and a
        word-by-word drain would raise after consuming part of the packet.
        """
        if count > self.busy_count:
            return False
        busy = self._busy
        insertion = self._insertion
        index = self._first_busy
        for _ in range(count):
            if not busy[index] or insertion[index] > date_fs:
                return False
            index = (index + 1) % self.depth
        return True

    def head_free_freed_by(self, count: int, date_fs: int) -> bool:
        """True when the first ``count`` free cells *in push order* are all
        really available (freed) by ``date_fs`` — the symmetric guard of
        packet-granularity writes."""
        if count > self.depth - self.busy_count:
            return False
        busy = self._busy
        freeing = self._freeing
        index = self._first_free
        for _ in range(count):
            if busy[index] or freeing[index] > date_fs:
                return False
            index = (index + 1) % self.depth
        return True

    def head_busy_completion_fs(self, count: int) -> int:
        """Latest insertion date among the first ``count`` busy cells (pop
        order), or ``NEVER`` when fewer than ``count`` cells are busy — the
        date at which a ``count``-word packet at the head becomes fully
        externally available."""
        if count > self.busy_count:
            return NEVER
        insertion = self._insertion
        index = self._first_busy
        latest = NEVER
        for _ in range(count):
            if insertion[index] > latest:
                latest = insertion[index]
            index = (index + 1) % self.depth
        return latest

    def head_free_ready_fs(self, count: int) -> int:
        """Latest freeing date among the first ``count`` free cells (push
        order), or ``NEVER`` when fewer than ``count`` cells are free — the
        date at which room for a ``count``-word packet at the head becomes
        really available."""
        if count > self.depth - self.busy_count:
            return NEVER
        freeing = self._freeing
        index = self._first_free
        latest = NEVER
        for _ in range(count):
            if freeing[index] > latest:
                latest = freeing[index]
            index = (index + 1) % self.depth
        return latest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellRing(depth={self.depth}, busy={self.busy_count}, "
            f"head={self._first_busy}, tail={self._first_free})"
        )
