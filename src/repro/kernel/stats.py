"""Kernel activity counters.

The paper's performance argument is entirely about the number of *context
switches*: a SystemC context switch (suspending one ``SC_THREAD`` and
resuming another) dominates the cost of a finely annotated loosely-timed
model.  In this reproduction a "context switch" is the suspension/resumption
of a generator-based thread process, which is likewise far more expensive
than a plain function call.

:class:`KernelStats` counts those activations (plus method invocations,
delta cycles and timed phases) so that every benchmark can report a
machine-independent explanation of the wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class KernelStats:
    """Counters accumulated by the scheduler during a simulation run."""

    #: Number of thread resumptions, i.e. context switches in the paper's
    #: terminology.  The initial start of a thread counts as one activation.
    thread_activations: int = 0
    #: Number of method process invocations (run-to-completion callbacks).
    method_invocations: int = 0
    #: Number of evaluation/update/delta cycles executed.
    delta_cycles: int = 0
    #: Number of times the simulated clock advanced to a new date.
    timed_phases: int = 0
    #: Number of event notifications requested (immediate + delta + timed).
    event_notifications: int = 0
    #: Number of processes created (threads + methods).
    processes_created: int = 0
    #: Per-process activation counts, keyed by hierarchical process name.
    per_process_activations: Dict[str, int] = field(default_factory=dict)

    @property
    def context_switches(self) -> int:
        """Alias of :attr:`thread_activations`, matching the paper's wording."""
        return self.thread_activations

    def record_thread_activation(self, name: str) -> None:
        self.thread_activations += 1
        self.per_process_activations[name] = (
            self.per_process_activations.get(name, 0) + 1
        )

    def record_method_invocation(self, name: str) -> None:
        self.method_invocations += 1
        self.per_process_activations[name] = (
            self.per_process_activations.get(name, 0) + 1
        )

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the scalar counters (no per-process map)."""
        # Built directly from the scalar fields: ``asdict`` would deep-copy
        # the whole per-process activation map only to throw it away, which
        # is O(processes) work on what callers treat as a cheap probe.
        return {
            "thread_activations": self.thread_activations,
            "method_invocations": self.method_invocations,
            "delta_cycles": self.delta_cycles,
            "timed_phases": self.timed_phases,
            "event_notifications": self.event_notifications,
            "processes_created": self.processes_created,
            "context_switches": self.thread_activations,
        }

    def top_processes(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` most-activated processes as ``(name, activations)``.

        Sorted by descending activation count, then name (deterministic
        across runs) — the per-process breakdown behind the paper's
        context-switch argument, printed by the case-study CLI.
        """
        return sorted(
            self.per_process_activations.items(),
            key=lambda item: (-item[1], item[0]),
        )[:n]

    def diff(self, earlier: "KernelStats") -> Dict[str, int]:
        """Return scalar counters accumulated since ``earlier``."""
        now = self.snapshot()
        before = earlier.snapshot()
        return {key: now[key] - before.get(key, 0) for key in now}

    def copy(self) -> "KernelStats":
        clone = KernelStats(
            thread_activations=self.thread_activations,
            method_invocations=self.method_invocations,
            delta_cycles=self.delta_cycles,
            timed_phases=self.timed_phases,
            event_notifications=self.event_notifications,
            processes_created=self.processes_created,
        )
        clone.per_process_activations = dict(self.per_process_activations)
        return clone

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelStats(context_switches={self.thread_activations}, "
            f"methods={self.method_invocations}, deltas={self.delta_cycles}, "
            f"timed={self.timed_phases})"
        )
