"""Exception hierarchy for the simulation kernel.

The kernel raises specific exception types so that user code (and the test
suite) can distinguish configuration mistakes (binding, elaboration) from
runtime scheduling problems.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class of every error raised by the :mod:`repro` kernel."""


class ElaborationError(SimulationError):
    """Raised when the module hierarchy is malformed (duplicate names,
    processes registered after the simulation started, ...)."""


class BindingError(SimulationError):
    """Raised when a port is left unbound or bound more than once."""


class ProcessError(SimulationError):
    """Raised when a process misuses the kernel API.

    Typical causes: calling ``wait`` from a method process, yielding an
    object that is not a wait descriptor, or re-entering a terminated
    process.
    """


class SchedulingError(SimulationError):
    """Raised for inconsistent scheduler requests (negative delays,
    notifications on a dead simulator, ...)."""


class TimingError(SimulationError):
    """Raised when temporal decoupling invariants are violated.

    The most common cause is a process whose local time would have to move
    backwards, e.g. two different processes accessing the same side of a
    :class:`~repro.fifo.smart_fifo.SmartFifo` without an arbiter.
    """


class FifoError(SimulationError):
    """Raised on invalid FIFO usage (zero depth, non-blocking read on an
    empty FIFO, ...)."""


class TlmError(SimulationError):
    """Raised on malformed memory-mapped transactions (address errors,
    unbound sockets, overlapping target ranges)."""
