"""The :class:`Simulator` facade.

A :class:`Simulator` owns the scheduler, the kernel statistics, the trace
collector and the top of the module hierarchy.  It is the object user code
interacts with:

.. code-block:: python

    from repro.kernel import Simulator, ns

    sim = Simulator()
    top = MyTopModule(sim, "top")
    sim.run()                    # run until no activity remains
    print(sim.now, sim.stats.context_switches)
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from . import context
from .errors import ElaborationError, ProcessError
from .event import Event, EventList
from .process import (
    MethodProcess,
    ThreadProcess,
    Timeout,
    WaitEvent,
    WaitEventList,
    WaitEventOrTimeout,
)
from .scheduler import Scheduler
from .simtime import SimTime, TimeUnit, as_time
from .stats import KernelStats
from .tracing import ListSink, TraceSink
from ..telemetry import NULL_TELEMETRY


class Simulator:
    """A self-contained simulation context.

    ``trace_sink`` selects where trace records go (see
    :mod:`repro.kernel.tracing`): the default :class:`ListSink` keeps the
    historical materialize-every-record behaviour for tests and debugging;
    campaign-scale runs pass a streaming sink (``DigestSink``/``SpoolSink``)
    or :class:`~repro.kernel.tracing.NullSink` to turn tracing off, in
    which case the emit path collapses to one attribute check.
    """

    def __init__(self, name: str = "sim", trace_sink: Optional[TraceSink] = None):
        self.name = name
        self.stats = KernelStats()
        self.scheduler = Scheduler(self.stats)
        self.trace: TraceSink = ListSink() if trace_sink is None else trace_sink
        #: Optional :class:`~repro.kernel.tracing.DependencyRecorder`; set it
        #: *before* building the model — FIFOs and workload modules cache it
        #: at construction, so the non-recording hot path costs one None check.
        self.dep_recorder = None
        #: Telemetry sideband (:mod:`repro.telemetry`): phase spans and
        #: counter deltas of :meth:`run` when enabled.  Defaults to the
        #: shared :data:`~repro.telemetry.NULL_TELEMETRY`, gated by one
        #: ``enabled`` attribute check — same discipline as ``trace``.
        self.telemetry = NULL_TELEMETRY
        self._names = set()
        self._children = []
        self._elaborated = False
        context.set_current_simulator(self)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """The global simulated date (``sc_time_stamp``)."""
        return self.scheduler.now

    @property
    def now_fs(self) -> int:
        return self.scheduler.now_fs

    # ------------------------------------------------------------------
    # Hierarchy bookkeeping
    # ------------------------------------------------------------------
    def register_name(self, full_name: str) -> None:
        if full_name in self._names:
            raise ElaborationError(f"duplicate module or process name: {full_name}")
        self._names.add(full_name)

    def add_child(self, module) -> None:
        self._children.append(module)

    @property
    def children(self):
        return tuple(self._children)

    def walk_modules(self):
        """Yield every module of the hierarchy, depth-first."""
        stack = list(self._children)
        while stack:
            module = stack.pop()
            yield module
            stack.extend(module.children)

    # ------------------------------------------------------------------
    # Process creation (for code not living inside a Module)
    # ------------------------------------------------------------------
    def create_thread(self, func: Callable, name: Optional[str] = None) -> ThreadProcess:
        """Register ``func`` (a generator function) as a thread process."""
        proc_name = name or getattr(func, "__name__", "thread")
        self.register_name(proc_name)
        process = ThreadProcess(proc_name, func, self)
        self.scheduler.register_thread(process)
        return process

    def create_method(
        self,
        func: Callable,
        name: Optional[str] = None,
        sensitivity: Optional[Iterable[Event]] = None,
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register ``func`` as a run-to-completion method process."""
        proc_name = name or getattr(func, "__name__", "method")
        self.register_name(proc_name)
        process = MethodProcess(
            proc_name, func, self, sensitivity=sensitivity, dont_initialize=dont_initialize
        )
        self.scheduler.register_method(process)
        return process

    def create_event(self, name: str = "event") -> Event:
        return Event(name, sim=self)

    # ------------------------------------------------------------------
    # Wait descriptor helpers (usable from any thread code)
    # ------------------------------------------------------------------
    def wait(self, duration_or_event, unit: TimeUnit = TimeUnit.NS, timeout=None):
        """Build a wait descriptor to be yielded by a thread process.

        Usage from a thread body::

            yield sim.wait(20, NS)          # wait 20 ns
            yield sim.wait(some_event)      # wait for an event
            yield sim.wait(ev, timeout=ns(5))   # event with timeout
        """
        if isinstance(duration_or_event, Event):
            if self.dep_recorder is not None:
                self.dep_recorder.poison(
                    "explicit event wait (untracked suspension)"
                )
            if timeout is not None:
                return WaitEventOrTimeout(duration_or_event, as_time(timeout))
            return WaitEvent(duration_or_event)
        if isinstance(duration_or_event, EventList):
            if self.dep_recorder is not None:
                self.dep_recorder.poison(
                    "explicit event-list wait (untracked suspension)"
                )
            return WaitEventList(duration_or_event)
        duration = as_time(duration_or_event, unit)
        if self.dep_recorder is not None:
            self.dep_recorder.timed(duration.femtoseconds)
        return Timeout(duration)

    def next_trigger(self, trigger=None, unit: TimeUnit = TimeUnit.NS) -> None:
        """Record a dynamic trigger for the currently running method process."""
        if trigger is None or isinstance(trigger, (Event, EventList)):
            self.scheduler.record_next_trigger(trigger)
            return
        self.scheduler.record_next_trigger(as_time(trigger, unit))

    def current_process(self):
        return self.scheduler.current_process

    def current_process_name(self) -> str:
        process = self.scheduler.current_process
        return process.name if process is not None else "<elaboration>"

    # ------------------------------------------------------------------
    # Elaboration and execution
    # ------------------------------------------------------------------
    def elaborate(self) -> None:
        """Run end-of-elaboration checks (port binding, module hooks)."""
        if self._elaborated:
            return
        for module in list(self.walk_modules()):
            module.check_bindings()
        for module in list(self.walk_modules()):
            module.end_of_elaboration()
        self._elaborated = True

    def run(self, until=None, unit: TimeUnit = TimeUnit.NS) -> SimTime:
        """Run the simulation (optionally until a given date) and return
        the final simulated date."""
        if self.telemetry.enabled:
            return self._run_instrumented(until, unit)
        self.elaborate()
        context.set_current_simulator(self)
        limit = None if until is None else as_time(until, unit)
        self.scheduler.run(limit)
        return self.now

    def _run_instrumented(self, until, unit: TimeUnit) -> SimTime:
        """The telemetry-on twin of :meth:`run`: phase spans around
        elaboration and scheduling, kernel counter *deltas* for this run
        (stats are cumulative across ``run`` calls; the sideband reports
        per-run activity)."""
        telemetry = self.telemetry
        before = self.stats.snapshot()
        with telemetry.span("kernel.run", sim=self.name):
            with telemetry.span("kernel.elaborate"):
                self.elaborate()
            context.set_current_simulator(self)
            limit = None if until is None else as_time(until, unit)
            # Hand the scheduler the telemetry so its loop variant can
            # split wall time between delta and timed phases.
            self.scheduler.telemetry = telemetry
            with telemetry.span("kernel.schedule"):
                self.scheduler.run(limit)
        after = self.stats.snapshot()
        for key in (
            "context_switches",
            "method_invocations",
            "delta_cycles",
            "timed_phases",
            "event_notifications",
        ):
            delta = after[key] - before[key]
            if delta:
                telemetry.counter(f"kernel.{key}", delta)
        return self.now

    def stop(self) -> None:
        """Stop the simulation at the end of the current delta cycle."""
        self.scheduler.stop()

    @property
    def pending_activity(self) -> bool:
        return self.scheduler.pending_activity

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def log(self, message: str, local_time: Optional[SimTime] = None) -> None:
        """Record a timestamped trace line for the current process.

        The hot emit path: one ``enabled`` check gates everything, so a
        :class:`~repro.kernel.tracing.NullSink` run pays (almost) nothing
        for the trace statements sprinkled through the workloads.
        """
        trace = self.trace
        if not trace.enabled:
            return
        now_fs = self.now_fs
        local = now_fs if local_time is None else local_time.femtoseconds
        trace.emit(self.current_process_name(), local, now_fs, message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator({self.name!r}, now={self.now})"


def simulate(setup: Callable[["Simulator"], None], until=None) -> Simulator:
    """Convenience helper: build a simulator, apply ``setup``, run it.

    Returns the simulator so callers can inspect time, stats and traces.
    """
    sim = Simulator()
    setup(sim)
    sim.run(until)
    return sim
