"""Global simulation context.

SystemC keeps a single global simulation context per OS process
(``sc_get_curr_simcontext``).  We follow the same pragmatic approach: the
most recently created :class:`~repro.kernel.simulator.Simulator` becomes the
*current* simulator, so that free functions such as
``Event()`` (without an explicit simulator), ``current_process()`` or the
temporal-decoupling helpers ``inc()`` / ``sync()`` can find the kernel
without threading a simulator handle through every call site.

Tests create one simulator per test; creating a new simulator simply
replaces the current one.  The context can also be cleared explicitly with
:func:`clear_current_simulator`.
"""

from __future__ import annotations

from typing import Optional

from .errors import SimulationError

_CURRENT_SIMULATOR = None


def set_current_simulator(sim) -> None:
    """Install ``sim`` as the process-wide current simulator."""
    global _CURRENT_SIMULATOR
    _CURRENT_SIMULATOR = sim


def clear_current_simulator() -> None:
    """Forget the current simulator (mostly useful in tests)."""
    global _CURRENT_SIMULATOR
    _CURRENT_SIMULATOR = None


def current_simulator_or_none():
    """Return the current simulator, or ``None`` when there is none."""
    return _CURRENT_SIMULATOR


def current_simulator():
    """Return the current simulator; raise if no simulator exists yet."""
    if _CURRENT_SIMULATOR is None:
        raise SimulationError(
            "no current simulator: create a Simulator before using this API"
        )
    return _CURRENT_SIMULATOR


def current_process():
    """Return the process currently being executed, or ``None``.

    This mirrors ``sc_get_current_process_handle``; the Smart FIFO and the
    temporal-decoupling core use it to associate local dates with processes
    without passing the date explicitly (Section III of the paper).
    """
    sim = current_simulator_or_none()
    if sim is None:
        return None
    return sim.scheduler.current_process


def sc_time_stamp():
    """Return the *global* simulated date, like SystemC ``sc_time_stamp``."""
    return current_simulator().now


Optional  # silence linters about unused typing import when stripped
