"""Primitive channels and the update phase.

SystemC primitive channels (``sc_signal``, ``sc_fifo``...) defer visible
state changes to the *update phase* that follows every evaluation phase:
a write calls ``request_update()`` and the new value becomes observable in
the next delta cycle.  :class:`PrimitiveChannel` provides that protocol.

The regular FIFO of :mod:`repro.fifo.regular_fifo` uses it so that its
behaviour matches ``sc_fifo`` (readers see values written in the previous
delta cycle), which in turn makes the reference executions of the paper's
validation methodology faithful to SystemC.
"""

from __future__ import annotations

from typing import Optional, Union

from .module import Module
from .simulator import Simulator


class PrimitiveChannel(Module):
    """A module with access to the scheduler's update phase."""

    def __init__(self, parent: Union[Simulator, Module], name: str):
        super().__init__(parent, name)
        self._update_requested = False

    def request_update(self) -> None:
        """Ask the kernel to call :meth:`update` in the next update phase."""
        if not self._update_requested:
            self._update_requested = True
            self.sim.scheduler.request_update(self)

    def update(self) -> None:  # pragma: no cover - overridden by subclasses
        """Apply the pending state change (called by the scheduler)."""
        self._update_requested = False

    def _clear_update_request(self) -> None:
        self._update_requested = False
