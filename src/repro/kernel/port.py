"""Ports.

A :class:`Port` is a typed reference from a module to an interface
implemented elsewhere (a channel, another module...).  Binding is checked
at elaboration: an unbound mandatory port raises
:class:`~repro.kernel.errors.BindingError`, an attempt to bind twice as
well.  The FIFO reader/writer ports of :mod:`repro.fifo.ports` and the TLM
sockets of :mod:`repro.tlm.sockets` are built on top of this class.
"""

from __future__ import annotations

from typing import Generic, Optional, Type, TypeVar

from .errors import BindingError
from .module import Module

T = TypeVar("T")


class Port(Generic[T]):
    """A reference to an interface, resolved at binding time."""

    def __init__(
        self,
        owner: Module,
        name: str,
        interface_type: Optional[Type] = None,
        optional: bool = False,
    ):
        self.owner = owner
        self.name = name
        self.full_name = f"{owner.full_name}.{name}"
        self.interface_type = interface_type
        self.optional = optional
        self._bound: Optional[T] = None
        owner.register_port(self)

    def bind(self, interface: T) -> None:
        """Bind the port to ``interface`` (exactly once)."""
        if self._bound is not None:
            raise BindingError(f"port {self.full_name} is already bound")
        if self.interface_type is not None and not isinstance(
            interface, self.interface_type
        ):
            raise BindingError(
                f"port {self.full_name} expects a "
                f"{self.interface_type.__name__}, got {type(interface).__name__}"
            )
        self._bound = interface
        self._on_bound(interface)

    def _on_bound(self, interface: T) -> None:
        """Hook for subclasses to cache direct references to the bound
        interface's methods (removes a ``get()`` hop per access)."""

    # SystemC-style operator() binding.
    __call__ = bind

    @property
    def bound(self) -> bool:
        return self._bound is not None

    def get(self) -> T:
        """Return the bound interface (raises if unbound)."""
        if self._bound is None:
            raise BindingError(f"port {self.full_name} is not bound")
        return self._bound

    def check_bound(self) -> None:
        if self._bound is None and not self.optional:
            raise BindingError(f"port {self.full_name} was left unbound")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "bound" if self.bound else "unbound"
        return f"Port({self.full_name!r}, {state})"
