"""Signals.

:class:`Signal` reproduces ``sc_signal``: a single-value channel whose
writes become visible in the next delta cycle and which notifies a
``value_changed`` event when the stored value actually changes.  The SoC
case study uses signals for interrupt/completion lines between accelerators
and the control core.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar, Union

from .channel import PrimitiveChannel
from .event import Event
from .module import Module
from .simtime import ZERO_TIME
from .simulator import Simulator

T = TypeVar("T")


class Signal(PrimitiveChannel, Generic[T]):
    """A delta-cycle-delayed single value channel."""

    def __init__(
        self,
        parent: Union[Simulator, Module],
        name: str,
        initial: Optional[T] = None,
    ):
        super().__init__(parent, name)
        self._current: Optional[T] = initial
        self._next: Optional[T] = initial
        self.value_changed = self.create_event("value_changed")

    def read(self) -> Optional[T]:
        """Return the current (already updated) value."""
        return self._current

    @property
    def value(self) -> Optional[T]:
        return self._current

    def write(self, value: T) -> None:
        """Schedule ``value`` to become visible in the next delta cycle."""
        self._next = value
        self.request_update()

    def update(self) -> None:
        self._clear_update_request()
        if self._next != self._current:
            self._current = self._next
            self.value_changed.notify(ZERO_TIME)

    def posedge(self) -> Event:
        """Alias of :attr:`value_changed` for boolean-style usage."""
        return self.value_changed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signal({self.full_name!r}, value={self._current!r})"
