"""The discrete-event scheduler.

The scheduler implements the SystemC evaluation model:

1. **evaluation phase** — every runnable process runs (threads are resumed,
   methods are called); immediate notifications may add more processes to
   the same evaluation phase;
2. **update phase** — primitive channels that called ``request_update``
   get their ``update`` method called;
3. **delta-notification phase** — delta notifications trigger their events,
   possibly making processes runnable for a new delta cycle;
4. **timed-notification phase** — when nothing is runnable, simulated time
   advances to the earliest pending timed notification.

Threads suspend by yielding a :class:`~repro.kernel.process.WaitDescriptor`;
the scheduler arms the corresponding wake-up and resumes the generator when
it fires.  Every resumption is counted as a *context switch* in
:class:`~repro.kernel.stats.KernelStats` — the quantity the Smart FIFO is
designed to minimise.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Dict, List, Optional, Tuple

from .errors import ProcessError, SchedulingError
from .event import Event, EventList, _TimedNotification
from .process import (
    MethodProcess,
    Process,
    ThreadProcess,
    Timeout,
    WaitDescriptor,
    WaitEvent,
    WaitEventList,
    WaitEventOrTimeout,
)
from .simtime import SimTime
from .stats import KernelStats

#: Sentinel meaning "the method body did not call next_trigger".
_NO_TRIGGER_REQUEST = object()


class _TimedEntry:
    """Entry of the timed-notification queue."""

    __slots__ = ("kind", "payload", "token")

    EVENT = "event"
    PROCESS = "process"

    def __init__(self, kind: str, payload, token: int = 0):
        self.kind = kind
        self.payload = payload
        self.token = token


class Scheduler:
    """Event queues, process bookkeeping and the simulation loop."""

    def __init__(self, stats: Optional[KernelStats] = None):
        self.stats = stats or KernelStats()
        self.now_fs = 0
        self.current_process: Optional[Process] = None

        self._runnable = deque()
        self._runnable_pids = set()
        self._resume_values: Dict[int, object] = {}

        self._delta_events: List[Event] = []
        self._delta_process_wakes: List[Tuple[ThreadProcess, int]] = []

        self._timed_queue: List[Tuple[int, int, _TimedEntry]] = []
        self._seq = itertools.count()

        self._update_requests: List[object] = []
        self._update_pids = set()

        self._threads: List[ThreadProcess] = []
        self._methods: List[MethodProcess] = []

        self._started = False
        self._stop_requested = False
        self._end_of_simulation = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return SimTime.from_femtoseconds(self.now_fs)

    def register_thread(self, process: ThreadProcess) -> None:
        self._threads.append(process)
        self.stats.processes_created += 1
        if self._started:
            # Dynamically spawned thread: runs in the current/next evaluation
            # phase, like sc_spawn.
            self._make_runnable(process)

    def register_method(self, process: MethodProcess) -> None:
        self._methods.append(process)
        self.stats.processes_created += 1
        process.register_static_sensitivity()
        if self._started and not process.dont_initialize:
            self._make_runnable(process)

    def request_update(self, channel) -> None:
        """Queue ``channel.update()`` for the next update phase."""
        if id(channel) not in self._update_pids:
            self._update_pids.add(id(channel))
            self._update_requests.append(channel)

    # ------------------------------------------------------------------
    # Notification plumbing (called by Event)
    # ------------------------------------------------------------------
    def schedule_delta_notification(self, event: Event) -> None:
        self._delta_events.append(event)

    def schedule_timed_notification(self, record: _TimedNotification) -> None:
        entry = _TimedEntry(_TimedEntry.EVENT, record)
        heapq.heappush(self._timed_queue, (record.time_fs, next(self._seq), entry))

    def trigger_event_now(self, event: Event) -> None:
        """Immediate notification: wake waiters during the current phase."""
        self._trigger_event(event)

    # ------------------------------------------------------------------
    # Runnable management
    # ------------------------------------------------------------------
    def _make_runnable(self, process: Process, value=None) -> None:
        if process.terminated:
            return
        if process.pid in self._runnable_pids:
            return
        self._runnable_pids.add(process.pid)
        self._resume_values[process.pid] = value
        self._runnable.append(process)

    def _wake_thread(self, process: ThreadProcess, wait_id: int, value=None) -> None:
        """Wake a thread if the wake-up matches its current wait."""
        if process.terminated:
            return
        if wait_id != process.wait_id:
            return  # stale wake-up (e.g. the timeout half of a finished wait)
        self._make_runnable(process, value)

    def _trigger_method(self, process: MethodProcess, dynamic: bool, token: int) -> None:
        if process.terminated:
            return
        if dynamic:
            if not process.dynamic_trigger_active or token != process.trigger_id:
                return
            process.dynamic_trigger_active = False
        else:
            if process.dynamic_trigger_active:
                return  # static sensitivity masked by a pending next_trigger
        self._make_runnable(process)

    def _trigger_event(self, event: Event) -> None:
        marker = (self.stats.timed_phases, self.stats.delta_cycles)
        threads, static_methods, dynamic_methods = event.collect_triggered_processes(
            marker
        )
        for process, wait_id in threads:
            if process.pending_all_events:
                if wait_id != process.wait_id:
                    continue
                if event in process.pending_all_events:
                    process.pending_all_events.remove(event)
                if process.pending_all_events:
                    continue
                self._wake_thread(process, wait_id, value=event)
            else:
                self._wake_thread(process, wait_id, value=event)
        for method in static_methods:
            self._trigger_method(method, dynamic=False, token=0)
        for method, trigger_id in dynamic_methods:
            self._trigger_method(method, dynamic=True, token=trigger_id)

    # ------------------------------------------------------------------
    # Wait arming
    # ------------------------------------------------------------------
    def arm_wait(self, process: ThreadProcess, descriptor: WaitDescriptor) -> None:
        process.pending_all_events = []
        wait_id = process.new_wait_id()
        if isinstance(descriptor, Timeout):
            self._arm_timeout(process, wait_id, descriptor.duration)
        elif isinstance(descriptor, WaitEvent):
            descriptor.event.add_waiting_thread(process, wait_id)
        elif isinstance(descriptor, WaitEventOrTimeout):
            descriptor.event.add_waiting_thread(process, wait_id)
            self._arm_timeout(process, wait_id, descriptor.timeout)
        elif isinstance(descriptor, WaitEventList):
            if descriptor.wait_for_all:
                process.pending_all_events = list(descriptor.events)
            for event in descriptor.events:
                event.add_waiting_thread(process, wait_id)
        elif isinstance(descriptor, EventList):
            self.arm_wait(process, WaitEventList(descriptor))
        else:
            raise ProcessError(
                f"thread {process.name} yielded {descriptor!r}, which is not a "
                f"wait descriptor"
            )

    def _arm_timeout(self, process: ThreadProcess, wait_id: int, duration: SimTime) -> None:
        if duration.is_zero:
            self._delta_process_wakes.append((process, wait_id))
            return
        entry = _TimedEntry(_TimedEntry.PROCESS, process, wait_id)
        heapq.heappush(
            self._timed_queue,
            (self.now_fs + duration.femtoseconds, next(self._seq), entry),
        )

    # ------------------------------------------------------------------
    # Process execution
    # ------------------------------------------------------------------
    def _execute(self, process: Process) -> None:
        value = self._resume_values.pop(process.pid, None)
        self.current_process = process
        try:
            if isinstance(process, ThreadProcess):
                self._execute_thread(process, value)
            elif isinstance(process, MethodProcess):
                self._execute_method(process)
            else:  # pragma: no cover - defensive
                raise ProcessError(f"unknown process kind: {process!r}")
        finally:
            self.current_process = None

    def _execute_thread(self, process: ThreadProcess, value) -> None:
        self.stats.record_thread_activation(process.name)
        if not process.started:
            generator = process.start()
            if generator is None:
                return
            value = None
        descriptor = process.resume(value)
        if descriptor is None:
            return
        if isinstance(descriptor, EventList):
            descriptor = WaitEventList(descriptor)
        if isinstance(descriptor, Event):
            descriptor = WaitEvent(descriptor)
        self.arm_wait(process, descriptor)

    def _execute_method(self, process: MethodProcess) -> None:
        self.stats.record_method_invocation(process.name)
        process.requested_trigger = _NO_TRIGGER_REQUEST
        process.func()
        request = process.requested_trigger
        process.requested_trigger = _NO_TRIGGER_REQUEST
        if request is _NO_TRIGGER_REQUEST:
            return
        if request is None:
            # next_trigger() with no argument: restore static sensitivity.
            process.dynamic_trigger_active = False
            return
        token = process.new_trigger_id()
        process.dynamic_trigger_active = True
        if isinstance(request, Event):
            request.add_dynamic_method(process, token)
        elif isinstance(request, SimTime):
            entry = _TimedEntry(_TimedEntry.PROCESS, process, token)
            heapq.heappush(
                self._timed_queue,
                (self.now_fs + request.femtoseconds, next(self._seq), entry),
            )
        elif isinstance(request, EventList):
            for event in request.events:
                event.add_dynamic_method(process, token)
        else:
            raise ProcessError(
                f"next_trigger expects an Event, an EventList or a SimTime, "
                f"got {request!r}"
            )

    def record_next_trigger(self, request) -> None:
        """Store a ``next_trigger`` request made by the running method."""
        process = self.current_process
        if not isinstance(process, MethodProcess):
            raise ProcessError("next_trigger called outside of a method process")
        process.requested_trigger = request

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        self._started = True
        for process in self._threads:
            self._make_runnable(process)
        for process in self._methods:
            if not process.dont_initialize:
                self._make_runnable(process)

    def stop(self) -> None:
        """Request the simulation loop to stop at the end of the current
        delta cycle (like ``sc_stop``)."""
        self._stop_requested = True

    @property
    def pending_activity(self) -> bool:
        return bool(
            self._runnable
            or self._delta_events
            or self._delta_process_wakes
            or self._timed_queue
        )

    def run(self, until: Optional[SimTime] = None) -> None:
        """Run the simulation until ``until`` (inclusive) or until no
        activity remains."""
        until_fs = None if until is None else until.femtoseconds
        if not self._started:
            self._initialize()
        while True:
            if self._stop_requested:
                self._stop_requested = False
                break
            if self._runnable:
                self._run_delta_cycle()
                continue
            # Nothing runnable: process pending delta notifications (they may
            # exist without runnable processes, e.g. a notify(ZERO) from
            # outside the simulation).
            if self._delta_events or self._delta_process_wakes:
                self._delta_notification_phase()
                continue
            if not self._advance_time(until_fs):
                break

    def _run_delta_cycle(self) -> None:
        self.stats.delta_cycles += 1
        # Evaluation phase.
        while self._runnable:
            process = self._runnable.popleft()
            self._runnable_pids.discard(process.pid)
            self._execute(process)
        # Update phase.
        if self._update_requests:
            requests = self._update_requests
            self._update_requests = []
            self._update_pids = set()
            for channel in requests:
                channel.update()
        # Delta-notification phase.
        self._delta_notification_phase()

    def _delta_notification_phase(self) -> None:
        events = self._delta_events
        self._delta_events = []
        wakes = self._delta_process_wakes
        self._delta_process_wakes = []
        for event in events:
            if event.consume_pending_delta():
                self._trigger_event(event)
        for process, wait_id in wakes:
            self._wake_thread(process, wait_id)

    def _advance_time(self, until_fs: Optional[int]) -> bool:
        """Advance to the next timed notification; return False to stop."""
        # Drop cancelled event notifications sitting at the head of the queue.
        while self._timed_queue:
            time_fs, _seq, entry = self._timed_queue[0]
            if entry.kind == _TimedEntry.EVENT and entry.payload.cancelled:
                heapq.heappop(self._timed_queue)
                continue
            break
        if not self._timed_queue:
            if until_fs is not None and until_fs > self.now_fs:
                self.now_fs = until_fs
            return False
        next_time = self._timed_queue[0][0]
        if until_fs is not None and next_time > until_fs:
            self.now_fs = until_fs
            return False
        if next_time < self.now_fs:  # pragma: no cover - defensive
            raise SchedulingError("timed queue went backwards")
        self.now_fs = next_time
        self.stats.timed_phases += 1
        while self._timed_queue and self._timed_queue[0][0] == next_time:
            _time, _seq, entry = heapq.heappop(self._timed_queue)
            if entry.kind == _TimedEntry.EVENT:
                record = entry.payload
                if record.cancelled:
                    continue
                record.event.clear_pending_timed(record)
                self._trigger_event(record.event)
            else:
                process = entry.payload
                if isinstance(process, MethodProcess):
                    self._trigger_method(process, dynamic=True, token=entry.token)
                else:
                    self._wake_thread(process, entry.token)
        return True
