"""The discrete-event scheduler.

The scheduler implements the SystemC evaluation model:

1. **evaluation phase** — every runnable process runs (threads are resumed,
   methods are called); immediate notifications may add more processes to
   the same evaluation phase;
2. **update phase** — primitive channels that called ``request_update``
   get their ``update`` method called;
3. **delta-notification phase** — delta notifications trigger their events,
   possibly making processes runnable for a new delta cycle;
4. **timed-notification phase** — when nothing is runnable, simulated time
   advances to the earliest pending timed notification.

Threads suspend by yielding a :class:`~repro.kernel.process.WaitDescriptor`;
the scheduler arms the corresponding wake-up — via the descriptor's own
``arm`` method, not an ``isinstance`` ladder — and resumes the generator
when it fires.  Every resumption is counted as a *context switch* in
:class:`~repro.kernel.stats.KernelStats` — the quantity the Smart FIFO is
designed to minimise.

Hot-path design notes (this loop dominates every benchmark):

* the timed queue holds slotted, pre-keyed records
  (:class:`~repro.kernel.event._TimedRecord`) directly — no per-push tuple,
  no string kind tags; popped process-wake records are pooled and reused;
* wake values and the runnable flag live on the process objects themselves
  (no ``_resume_values`` / ``_runnable_pids`` dict and set churn);
* update and delta-notification phases are skipped entirely when their
  queues are empty, which is the common case for the single-runnable-process
  deltas that temporally decoupled models spend their life in.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import List, Optional

from .errors import ProcessError, SchedulingError
from .event import Event, EventList, _TimedRecord
from .process import MethodProcess, Process, ThreadProcess
from .simtime import SimTime
from .stats import KernelStats
from ..telemetry import NULL_TELEMETRY

#: Sentinel meaning "the method body did not call next_trigger".
_NO_TRIGGER_REQUEST = object()

#: Upper bound of the recycled process-wake record pool.
_WAKE_POOL_LIMIT = 256


class _TimedWake(_TimedRecord):
    """Timed-queue record waking a process.

    Covers both a thread timeout (``token`` is the wait id) and a method
    ``next_trigger`` with a duration (``token`` is the trigger id).
    """

    __slots__ = ("process", "token", "is_method")

    def __init__(self, process, token: int, is_method: bool):
        self.process = process
        self.token = token
        self.is_method = is_method
        self.time_fs = 0
        self.seq = 0


class Scheduler:
    """Event queues, process bookkeeping and the simulation loop."""

    def __init__(self, stats: Optional[KernelStats] = None):
        self.stats = stats or KernelStats()
        self.now_fs = 0
        self.current_process: Optional[Process] = None
        # (timed-phase, delta-cycle) pair identifying the current evaluation
        # phase; rebuilt when either counter moves instead of allocating a
        # tuple per triggered event.
        self._phase_marker = (self.stats.timed_phases, self.stats.delta_cycles)

        self._runnable = deque()

        self._delta_events: List[Event] = []
        self._delta_process_wakes: List[tuple] = []

        self._timed_queue: List[_TimedRecord] = []
        self._seq = itertools.count()
        self._wake_pool: List[_TimedWake] = []

        self._update_requests: List[object] = []
        self._update_pids = set()

        self._threads: List[ThreadProcess] = []
        self._methods: List[MethodProcess] = []

        self._started = False
        self._stop_requested = False
        self._end_of_simulation = False

        #: Telemetry sideband; :meth:`run` checks ``enabled`` once and
        #: dispatches to the instrumented loop variant, so the disabled
        #: hot loop is byte-identical to the pre-telemetry one.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return SimTime.from_femtoseconds(self.now_fs)

    def register_thread(self, process: ThreadProcess) -> None:
        self._threads.append(process)
        self.stats.processes_created += 1
        if self._started:
            # Dynamically spawned thread: runs in the current/next evaluation
            # phase, like sc_spawn.
            self._make_runnable(process)

    def register_method(self, process: MethodProcess) -> None:
        self._methods.append(process)
        self.stats.processes_created += 1
        process.register_static_sensitivity()
        if self._started and not process.dont_initialize:
            self._make_runnable(process)

    def request_update(self, channel) -> None:
        """Queue ``channel.update()`` for the next update phase."""
        if id(channel) not in self._update_pids:
            self._update_pids.add(id(channel))
            self._update_requests.append(channel)

    # ------------------------------------------------------------------
    # Notification plumbing (called by Event)
    # ------------------------------------------------------------------
    def schedule_delta_notification(self, event: Event) -> None:
        self._delta_events.append(event)

    def schedule_timed_notification(self, record: _TimedRecord) -> None:
        record.seq = next(self._seq)
        heapq.heappush(self._timed_queue, record)

    def trigger_event_now(self, event: Event) -> None:
        """Immediate notification: wake waiters during the current phase."""
        self._trigger_event(event)

    # ------------------------------------------------------------------
    # Runnable management
    # ------------------------------------------------------------------
    def _make_runnable(self, process: Process, value=None) -> None:
        if process.terminated or process.runnable:
            return
        process.runnable = True
        process.resume_value = value
        self._runnable.append(process)

    def _wake_thread(self, process: ThreadProcess, wait_id: int, value=None) -> None:
        """Wake a thread if the wake-up matches its current wait."""
        if process.terminated or process.runnable:
            return
        if wait_id != process.wait_id:
            return  # stale wake-up (e.g. the timeout half of a finished wait)
        process.runnable = True
        process.resume_value = value
        self._runnable.append(process)

    def _trigger_method(self, process: MethodProcess, dynamic: bool, token: int) -> None:
        if process.terminated:
            return
        if dynamic:
            if not process.dynamic_trigger_active or token != process.trigger_id:
                return
            process.dynamic_trigger_active = False
        else:
            if process.dynamic_trigger_active:
                return  # static sensitivity masked by a pending next_trigger
        self._make_runnable(process)

    def _trigger_event(self, event: Event) -> None:
        threads, static_methods, dynamic_methods = event.collect_triggered_processes(
            self._phase_marker
        )
        for process, wait_id in threads:
            pending = process.pending_all_events
            if pending:
                if wait_id != process.wait_id:
                    continue
                if event in pending:
                    pending.remove(event)
                if pending:
                    continue
                self._wake_thread(process, wait_id, value=event)
            else:
                self._wake_thread(process, wait_id, value=event)
        for method in static_methods:
            self._trigger_method(method, dynamic=False, token=0)
        for method, trigger_id in dynamic_methods:
            self._trigger_method(method, dynamic=True, token=trigger_id)

    # ------------------------------------------------------------------
    # Wait arming
    # ------------------------------------------------------------------
    def arm_wait(self, process: ThreadProcess, descriptor) -> None:
        process.pending_all_events = None
        process.wait_id = wait_id = process.wait_id + 1
        try:
            arm = descriptor.arm
        except AttributeError:
            raise ProcessError(
                f"thread {process.name} yielded {descriptor!r}, which is not a "
                f"wait descriptor"
            ) from None
        arm(self, process, wait_id)

    def arm_timeout(self, process: ThreadProcess, wait_id: int, duration: SimTime) -> None:
        """Arm a thread wake-up ``duration`` from now (descriptor callback)."""
        duration_fs = duration.femtoseconds
        if duration_fs == 0:
            self._delta_process_wakes.append((process, wait_id))
            return
        self._push_wake(self.now_fs + duration_fs, process, wait_id, False)

    def _push_wake(self, time_fs: int, process, token: int, is_method: bool) -> None:
        pool = self._wake_pool
        if pool:
            record = pool.pop()
            record.process = process
            record.token = token
            record.is_method = is_method
        else:
            record = _TimedWake(process, token, is_method)
        record.time_fs = time_fs
        record.seq = next(self._seq)
        heapq.heappush(self._timed_queue, record)

    # ------------------------------------------------------------------
    # Process execution
    # ------------------------------------------------------------------
    def _execute_thread(self, process: ThreadProcess, value) -> None:
        stats = self.stats
        stats.thread_activations += 1
        activations = stats.per_process_activations
        name = process.name
        activations[name] = activations.get(name, 0) + 1
        if not process.started:
            generator = process.start()
            if generator is None:
                return
            value = None
        descriptor = process.resume(value)
        if descriptor is None:
            return
        self.arm_wait(process, descriptor)

    def _execute_method(self, process: MethodProcess) -> None:
        stats = self.stats
        stats.method_invocations += 1
        activations = stats.per_process_activations
        name = process.name
        activations[name] = activations.get(name, 0) + 1
        process.requested_trigger = _NO_TRIGGER_REQUEST
        process.func()
        request = process.requested_trigger
        process.requested_trigger = _NO_TRIGGER_REQUEST
        if request is _NO_TRIGGER_REQUEST:
            return
        if request is None:
            # next_trigger() with no argument: restore static sensitivity.
            process.dynamic_trigger_active = False
            return
        token = process.new_trigger_id()
        process.dynamic_trigger_active = True
        if isinstance(request, Event):
            request.add_dynamic_method(process, token)
        elif isinstance(request, SimTime):
            self._push_wake(
                self.now_fs + request.femtoseconds, process, token, True
            )
        elif isinstance(request, EventList):
            for event in request.events:
                event.add_dynamic_method(process, token)
        else:
            raise ProcessError(
                f"next_trigger expects an Event, an EventList or a SimTime, "
                f"got {request!r}"
            )

    def record_next_trigger(self, request) -> None:
        """Store a ``next_trigger`` request made by the running method."""
        process = self.current_process
        if not isinstance(process, MethodProcess):
            raise ProcessError("next_trigger called outside of a method process")
        process.requested_trigger = request

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        self._started = True
        for process in self._threads:
            self._make_runnable(process)
        for process in self._methods:
            if not process.dont_initialize:
                self._make_runnable(process)

    def stop(self) -> None:
        """Request the simulation loop to stop at the end of the current
        delta cycle (like ``sc_stop``)."""
        self._stop_requested = True

    @property
    def pending_activity(self) -> bool:
        return bool(
            self._runnable
            or self._delta_events
            or self._delta_process_wakes
            or self._timed_queue
        )

    def run(self, until: Optional[SimTime] = None) -> None:
        """Run the simulation until ``until`` (inclusive) or until no
        activity remains."""
        until_fs = None if until is None else until.femtoseconds
        if not self._started:
            self._initialize()
        if self.telemetry.enabled:
            # One check per run(), not per iteration: the telemetry-off
            # loop below stays exactly the pre-telemetry hot path.
            self._run_instrumented(until_fs)
            return
        runnable = self._runnable
        while True:
            if self._stop_requested:
                self._stop_requested = False
                break
            if runnable:
                self._run_delta_cycle()
                continue
            # Nothing runnable: process pending delta notifications (they may
            # exist without runnable processes, e.g. a notify(ZERO) from
            # outside the simulation).
            if self._delta_events or self._delta_process_wakes:
                self._delta_notification_phase()
                continue
            if not self._advance_time(until_fs):
                break

    def _run_instrumented(self, until_fs: Optional[int]) -> None:
        """The telemetry-on loop: same phase order as :meth:`run`, with
        wall time split between the delta work (evaluation/update/delta
        notification) and the timed-advance work — the two counters
        (``kernel.delta_loop_s`` / ``kernel.timed_loop_s``) the sideband
        reports per simulation."""
        perf = time.perf_counter
        delta_s = 0.0
        timed_s = 0.0
        runnable = self._runnable
        while True:
            if self._stop_requested:
                self._stop_requested = False
                break
            if runnable:
                t0 = perf()
                self._run_delta_cycle()
                delta_s += perf() - t0
                continue
            if self._delta_events or self._delta_process_wakes:
                t0 = perf()
                self._delta_notification_phase()
                delta_s += perf() - t0
                continue
            t0 = perf()
            advanced = self._advance_time(until_fs)
            timed_s += perf() - t0
            if not advanced:
                break
        telemetry = self.telemetry
        telemetry.counter("kernel.delta_loop_s", delta_s)
        telemetry.counter("kernel.timed_loop_s", timed_s)

    def _run_delta_cycle(self) -> None:
        stats = self.stats
        stats.delta_cycles += 1
        self._phase_marker = (stats.timed_phases, stats.delta_cycles)
        runnable = self._runnable
        # Evaluation phase.  The loop body is the scheduler's innermost hot
        # path; resume state lives on the process object, and the
        # thread/method dispatch is a class attribute, not an isinstance.
        while runnable:
            process = runnable.popleft()
            process.runnable = False
            value = process.resume_value
            process.resume_value = None
            self.current_process = process
            try:
                if process.is_thread:
                    self._execute_thread(process, value)
                else:
                    self._execute_method(process)
            finally:
                self.current_process = None
        # Update phase (skipped outright when no channel requested one).
        if self._update_requests:
            requests = self._update_requests
            self._update_requests = []
            self._update_pids.clear()
            for channel in requests:
                channel.update()
        # Delta-notification phase: the single-runnable fast path — nothing
        # pending — returns without swapping (allocating) the phase lists.
        if self._delta_events or self._delta_process_wakes:
            self._delta_notification_phase()

    def _delta_notification_phase(self) -> None:
        events = self._delta_events
        self._delta_events = []
        wakes = self._delta_process_wakes
        self._delta_process_wakes = []
        for event in events:
            if event.consume_pending_delta():
                self._trigger_event(event)
        for process, wait_id in wakes:
            self._wake_thread(process, wait_id)

    def _advance_time(self, until_fs: Optional[int]) -> bool:
        """Advance to the next timed notification; return False to stop."""
        queue = self._timed_queue
        # Drop cancelled event notifications sitting at the head of the queue.
        while queue:
            record = queue[0]
            if record.is_event and record.cancelled:
                heapq.heappop(queue)
                record.event.recycle_timed(record)
                continue
            break
        if not queue:
            if until_fs is not None and until_fs > self.now_fs:
                self.now_fs = until_fs
            return False
        next_time = queue[0].time_fs
        if until_fs is not None and next_time > until_fs:
            self.now_fs = until_fs
            return False
        if next_time < self.now_fs:  # pragma: no cover - defensive
            raise SchedulingError("timed queue went backwards")
        self.now_fs = next_time
        stats = self.stats
        stats.timed_phases += 1
        self._phase_marker = (stats.timed_phases, stats.delta_cycles)
        pool = self._wake_pool
        while queue and queue[0].time_fs == next_time:
            record = heapq.heappop(queue)
            if record.is_event:
                if record.cancelled:
                    record.event.recycle_timed(record)
                    continue
                event = record.event
                event.clear_pending_timed(record)
                event.recycle_timed(record)
                self._trigger_event(event)
            else:
                process = record.process
                token = record.token
                is_method = record.is_method
                record.process = None
                if len(pool) < _WAKE_POOL_LIMIT:
                    pool.append(record)
                if is_method:
                    self._trigger_method(process, dynamic=True, token=token)
                else:
                    self._wake_thread(process, token)
        return True
