"""Simulation processes.

Two process kinds are provided, mirroring SystemC:

* :class:`ThreadProcess` (``SC_THREAD``) — a Python generator that suspends
  by *yielding* a wait descriptor (``yield self.wait(20, NS)``,
  ``yield WaitEvent(ev)``) and is resumed by the scheduler.  Each
  suspension/resumption is a *context switch* and is counted as such;
  these are the expensive operations the paper's Smart FIFO removes.

* :class:`MethodProcess` (``SC_METHOD``) — a plain callable executed from
  beginning to end, with static sensitivity and ``next_trigger``.  Method
  processes cannot wait, which is why the Smart FIFO exposes the
  non-blocking interface of Section III-B.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional

from .errors import ProcessError
from .event import Event, EventList
from .simtime import SimTime


# ---------------------------------------------------------------------------
# Wait descriptors
# ---------------------------------------------------------------------------
class WaitDescriptor:
    """Base class of every object a thread process may yield.

    Each concrete descriptor knows how to *arm* the corresponding wake-up
    on the scheduler (``arm(scheduler, process, wait_id)``); the scheduler
    dispatches on that method instead of walking an ``isinstance`` ladder.
    :class:`~repro.kernel.event.Event` and
    :class:`~repro.kernel.event.EventList` implement the same protocol so
    they can be yielded directly.
    """

    __slots__ = ()

    def arm(self, scheduler, process: "ThreadProcess", wait_id: int) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


class Timeout(WaitDescriptor):
    """Suspend the calling thread for a fixed simulated duration."""

    __slots__ = ("duration",)

    def __init__(self, duration: SimTime):
        if not isinstance(duration, SimTime):
            raise ProcessError(f"Timeout expects a SimTime, got {duration!r}")
        self.duration = duration

    def arm(self, scheduler, process, wait_id: int) -> None:
        scheduler.arm_timeout(process, wait_id, self.duration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timeout({self.duration})"


class WaitEvent(WaitDescriptor):
    """Suspend the calling thread until ``event`` is notified."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        if not isinstance(event, Event):
            raise ProcessError(f"WaitEvent expects an Event, got {event!r}")
        self.event = event

    def arm(self, scheduler, process, wait_id: int) -> None:
        self.event.add_waiting_thread(process, wait_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WaitEvent({self.event.name})"


class WaitEventList(WaitDescriptor):
    """Suspend until any/all events of an :class:`EventList` trigger."""

    __slots__ = ("events", "wait_for_all")

    def __init__(self, event_list: EventList):
        self.events = list(event_list.events)
        self.wait_for_all = event_list.wait_for_all

    # Same arming logic as a bare EventList (shared implementation; both
    # classes expose .events and .wait_for_all).
    arm = EventList.arm


class WaitEventOrTimeout(WaitDescriptor):
    """Suspend until ``event`` triggers or ``timeout`` elapses."""

    __slots__ = ("event", "timeout")

    def __init__(self, event: Event, timeout: SimTime):
        if not isinstance(event, Event):
            raise ProcessError(f"expected an Event, got {event!r}")
        if not isinstance(timeout, SimTime):
            raise ProcessError(f"expected a SimTime timeout, got {timeout!r}")
        self.event = event
        self.timeout = timeout

    def arm(self, scheduler, process, wait_id: int) -> None:
        self.event.add_waiting_thread(process, wait_id)
        scheduler.arm_timeout(process, wait_id, self.timeout)


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------
_PROCESS_IDS = itertools.count(1)


class Process:
    """Common state of thread and method processes."""

    kind = "process"
    #: Class-level discriminator, avoids ``isinstance`` on the execute path.
    is_thread = False

    def __init__(self, name: str, func: Callable, sim):
        self.name = name
        self.func = func
        self.sim = sim
        self.pid = next(_PROCESS_IDS)
        self.terminated = False
        #: True while the process sits in the scheduler's runnable queue.
        self.runnable = False
        #: Value delivered by the wake-up that made the process runnable
        #: (e.g. the event that triggered); consumed on resumption.
        self.resume_value = None
        #: Absolute local date in femtoseconds of this (temporally
        #: decoupled) process; -1 when the process never decoupled.  Owned
        #: by :class:`~repro.td.local_time.LocalTimeManager` but stored here
        #: so the Smart FIFO access path needs no per-access map lookup.
        self.local_fs = -1
        #: True once the local-time manager tracks this process.
        self.lt_tracked = False
        #: Event notified when the process terminates (like sc_process_handle
        #: ``terminated_event``); created lazily.
        self._terminated_event: Optional[Event] = None

    @property
    def terminated_event(self) -> Event:
        if self._terminated_event is None:
            self._terminated_event = Event(f"{self.name}.terminated", sim=self.sim)
        return self._terminated_event

    def mark_terminated(self) -> None:
        self.terminated = True
        if self._terminated_event is not None:
            self._terminated_event.notify(SimTime(0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ThreadProcess(Process):
    """A generator-based cooperative thread (``SC_THREAD``)."""

    kind = "thread"
    is_thread = True

    def __init__(self, name: str, func: Callable, sim):
        super().__init__(name, func, sim)
        self._generator = None
        #: Monotonic counter identifying the current wait; wake-ups carrying a
        #: stale identifier (e.g. the timeout half of an event-or-timeout wait
        #: that already completed) are ignored by the scheduler.
        self.wait_id = 0
        #: For wait-for-all waits: events still missing (None outside such
        #: a wait, so the common case costs no list allocation).
        self.pending_all_events: Optional[List[Event]] = None
        self.started = False

    def start(self):
        """Instantiate the generator (first activation)."""
        if self.started:
            raise ProcessError(f"thread {self.name} started twice")
        self.started = True
        gen = self.func()
        if gen is None:
            # The function body contained no yield: it ran to completion
            # synchronously (legal, like a SystemC thread that returns
            # immediately).
            self._generator = None
            self.mark_terminated()
            return None
        if not hasattr(gen, "send"):
            raise ProcessError(
                f"thread {self.name}: process function must be a generator "
                f"function (did you forget a 'yield'?)"
            )
        self._generator = gen
        return gen

    def resume(self, value=None):
        """Advance the generator; return the next wait descriptor or None."""
        if self.terminated:
            raise ProcessError(f"thread {self.name} resumed after termination")
        try:
            descriptor = self._generator.send(value)
        except StopIteration:
            self.mark_terminated()
            return None
        return descriptor


class MethodProcess(Process):
    """A run-to-completion callback (``SC_METHOD``)."""

    kind = "method"

    def __init__(
        self,
        name: str,
        func: Callable,
        sim,
        sensitivity: Optional[Iterable[Event]] = None,
        dont_initialize: bool = False,
    ):
        super().__init__(name, func, sim)
        self.static_sensitivity: List[Event] = list(sensitivity or [])
        self.dont_initialize = dont_initialize
        #: When True the method ignores its static sensitivity until the
        #: dynamic trigger installed by ``next_trigger`` fires.
        self.dynamic_trigger_active = False
        self.trigger_id = 0
        #: Set by the scheduler while the method body runs so that
        #: ``next_trigger`` calls can be recorded.
        self.requested_trigger = None

    def register_static_sensitivity(self) -> None:
        for event in self.static_sensitivity:
            event.add_static_method(self)

    def new_trigger_id(self) -> int:
        self.trigger_id += 1
        return self.trigger_id
