"""Hierarchical modules.

:class:`Module` plays the role of ``sc_module``: it owns processes, events
and ports, lives in a named hierarchy, and provides the ``wait`` /
``next_trigger`` helpers that process bodies use.  Thread process bodies are
generator methods of the module::

    class Producer(Module):
        def __init__(self, parent, name, fifo):
            super().__init__(parent, name)
            self.fifo = fifo
            self.create_thread(self.run)

        def run(self):
            for value in range(3):
                yield from self.fifo.write(value)
                yield self.wait(20, NS)
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Union

from .errors import ElaborationError
from .event import Event, EventList
from .process import MethodProcess, ThreadProcess
from .simtime import SimTime, TimeUnit
from .simulator import Simulator


class Module:
    """Base class of every hardware model in the library."""

    def __init__(self, parent: Union[Simulator, "Module"], name: str):
        if isinstance(parent, Module):
            self.sim: Simulator = parent.sim
            self.parent: Optional[Module] = parent
            self.full_name = f"{parent.full_name}.{name}"
            parent._children.append(self)
        elif isinstance(parent, Simulator):
            self.sim = parent
            self.parent = None
            self.full_name = name
            parent.add_child(self)
        else:
            raise ElaborationError(
                f"module parent must be a Simulator or a Module, got {parent!r}"
            )
        self.name = name
        self.sim.register_name(self.full_name)
        self._children: List[Module] = []
        self._ports: List[object] = []
        self.processes: List[object] = []

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    @property
    def children(self):
        return tuple(self._children)

    def register_port(self, port) -> None:
        self._ports.append(port)

    def check_bindings(self) -> None:
        """Elaboration hook: verify that every registered port is bound."""
        for port in self._ports:
            port.check_bound()

    def end_of_elaboration(self) -> None:
        """Hook called once before the simulation starts; override freely."""

    # ------------------------------------------------------------------
    # Process creation
    # ------------------------------------------------------------------
    def create_thread(self, func: Callable, name: Optional[str] = None) -> ThreadProcess:
        """Register a generator method of this module as an ``SC_THREAD``."""
        proc_name = f"{self.full_name}.{name or func.__name__}"
        self.sim.register_name(proc_name)
        process = ThreadProcess(proc_name, func, self.sim)
        self.sim.scheduler.register_thread(process)
        self.processes.append(process)
        return process

    def create_method(
        self,
        func: Callable,
        name: Optional[str] = None,
        sensitivity: Optional[Iterable[Event]] = None,
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a plain method of this module as an ``SC_METHOD``."""
        proc_name = f"{self.full_name}.{name or func.__name__}"
        self.sim.register_name(proc_name)
        process = MethodProcess(
            proc_name,
            func,
            self.sim,
            sensitivity=sensitivity,
            dont_initialize=dont_initialize,
        )
        self.sim.scheduler.register_method(process)
        self.processes.append(process)
        return process

    def create_event(self, name: str = "event") -> Event:
        return Event(f"{self.full_name}.{name}", sim=self.sim)

    # ------------------------------------------------------------------
    # Process-body helpers
    # ------------------------------------------------------------------
    def wait(self, duration_or_event, unit: TimeUnit = TimeUnit.NS, timeout=None):
        """Build a wait descriptor (yield the result from a thread body)."""
        return self.sim.wait(duration_or_event, unit=unit, timeout=timeout)

    def next_trigger(self, trigger=None, unit: TimeUnit = TimeUnit.NS) -> None:
        """Dynamic sensitivity for the method process currently running."""
        self.sim.next_trigger(trigger, unit=unit)

    @property
    def now(self) -> SimTime:
        """The global simulated date."""
        return self.sim.now

    def log(self, message: str, local_time: Optional[SimTime] = None) -> None:
        """Record a trace line attributed to the current process.

        Non-decoupled modules log with the global date; decoupled modules
        (see :class:`repro.td.decoupling.DecoupledMixin`) override
        ``local_time`` with the process local date so that the paper's
        trace-equivalence validation can compare the two executions.
        """
        self.sim.log(message, local_time=local_time)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.full_name!r}>"
