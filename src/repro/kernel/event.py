"""Events and event notification.

:class:`Event` reproduces the semantics of ``sc_event``:

* **immediate notification** — ``notify()`` with no argument triggers the
  event during the current evaluation phase;
* **delta notification** — ``notify(ZERO_TIME)`` triggers the event in the
  delta-notification phase of the current time step;
* **timed notification** — ``notify(delay)`` triggers the event ``delay``
  later in simulated time.

An event carries at most one *pending* notification.  The SystemC override
rules apply: a delta notification overrides a pending timed notification,
an earlier timed notification overrides a later one, and a pending delta
notification cannot be overridden (the extra request is simply dropped).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import context
from .errors import SchedulingError
from .simtime import SimTime, ZERO_TIME


class _TimedRecord:
    """Base class of the scheduler's timed-queue heap entries.

    Entries are pushed directly onto the heap (no wrapping tuple): they are
    pre-keyed by ``(time_fs, seq)``, where ``seq`` is a scheduler-assigned
    monotonic sequence number that keeps the pop order stable for equal
    dates.  ``is_event`` discriminates the two concrete record kinds without
    a string comparison or an ``isinstance`` check on the pop path.
    """

    __slots__ = ("time_fs", "seq")

    is_event = False

    def __lt__(self, other: "_TimedRecord") -> bool:
        if self.time_fs != other.time_fs:
            return self.time_fs < other.time_fs
        return self.seq < other.seq


class _TimedNotification(_TimedRecord):
    """Book-keeping record for a pending timed event notification.

    The scheduler keeps these in its timed queue; cancelling a notification
    simply marks the record, the scheduler skips cancelled records when it
    pops them.  Popped records are handed back to their event for reuse by
    the next timed ``notify``, so a channel that keeps re-arming a delayed
    notification (the Smart FIFO external events) allocates only once.
    """

    __slots__ = ("event", "cancelled")

    is_event = True

    def __init__(self, event: "Event", time_fs: int):
        self.event = event
        self.time_fs = time_fs
        self.seq = 0
        self.cancelled = False


class Event:
    """A notification channel processes can wait on.

    Parameters
    ----------
    name:
        Debug name, shown in traces and error messages.
    sim:
        The owning simulator.  When omitted the event binds lazily to the
        process-wide current simulator the first time it is notified.
    """

    def __init__(self, name: str = "event", sim=None):
        self.name = name
        self._sim = sim
        # Scheduler of the owning simulator, resolved on first notification
        # (one attribute read afterwards instead of a property round trip).
        self._scheduler = None
        # Threads dynamically waiting on this event: (process, wait_id).
        self._waiting_threads: List[Tuple[object, int]] = []
        # Methods statically sensitive to this event (permanent).
        self._static_methods: List[object] = []
        # Immutable snapshot of _static_methods handed to the scheduler on
        # every trigger (rebuilt on the rare registration changes).
        self._static_snapshot = ()
        # Methods dynamically waiting via next_trigger: (process, trigger_id).
        self._dynamic_methods: List[Tuple[object, int]] = []
        # Pending notification state.
        self._pending_delta = False
        self._pending_timed: Optional[_TimedNotification] = None
        # Recycled timed-notification record (see _TimedNotification).
        self._spare_timed: Optional[_TimedNotification] = None
        #: Number of processes currently observing the event (threads +
        #: static methods + dynamic methods), maintained incrementally so
        #: hot paths can test it with one attribute read.
        self.listener_count = 0
        # Date (in delta-cycle coordinates) of the last trigger, used by
        # Signal.event() style queries.
        self._last_trigger_marker: Optional[Tuple[int, int]] = None

    # -- wiring ----------------------------------------------------------
    @property
    def sim(self):
        if self._sim is None:
            self._sim = context.current_simulator()
        return self._sim

    def bind_simulator(self, sim) -> None:
        """Explicitly attach the event to a simulator (done by modules)."""
        self._sim = sim
        self._scheduler = None

    # -- registration (used by the scheduler and by method processes) ----
    def add_waiting_thread(self, process, wait_id: int) -> None:
        self._waiting_threads.append((process, wait_id))
        self.listener_count += 1

    def add_static_method(self, process) -> None:
        if process not in self._static_methods:
            self._static_methods.append(process)
            self._static_snapshot = tuple(self._static_methods)
            self.listener_count += 1

    def remove_static_method(self, process) -> None:
        if process in self._static_methods:
            self._static_methods.remove(process)
            self._static_snapshot = tuple(self._static_methods)
            self.listener_count -= 1

    def add_dynamic_method(self, process, trigger_id: int) -> None:
        self._dynamic_methods.append((process, trigger_id))
        self.listener_count += 1

    @property
    def has_listeners(self) -> bool:
        """True when at least one process would observe a notification.

        Channels use this to skip scheduling notifications nobody can see
        (e.g. the Smart FIFO external ``not_empty`` event when no method
        process monitors the FIFO), which keeps the timed queue small.
        """
        return self.listener_count > 0

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` is an immediate notification, ``notify(ZERO_TIME)`` a
        delta notification and ``notify(t)`` with ``t > 0`` a timed
        notification ``t`` after the current simulated date.
        """
        if delay is None:
            # Immediate: trigger right now, do not touch pending notifications.
            scheduler = self._scheduler
            if scheduler is None:
                scheduler = self._scheduler = self.sim.scheduler
            scheduler.stats.event_notifications += 1
            scheduler.trigger_event_now(self)
            return
        if delay is not ZERO_TIME and not isinstance(delay, SimTime):
            raise SchedulingError(
                f"Event.notify expects a SimTime delay, got {delay!r}"
            )
        self.notify_fs(delay._fs)

    def notify_fs(self, delay_fs: int) -> None:
        """Delta (``delay_fs == 0``) or timed notification, femtosecond API.

        Fast-path variant of :meth:`notify` for channels that already hold
        the delay as an integer (the Smart FIFO delayed external
        notifications); skips the :class:`SimTime` round trip.
        """
        scheduler = self._scheduler
        if scheduler is None:
            scheduler = self._scheduler = self.sim.scheduler
        scheduler.stats.event_notifications += 1
        if delay_fs == 0:
            if self._pending_delta:
                return
            self._cancel_timed()
            self._pending_delta = True
            scheduler.schedule_delta_notification(self)
            return
        # Timed notification.
        if self._pending_delta:
            return
        target_fs = scheduler.now_fs + delay_fs
        pending = self._pending_timed
        if pending is not None and not pending.cancelled:
            if pending.time_fs <= target_fs:
                return
            pending.cancelled = True
        record = self._spare_timed
        if record is None:
            record = _TimedNotification(self, target_fs)
        else:
            self._spare_timed = None
            record.time_fs = target_fs
            record.cancelled = False
        self._pending_timed = record
        scheduler.schedule_timed_notification(record)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._pending_delta = False
        self._cancel_timed()

    def _cancel_timed(self) -> None:
        if self._pending_timed is not None:
            self._pending_timed.cancelled = True
            self._pending_timed = None

    # -- trigger (called by the scheduler) -------------------------------
    def consume_pending_delta(self) -> bool:
        """Return True (and clear the flag) if a delta notification is due."""
        was_pending = self._pending_delta
        self._pending_delta = False
        return was_pending

    def clear_pending_timed(self, record: _TimedNotification) -> None:
        if self._pending_timed is record:
            self._pending_timed = None

    def recycle_timed(self, record: _TimedNotification) -> None:
        """Take back a record the scheduler popped from its timed queue.

        Only records that are out of the heap may be recycled; the scheduler
        calls this right after popping (fired or cancelled alike).
        """
        if record is not self._pending_timed:
            self._spare_timed = record

    def arm(self, scheduler, process, wait_id: int) -> None:
        """Wait-descriptor protocol: a bare event can be yielded directly."""
        self.add_waiting_thread(process, wait_id)

    def collect_triggered_processes(self, marker: Tuple[int, int]):
        """Return processes to wake and reset the dynamic waiting lists.

        ``marker`` is a (timed-phase, delta-cycle) pair recorded so that
        ``triggered`` queries can tell whether the event fired in the
        current evaluation phase.
        """
        self._last_trigger_marker = marker
        threads = self._waiting_threads
        dyn_methods = self._dynamic_methods
        self._waiting_threads = []
        self._dynamic_methods = []
        self.listener_count = len(self._static_methods)
        return threads, self._static_snapshot, dyn_methods

    def triggered_at(self, marker: Tuple[int, int]) -> bool:
        """True if the event triggered in the evaluation phase ``marker``."""
        return self._last_trigger_marker == marker

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r})"


class EventList:
    """Helper combining several events for *and*/*or* waits."""

    def __init__(self, events, wait_for_all: bool):
        self.events = list(events)
        self.wait_for_all = wait_for_all
        if not self.events:
            raise SchedulingError("cannot wait on an empty event list")

    def arm(self, scheduler, process, wait_id: int) -> None:
        """Wait-descriptor protocol: an event list can be yielded directly."""
        if self.wait_for_all:
            process.pending_all_events = list(self.events)
        for event in self.events:
            event.add_waiting_thread(process, wait_id)


def any_of(*events: Event) -> EventList:
    """Wait descriptor helper: resume when *any* of ``events`` triggers."""
    return EventList(events, wait_for_all=False)


def all_of(*events: Event) -> EventList:
    """Wait descriptor helper: resume when *all* of ``events`` triggered."""
    return EventList(events, wait_for_all=True)
