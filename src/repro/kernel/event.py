"""Events and event notification.

:class:`Event` reproduces the semantics of ``sc_event``:

* **immediate notification** — ``notify()`` with no argument triggers the
  event during the current evaluation phase;
* **delta notification** — ``notify(ZERO_TIME)`` triggers the event in the
  delta-notification phase of the current time step;
* **timed notification** — ``notify(delay)`` triggers the event ``delay``
  later in simulated time.

An event carries at most one *pending* notification.  The SystemC override
rules apply: a delta notification overrides a pending timed notification,
an earlier timed notification overrides a later one, and a pending delta
notification cannot be overridden (the extra request is simply dropped).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import context
from .errors import SchedulingError
from .simtime import SimTime, ZERO_TIME


class _TimedNotification:
    """Book-keeping record for a pending timed notification.

    The scheduler keeps these in its timed queue; cancelling a notification
    simply marks the record, the scheduler skips cancelled records when it
    pops them.
    """

    __slots__ = ("event", "time_fs", "cancelled")

    def __init__(self, event: "Event", time_fs: int):
        self.event = event
        self.time_fs = time_fs
        self.cancelled = False


class Event:
    """A notification channel processes can wait on.

    Parameters
    ----------
    name:
        Debug name, shown in traces and error messages.
    sim:
        The owning simulator.  When omitted the event binds lazily to the
        process-wide current simulator the first time it is notified.
    """

    def __init__(self, name: str = "event", sim=None):
        self.name = name
        self._sim = sim
        # Threads dynamically waiting on this event: (process, wait_id).
        self._waiting_threads: List[Tuple[object, int]] = []
        # Methods statically sensitive to this event (permanent).
        self._static_methods: List[object] = []
        # Methods dynamically waiting via next_trigger: (process, trigger_id).
        self._dynamic_methods: List[Tuple[object, int]] = []
        # Pending notification state.
        self._pending_delta = False
        self._pending_timed: Optional[_TimedNotification] = None
        # Date (in delta-cycle coordinates) of the last trigger, used by
        # Signal.event() style queries.
        self._last_trigger_marker: Optional[Tuple[int, int]] = None

    # -- wiring ----------------------------------------------------------
    @property
    def sim(self):
        if self._sim is None:
            self._sim = context.current_simulator()
        return self._sim

    def bind_simulator(self, sim) -> None:
        """Explicitly attach the event to a simulator (done by modules)."""
        self._sim = sim

    # -- registration (used by the scheduler and by method processes) ----
    def add_waiting_thread(self, process, wait_id: int) -> None:
        self._waiting_threads.append((process, wait_id))

    def add_static_method(self, process) -> None:
        if process not in self._static_methods:
            self._static_methods.append(process)

    def remove_static_method(self, process) -> None:
        if process in self._static_methods:
            self._static_methods.remove(process)

    def add_dynamic_method(self, process, trigger_id: int) -> None:
        self._dynamic_methods.append((process, trigger_id))

    @property
    def has_listeners(self) -> bool:
        """True when at least one process would observe a notification.

        Channels use this to skip scheduling notifications nobody can see
        (e.g. the Smart FIFO external ``not_empty`` event when no method
        process monitors the FIFO), which keeps the timed queue small.
        """
        return bool(
            self._waiting_threads or self._static_methods or self._dynamic_methods
        )

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` is an immediate notification, ``notify(ZERO_TIME)`` a
        delta notification and ``notify(t)`` with ``t > 0`` a timed
        notification ``t`` after the current simulated date.
        """
        scheduler = self.sim.scheduler
        scheduler.stats.event_notifications += 1
        if delay is None:
            # Immediate: trigger right now, do not touch pending notifications.
            scheduler.trigger_event_now(self)
            return
        if not isinstance(delay, SimTime):
            raise SchedulingError(
                f"Event.notify expects a SimTime delay, got {delay!r}"
            )
        if delay.is_zero:
            if self._pending_delta:
                return
            self._cancel_timed()
            self._pending_delta = True
            scheduler.schedule_delta_notification(self)
            return
        # Timed notification.
        if self._pending_delta:
            return
        target_fs = scheduler.now_fs + delay.femtoseconds
        if self._pending_timed is not None and not self._pending_timed.cancelled:
            if self._pending_timed.time_fs <= target_fs:
                return
            self._pending_timed.cancelled = True
        record = _TimedNotification(self, target_fs)
        self._pending_timed = record
        scheduler.schedule_timed_notification(record)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._pending_delta = False
        self._cancel_timed()

    def _cancel_timed(self) -> None:
        if self._pending_timed is not None:
            self._pending_timed.cancelled = True
            self._pending_timed = None

    # -- trigger (called by the scheduler) -------------------------------
    def consume_pending_delta(self) -> bool:
        """Return True (and clear the flag) if a delta notification is due."""
        was_pending = self._pending_delta
        self._pending_delta = False
        return was_pending

    def clear_pending_timed(self, record: _TimedNotification) -> None:
        if self._pending_timed is record:
            self._pending_timed = None

    def collect_triggered_processes(self, marker: Tuple[int, int]):
        """Return processes to wake and reset the dynamic waiting lists.

        ``marker`` is a (timed-phase, delta-cycle) pair recorded so that
        ``triggered`` queries can tell whether the event fired in the
        current evaluation phase.
        """
        self._last_trigger_marker = marker
        threads = self._waiting_threads
        dyn_methods = self._dynamic_methods
        self._waiting_threads = []
        self._dynamic_methods = []
        return threads, list(self._static_methods), dyn_methods

    def triggered_at(self, marker: Tuple[int, int]) -> bool:
        """True if the event triggered in the evaluation phase ``marker``."""
        return self._last_trigger_marker == marker

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r})"


class EventList:
    """Helper combining several events for *and*/*or* waits."""

    def __init__(self, events, wait_for_all: bool):
        self.events = list(events)
        self.wait_for_all = wait_for_all
        if not self.events:
            raise SchedulingError("cannot wait on an empty event list")


def any_of(*events: Event) -> EventList:
    """Wait descriptor helper: resume when *any* of ``events`` triggers."""
    return EventList(events, wait_for_all=False)


def all_of(*events: Event) -> EventList:
    """Wait descriptor helper: resume when *all* of ``events`` triggered."""
    return EventList(events, wait_for_all=True)
