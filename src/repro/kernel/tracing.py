"""Trace recording.

The validation methodology of the paper (Section IV-A) relies on traces:
each test prints timestamped messages, once with regular FIFOs and no
temporal decoupling, once with Smart FIFOs and temporal decoupling.  The two
trace files are then compared *after reordering*, because temporal
decoupling changes the process schedule (dates may decrease between
consecutive lines) but must not change the set of (date, process, message)
records.

:class:`TraceCollector` stores :class:`TraceRecord` objects; helpers in
:mod:`repro.analysis.trace_diff` implement the reorder-and-compare check.
A lightweight VCD writer is also provided for waveform-style inspection of
signals and FIFO fill levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from .simtime import SimTime


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace line.

    ``local_fs`` is the local date of the emitting process (equal to the
    global date when the process is not decoupled); ``global_fs`` is the
    kernel date at emission.  Only ``local_fs`` takes part in equivalence
    comparisons, exactly like the paper compares local-date-stamped lines.
    """

    local_fs: int
    global_fs: int
    process: str
    message: str

    @property
    def local_time(self) -> SimTime:
        return SimTime.from_femtoseconds(self.local_fs)

    @property
    def global_time(self) -> SimTime:
        return SimTime.from_femtoseconds(self.global_fs)

    def sort_key(self):
        """Key used by the reorder-and-compare validation."""
        return (self.local_fs, self.process, self.message)

    def format(self) -> str:
        return f"[{self.local_time}] {self.process}: {self.message}"


class TraceCollector:
    """Accumulates trace records for one simulation run."""

    def __init__(self):
        self.records: List[TraceRecord] = []
        self.enabled = True

    def record(self, process: str, local_fs: int, global_fs: int, message: str) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(local_fs, global_fs, process, message))

    def clear(self) -> None:
        self.records = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def formatted_lines(self) -> List[str]:
        """Trace lines in emission order (the raw 'printed' trace file)."""
        return [record.format() for record in self.records]

    def sorted_lines(self) -> List[str]:
        """Trace lines after the reordering step of the paper's validation."""
        return [r.format() for r in sorted(self.records, key=TraceRecord.sort_key)]

    def write(self, stream: TextIO) -> None:
        for line in self.formatted_lines():
            stream.write(line + "\n")


class VcdWriter:
    """A minimal Value Change Dump writer.

    Only integer/real valued variables are supported, which is enough to
    dump FIFO fill levels and simple signals for debugging the case-study
    platform.  Times are written in femtoseconds.
    """

    def __init__(self, stream: TextIO, top: str = "repro"):
        self._stream = stream
        self._top = top
        self._variables: Dict[str, str] = {}
        self._next_code = 33  # printable ASCII identifiers start at '!'
        self._header_done = False
        self._last_time: Optional[int] = None

    def add_variable(self, name: str, width: int = 32) -> None:
        if self._header_done:
            raise RuntimeError("cannot add VCD variables after the header was written")
        code = chr(self._next_code)
        self._next_code += 1
        self._variables[name] = code
        self._pending_width = width

    def write_header(self) -> None:
        out = self._stream
        out.write("$timescale 1 fs $end\n")
        out.write(f"$scope module {self._top} $end\n")
        for name, code in self._variables.items():
            safe = name.replace(" ", "_")
            out.write(f"$var integer 32 {code} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._header_done = True

    def change(self, time_fs: int, name: str, value: int) -> None:
        if not self._header_done:
            self.write_header()
        if self._last_time != time_fs:
            self._stream.write(f"#{time_fs}\n")
            self._last_time = time_fs
        code = self._variables[name]
        self._stream.write(f"b{value:b} {code}\n")
